//! Preserved-analysis contract tests: every registered pass is run on an
//! input where it actually fires, and every analysis cache entry that
//! survives the pass's [`PreservedAnalyses`] contract is checked bit-equal
//! to a fresh recomputation (`AnalysisManager::verify_cached`). An
//! over-claimed contract — a pass reporting "dominators survived" after a
//! CFG edit — fails here in both debug and release builds, and also trips
//! the analysis manager's hit-path `debug_assert_eq!` checker in any debug
//! run that serves the stale entry.

use rolag::{roll_module, RolagOptions};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::{Module, Opcode};
use rolag_passes::{AnalysisManager, PassContext, PassManager, PassRegistry, TargetKind};
use rolag_suites::tsvc::build_suite_module;
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

/// Fills the cache with every analysis kind for every definition:
/// dominators, loop forests, per-block dependence graphs, pointer
/// resolutions for every `gep` result, and the effects table.
fn prime(am: &mut AnalysisManager, m: &Module) {
    am.effects(m);
    for id in m.func_ids() {
        if m.func(id).is_declaration {
            continue;
        }
        am.dom(m, id);
        am.loops(m, id);
        let f = m.func(id);
        for b in f.block_ids() {
            am.deps(m, id, b);
        }
        for inst in f.live_insts() {
            if f.inst(inst).opcode == Opcode::Gep {
                am.pointer(m, id, f.inst_result(inst));
            }
        }
    }
}

fn cached(am: &AnalysisManager, kind: &str) -> usize {
    am.cached_counts()
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, n)| *n)
        .expect("known kind")
}

/// Primes the cache, runs the single pass named `name` (param for
/// `unroll`), applies its contract, and verifies every surviving entry
/// against recomputation. Returns (module changed?, the manager).
fn run_one(name: &str, param: Option<&str>, module: &mut Module) -> (bool, AnalysisManager) {
    let mut am = AnalysisManager::new();
    prime(&mut am, module);
    let info = PassRegistry::builtin().find(name).expect("registered");
    let mut pm = PassManager::new();
    pm.add(info.build(param).expect("builds"));
    let mut cx = PassContext::new(TargetKind::default());
    let before = print_module(module);
    pm.run(module, &mut am, &mut cx).expect("pipeline runs");
    let changed = print_module(module) != before;
    am.verify_cached(module)
        .unwrap_or_else(|e| panic!("pass `{name}` over-claimed its contract: {e}"));
    (changed, am)
}

/// A straight-line store run that RoLAG rolls into a loop.
const ROLLABLE: &str = r#"
module "roll"
global @g : [8 x i32] = zero
func @f() -> void {
entry:
  %p0 = gep i32, @g, i64 0
  store i32 10, %p0
  %p1 = gep i32, @g, i64 1
  store i32 17, %p1
  %p2 = gep i32, @g, i64 2
  store i32 24, %p2
  %p3 = gep i32, @g, i64 3
  store i32 31, %p3
  %p4 = gep i32, @g, i64 4
  store i32 38, %p4
  %p5 = gep i32, @g, i64 5
  store i32 45, %p5
  %p6 = gep i32, @g, i64 6
  store i32 52, %p6
  %p7 = gep i32, @g, i64 7
  store i32 59, %p7
  ret
}
"#;

/// Identical stores through one pointer: rollable even with every special
/// node kind disabled (`no-special` has no integer-sequence abstraction,
/// so the varying constants of [`ROLLABLE`] would not align).
const NS_ROLLABLE: &str = r#"
module "roll"
global @g : [8 x i32] = zero
func @f(ptr %p0) -> void {
entry:
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  store i32 7, %p0
  ret
}
"#;

/// A counted loop the unroller accepts (8 trips, divisible by 4).
const COUNTED_LOOP: &str = r#"
module "lp"
global @a : [8 x i32] = zero
func @f() -> i32 {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %t = trunc i32 %iv
  %m = mul i32 %t, i32 3
  %q = gep i32, @a, %iv
  store %m, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 8
  condbr %c, loop, exit
exit:
  %r = load i32, @a
  ret %r
}
"#;

/// A 1-step counted loop with an `i32` induction variable; unrolled by 4
/// it is the canonical reroller input.
const REROLLABLE: &str = r#"
module "rr"
global @a : [32 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %g = gep i32, @a, %iv
  %m = mul i32 %iv, i32 3
  store %m, %g
  %ivn = add i32 %iv, i32 1
  %cmp = icmp slt %ivn, i32 32
  condbr %cmp, loop, exit
exit:
  ret
}
"#;

/// Duplicate subexpressions for CSE.
const DUPLICATED: &str = r#"
module "dup"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 5
  %2 = add i32 %p0, i32 5
  %3 = mul i32 %1, %2
  ret %3
}
"#;

/// Foldable constants, dead code, and an unreachable block — cleanup
/// rewrites instructions *and* seals the dead block, the exact case the
/// "sealing keeps dominators" argument covers.
const CLEANUPABLE: &str = r#"
module "cl"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 i32 2, i32 3
  %2 = add i32 %p0, %1
  %3 = mul i32 %2, i32 7
  br join
dead:
  %4 = add i32 %p0, i32 9
  br join
join:
  %5 = phi i32 [ %2, entry ], [ %4, dead ]
  ret %5
}
"#;

/// The RoLAG-style two-level nest the flattener rewrites (same shape as
/// the transform's own tests).
const NEST: &str = r#"
module "n"
global @a : [32 x i64] = zero
func @f() -> i64 {
entry:
  br outerh
outerh:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, outerl ]
  br inner
inner:
  %iv2 = phi i64 [ i64 0, outerh ], [ %iv2n, inner ]
  %idx = add i64 %iv, %iv2
  %q = gep i64, @a, %idx
  store %idx, %q
  %iv2n = add i64 %iv2, i64 1
  %c2 = icmp slt %iv2n, i64 4
  condbr %c2, inner, outerl
outerl:
  %ivn = add i64 %iv, i64 4
  %c = icmp slt %ivn, i64 32
  condbr %c, outerh, exit
exit:
  %p = gep i64, @a, i64 17
  %v = load i64, %p
  ret %v
}
"#;

/// CFG-preserving passes: after a run that *did* change the module, the
/// dominator tree and loop forest must survive the contract and match
/// recomputation.
#[test]
fn instruction_level_passes_keep_cfg_analyses() {
    // The reroller inverts the unroller: unroll by 4 and clean up, exactly
    // the shape its pattern matcher reconstructs a 1-step loop from.
    let unrolled = || {
        let mut m = parse_module(REROLLABLE).unwrap();
        unroll_module(&mut m, 4);
        cleanup_module(&mut m);
        m
    };
    let cases: Vec<(&str, Option<&str>, Module)> = vec![
        ("cse", None, parse_module(DUPLICATED).unwrap()),
        ("cleanup", None, parse_module(CLEANUPABLE).unwrap()),
        ("simplify", None, parse_module(CLEANUPABLE).unwrap()),
        ("dce", None, parse_module(CLEANUPABLE).unwrap()),
        ("unroll", Some("4"), parse_module(COUNTED_LOOP).unwrap()),
        ("reroll", None, unrolled()),
    ];
    for (name, param, mut m) in cases {
        let (changed, am) = run_one(name, param, &mut m);
        assert!(changed, "`{name}` fixture did not fire");
        assert!(
            cached(&am, "dom") > 0 && cached(&am, "loops") > 0,
            "`{name}` should preserve dominators and loops, counts: {:?}",
            am.cached_counts()
        );
        assert_eq!(
            cached(&am, "effects"),
            1,
            "`{name}` drops the effects table"
        );
        assert_eq!(
            cached(&am, "deps"),
            0,
            "`{name}` rewrote instructions; dependence graphs must not survive"
        );
    }
}

/// CFG-restructuring passes: after a firing run, only the effects table
/// may survive.
#[test]
fn cfg_restructuring_passes_drop_cfg_analyses() {
    let cases: Vec<(&str, Option<&str>, Module)> = vec![
        ("rolag", None, parse_module(ROLLABLE).unwrap()),
        ("rolag-ext", None, parse_module(ROLLABLE).unwrap()),
        ("no-special", None, parse_module(NS_ROLLABLE).unwrap()),
        ("rolag-rescan", None, parse_module(ROLLABLE).unwrap()),
        ("tv", None, parse_module(ROLLABLE).unwrap()),
        ("flatten", None, parse_module(NEST).unwrap()),
    ];
    for (name, param, mut m) in cases {
        let (changed, am) = run_one(name, param, &mut m);
        assert!(changed, "`{name}` fixture did not fire");
        assert_eq!(
            (cached(&am, "dom"), cached(&am, "loops")),
            (0, 0),
            "`{name}` restructures the CFG; dominators/loops must be dropped"
        );
        assert_eq!(
            cached(&am, "effects"),
            1,
            "`{name}` drops the effects table"
        );
    }
}

/// A pass that changes nothing preserves *everything* — the second
/// cleanup of an already-clean module keeps even the dependence graphs
/// and pointer resolutions alive.
#[test]
fn no_change_runs_preserve_everything() {
    let mut m = parse_module(CLEANUPABLE).unwrap();
    cleanup_module(&mut m);
    let (changed, am) = run_one("cleanup", None, &mut m);
    assert!(!changed, "module was pre-cleaned");
    assert!(
        cached(&am, "deps") > 0 && cached(&am, "dom") > 0 && cached(&am, "loops") > 0,
        "a no-op run must keep every cached analysis, counts: {:?}",
        am.cached_counts()
    );
}

/// Per-function preservation: a function pass that rewrites only one
/// function must not drop its neighbours' cached analyses. `@cold` here is
/// already CSE-clean, so after a `cse` run that rewrites only `@hot`,
/// `@cold`'s dominator tree, loop forest, dependence graph, and pointer
/// resolutions all keep serving hits — while `@hot` pays exactly its own
/// contract (CFG analyses survive, instruction-level ones are dropped).
#[test]
fn function_pass_keeps_neighbour_caches() {
    let text = r#"
module "pf"
global @a : [4 x i32] = zero
func @hot(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 5
  %2 = add i32 %p0, i32 5
  %3 = mul i32 %1, %2
  ret %3
}
func @cold() -> i32 {
entry:
  %p = gep i32, @a, i64 2
  %v = load i32, %p
  ret %v
}
"#;
    let mut m = parse_module(text).unwrap();
    let (changed, mut am) = run_one("cse", None, &mut m);
    assert!(changed, "cse fixture did not fire");
    let hot = m.func_by_name("hot").unwrap();
    let cold = m.func_by_name("cold").unwrap();

    let before = am.stats;
    am.dom(&m, cold);
    am.loops(&m, cold);
    am.deps(&m, cold, m.func(cold).entry_block());
    let cold_gep = {
        let f = m.func(cold);
        f.live_insts()
            .find(|&i| f.inst(i).opcode == Opcode::Gep)
            .map(|i| f.inst_result(i))
            .expect("cold has a gep")
    };
    am.pointer(&m, cold, cold_gep);
    assert_eq!(
        (
            am.stats.dom_misses,
            am.stats.loops_misses,
            am.stats.deps_misses,
            am.stats.alias_misses,
        ),
        (
            before.dom_misses,
            before.loops_misses,
            before.deps_misses,
            before.alias_misses,
        ),
        "the untouched neighbour's analyses must all survive a cse run \
         that changed only @hot"
    );

    // The changed function's instruction-level entries were dropped by its
    // own contract...
    am.deps(&m, hot, m.func(hot).entry_block());
    assert_eq!(
        am.stats.deps_misses,
        before.deps_misses + 1,
        "@hot's dependence graph must be recomputed after cse rewrote it"
    );
    // ...while its CFG analyses survived (cse never touches blocks/edges).
    am.dom(&m, hot);
    am.loops(&m, hot);
    assert_eq!(
        (am.stats.dom_misses, am.stats.loops_misses),
        (before.dom_misses, before.loops_misses),
        "@hot's CFG analyses are preserved by cse's own contract"
    );
}

/// The full evaluation pipeline over the TSVC suite, pass by pass: prime
/// every analysis before each pass, apply its contract after, and verify
/// each surviving entry against recomputation. This exercises the
/// contracts on realistic kernels (unreachable-block sealing, partially
/// unrollable loops, rolled and unrolled functions alike).
#[test]
fn contracts_hold_across_the_tsvc_pipeline() {
    let mut m = build_suite_module();
    let registry = PassRegistry::builtin();
    for (name, param) in [
        ("unroll", Some("8")),
        ("cse", None),
        ("cleanup", None),
        ("rolag", None),
        ("flatten", None),
        ("cleanup", None),
        ("reroll", None),
    ] {
        let mut am = AnalysisManager::new();
        prime(&mut am, &m);
        let info = registry.find(name).expect("registered");
        let mut pm = PassManager::new();
        pm.add(info.build(param).expect("builds"));
        let mut cx = PassContext::new(TargetKind::default());
        pm.run(&mut m, &mut am, &mut cx).expect("pipeline runs");
        am.verify_cached(&m)
            .unwrap_or_else(|e| panic!("pass `{name}` over-claimed its contract on tsvc: {e}"));
    }
}

/// The manager-driven pipeline still produces byte-identical output to
/// the direct entry points after the contract tightening (the flatten and
/// rolag ports changed how analyses are obtained, not what they compute).
#[test]
fn tightened_contracts_do_not_change_pipeline_output() {
    let mut direct = build_suite_module();
    unroll_module(&mut direct, 8);
    cse_module(&mut direct);
    cleanup_module(&mut direct);
    roll_module(&mut direct, &RolagOptions::default());
    rolag_transforms::flatten_module(&mut direct);
    cleanup_module(&mut direct);

    let mut managed = build_suite_module();
    let mut pm = PassManager::new();
    pm.add_all(
        PassRegistry::builtin()
            .parse_pipeline("unroll<8>,cse,cleanup,rolag,flatten,cleanup")
            .unwrap(),
    );
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(TargetKind::default());
    pm.run(&mut managed, &mut am, &mut cx).expect("runs");

    assert_eq!(print_module(&direct), print_module(&managed));
}
