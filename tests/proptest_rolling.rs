//! Property-based testing of the whole transformation stack: random
//! straight-line functions and random loops go through RoLAG (and the
//! unroll/reroll pipeline) and must behave identically under the
//! interpreter — same return value, external-call trace, and final memory.
//!
//! Uses the seeded in-repo harness (`rolag_prng::check`); a failure prints
//! the derived seed needed to replay the exact case.

use rolag::{roll_module, RolagOptions};
use rolag_ir::builder::FuncBuilder;
use rolag_ir::interp::check_equivalence;
use rolag_ir::verify::verify_module;
use rolag_ir::{Effects, Module};
use rolag_prng::{check::run_cases, ChaCha8Rng, Rng};
use rolag_reroll::reroll_module;
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

/// One abstract statement of a generated straight-line function.
#[derive(Debug, Clone)]
enum Stmt {
    /// `dst[slot] = value_expr`
    Store { slot: u8, expr: Expr },
    /// `sink(arg_expr)`
    Call { expr: Expr },
}

#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    LoadSrc(u8),
    AddConst(Box<Expr>, i32),
    MulLoad(Box<Expr>, u8),
    XorParam(Box<Expr>),
}

fn gen_expr(rng: &mut ChaCha8Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return if rng.gen_bool(0.5) {
            Expr::Const(rng.gen_range(-100i32..100))
        } else {
            Expr::LoadSrc(rng.gen_range(0u8..16))
        };
    }
    match rng.gen_range(0u32..3) {
        0 => Expr::AddConst(
            Box::new(gen_expr(rng, depth - 1)),
            rng.gen_range(-50i32..50),
        ),
        1 => Expr::MulLoad(Box::new(gen_expr(rng, depth - 1)), rng.gen_range(0u8..16)),
        _ => Expr::XorParam(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn gen_stmt(rng: &mut ChaCha8Rng) -> Stmt {
    if rng.gen_bool(0.5) {
        Stmt::Store {
            slot: rng.gen_range(0u8..24),
            expr: gen_expr(rng, 3),
        }
    } else {
        Stmt::Call {
            expr: gen_expr(rng, 3),
        }
    }
}

fn gen_stmts(rng: &mut ChaCha8Rng, max: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=max);
    (0..n).map(|_| gen_stmt(rng)).collect()
}

/// Builds a module with one function made of the given statements. Slots
/// repeat, so store groups of every size (including rollable runs and
/// conflicting interleavings) arise naturally.
fn build(stmts: &[Stmt]) -> Module {
    let mut m = Module::new("prop");
    let i32t = m.types.i32();
    let void = m.types.void();
    let src_ty = m.types.array(i32t, 16);
    let dst_ty = m.types.array(i32t, 24);
    let src = m.add_global(rolag_ir::GlobalData {
        name: "src".into(),
        ty: src_ty,
        init: rolag_ir::GlobalInit::Ints {
            elem_ty: i32t,
            values: (0..16).map(|i| i * 11 + 3).collect(),
        },
        is_const: false,
    });
    let dst = m.add_zero_global("dst", dst_ty);
    let sink = m.declare_func("sink", vec![i32t], void, Effects::ReadWrite);

    let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], void);
    let p = fb.param(0);
    fb.block("entry");
    fb.ins(|b| {
        fn emit(
            b: &mut rolag_ir::Builder<'_>,
            e: &Expr,
            src: rolag_ir::GlobalId,
            p: rolag_ir::ValueId,
        ) -> rolag_ir::ValueId {
            match e {
                Expr::Const(c) => b.iconst(b.types.i32(), *c as i64),
                Expr::LoadSrc(slot) => {
                    let g = b.global(src);
                    let idx = b.i64_const(*slot as i64);
                    let q = b.gep(b.types.i32(), g, &[idx]);
                    b.load(b.types.i32(), q)
                }
                Expr::AddConst(e, c) => {
                    let v = emit(b, e, src, p);
                    let cc = b.iconst(b.types.i32(), *c as i64);
                    b.add(v, cc)
                }
                Expr::MulLoad(e, slot) => {
                    let v = emit(b, e, src, p);
                    let g = b.global(src);
                    let idx = b.i64_const(*slot as i64);
                    let q = b.gep(b.types.i32(), g, &[idx]);
                    let w = b.load(b.types.i32(), q);
                    b.mul(v, w)
                }
                Expr::XorParam(e) => {
                    let v = emit(b, e, src, p);
                    b.xor(v, p)
                }
            }
        }
        for s in stmts {
            match s {
                Stmt::Store { slot, expr } => {
                    let v = emit(b, expr, src, p);
                    let g = b.global(dst);
                    let idx = b.i64_const(*slot as i64);
                    let q = b.gep(b.types.i32(), g, &[idx]);
                    b.store(v, q);
                }
                Stmt::Call { expr } => {
                    let v = emit(b, expr, src, p);
                    let vt = b.types.void();
                    b.call(sink, vt, &[v]);
                }
            }
        }
        b.ret(None);
    });
    fb.finish();
    m
}

/// RoLAG never changes the behaviour of random straight-line code.
#[test]
fn rolag_preserves_random_straight_line_code() {
    run_cases(
        "rolag_preserves_random_straight_line_code",
        96,
        0x0401,
        |rng, _| {
            let stmts = gen_stmts(rng, 23);
            let arg = rng.gen_range(-1000i64..1000);
            let module = build(&stmts);
            verify_module(&module).expect("generated module verifies");
            let mut rolled = module.clone();
            roll_module(&mut rolled, &RolagOptions::default());
            verify_module(&rolled).expect("rolled module verifies");
            check_equivalence(&module, &rolled, "f", &[rolag_ir::interp::IValue::Int(arg)])
                .unwrap_or_else(|e| panic!("behaviour changed: {e}\nstmts: {stmts:?}"));
        },
    );
}

/// The ablation configuration is equally sound.
#[test]
fn ablated_rolag_preserves_random_code() {
    run_cases(
        "ablated_rolag_preserves_random_code",
        64,
        0x0402,
        |rng, _| {
            let stmts = gen_stmts(rng, 15);
            let module = build(&stmts);
            let mut rolled = module.clone();
            roll_module(&mut rolled, &RolagOptions::no_special_nodes());
            check_equivalence(&module, &rolled, "f", &[rolag_ir::interp::IValue::Int(7)])
                .unwrap_or_else(|e| panic!("behaviour changed: {e}\nstmts: {stmts:?}"));
        },
    );
}

/// unroll → CSE → reroll / roll on random counted loops stays correct.
#[test]
fn loop_pipeline_preserves_random_loops() {
    run_cases(
        "loop_pipeline_preserves_random_loops",
        64,
        0x0403,
        |rng, _| {
            let mul_k = rng.gen_range(1i64..9);
            let add_k = rng.gen_range(-8i64..9);
            let trips = rng.gen_range(1i64..8) * 8;
            let factor = [2u32, 4, 8][rng.gen_range(0usize..3)];
            let text = format!(
                r#"
module "lp"
global @a : [64 x i32] = zero
func @f() -> i32 {{
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %t = trunc i32 %iv
  %m = mul i32 %t, i32 {mul_k}
  %v = add i32 %m, i32 {add_k}
  %q = gep i32, @a, %iv
  store %v, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 {trips}
  condbr %c, loop, exit
exit:
  %r = load i32, @a
  ret %r
}}
"#
            );
            let original = rolag_ir::parser::parse_module(&text).unwrap();
            let mut base = original.clone();
            unroll_module(&mut base, factor);
            cse_module(&mut base);
            cleanup_module(&mut base);
            check_equivalence(&original, &base, "f", &[]).expect("unroll+cse+cleanup");

            let mut llvm = base.clone();
            reroll_module(&mut llvm);
            cleanup_module(&mut llvm);
            check_equivalence(&base, &llvm, "f", &[]).expect("reroll");

            let mut rolag_m = base.clone();
            roll_module(&mut rolag_m, &RolagOptions::default());
            cleanup_module(&mut rolag_m);
            check_equivalence(&base, &rolag_m, "f", &[]).expect("rolag");
        },
    );
}
