//! Workspace-level tests for the `rolag-passes` pipeline layer: spec
//! parsing round-trips, pointed diagnostics, and — the refactor's core
//! contract — byte-identical output between textual pipelines run under
//! the pass manager and the legacy direct `*_module` call chains, over
//! the checked-in difftest repro corpus.

use std::path::Path;

use rolag::{roll_module, RolagOptions};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use rolag_passes::{
    AnalysisManager, PassContext, PassManager, PassManagerOptions, PassRegistry, PipelineSpec,
    TargetKind,
};
use rolag_reroll::reroll_module;
use rolag_transforms::{cleanup_module, cse_module, flatten_module, unroll_module};

fn repro_modules() -> Vec<(String, Module)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/repros exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rir"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "repro corpus went missing");
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).unwrap();
            (name, parse_module(&text).expect("repro parses"))
        })
        .collect()
}

fn run_managed(module: &mut Module, spec: &str) {
    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each: true,
        print_changed: false,
    });
    pm.add_all(PassRegistry::builtin().parse_pipeline(spec).unwrap());
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(TargetKind::default());
    pm.run(module, &mut am, &mut cx)
        .unwrap_or_else(|e| panic!("`{spec}` failed verification after `{}`", e.pass));
}

// ---------------------------------------------------------------- parsing

#[test]
fn spec_round_trips_through_display() {
    for messy in [
        " unroll<4> , cleanup,rolag ,flatten, cleanup ",
        "rolag",
        "unroll<16>,cse,dce",
    ] {
        let spec = PipelineSpec::parse(messy).unwrap();
        let canonical = spec.to_string();
        assert!(!canonical.contains(' '), "canonical form: {canonical}");
        let again = PipelineSpec::parse(&canonical).unwrap();
        assert_eq!(canonical, again.to_string(), "round-trip changed the spec");
        assert_eq!(spec.elements.len(), again.elements.len());
    }
}

#[test]
fn spec_records_offsets_for_diagnostics() {
    let spec = PipelineSpec::parse("unroll<4>,cleanup").unwrap();
    assert_eq!(spec.elements[0].offset, 0);
    assert_eq!(spec.elements[0].param.as_deref(), Some("4"));
    assert_eq!(spec.elements[1].offset, 10);
    assert_eq!(spec.elements[1].param, None);
}

#[test]
fn malformed_specs_point_at_the_problem() {
    for (text, needle) in [
        ("", "empty pipeline spec"),
        ("rolag,", "trailing comma"),
        ("rolag,,cse", "empty pipeline element"),
        ("unroll<4", "missing `>`"),
        ("cse rolag", "unexpected character"),
    ] {
        let err = PipelineSpec::parse(text).expect_err(text);
        assert!(
            err.message.contains(needle),
            "`{text}` gave: {}",
            err.message
        );
        let rendered = err.render("<passes>", text);
        assert!(rendered.starts_with("<passes>:1:"), "{rendered}");
        assert!(rendered.contains('^'), "no caret in:\n{rendered}");
    }
}

#[test]
fn registry_rejects_unknown_and_bad_parameters() {
    let reg = PassRegistry::builtin();
    let parse_err = |text: &str| match reg.parse_pipeline(text) {
        Ok(_) => panic!("`{text}` unexpectedly parsed"),
        Err(e) => e,
    };
    let err = parse_err("rolag,flattn");
    assert!(err.message.contains("unknown pass `flattn`"), "{err}");
    assert!(err.message.contains("did you mean `flatten`"), "{err}");

    for (text, needle) in [
        ("unroll", "needs a factor"),
        ("unroll<x>", "expected an integer"),
        ("unroll<0>", "at least 2"),
        ("unroll<1>", "at least 2"),
        ("cse<3>", "takes no parameter"),
    ] {
        let err = parse_err(text);
        assert!(
            err.message.contains(needle),
            "`{text}` gave: {}",
            err.message
        );
    }
}

// ------------------------------------------------------- legacy equivalence

/// Each textual pipeline, run under the manager with `verify_each`, must
/// produce byte-for-byte the module the legacy direct calls produce.
#[test]
fn managed_pipelines_match_direct_calls_on_the_repro_corpus() {
    type Direct = fn(&mut Module);
    let cases: [(&str, Direct); 4] = [
        ("rolag", |m| {
            roll_module(m, &RolagOptions::default());
        }),
        ("unroll<4>,cse,cleanup,rolag,flatten,cleanup", |m| {
            unroll_module(m, 4);
            cse_module(m);
            cleanup_module(m);
            roll_module(m, &RolagOptions::default());
            flatten_module(m);
            cleanup_module(m);
        }),
        ("reroll,cleanup", |m| {
            reroll_module(m);
            cleanup_module(m);
        }),
        ("unroll<2>,cse,rolag", |m| {
            unroll_module(m, 2);
            cse_module(m);
            roll_module(m, &RolagOptions::default());
        }),
    ];
    for (name, module) in repro_modules() {
        for (spec, direct) in &cases {
            let mut a = module.clone();
            direct(&mut a);
            let mut b = module.clone();
            run_managed(&mut b, spec);
            assert_eq!(
                print_module(&a),
                print_module(&b),
                "`{spec}` diverged from direct calls on {name}"
            );
        }
    }
}

/// The ablation/extension engines are reachable through the registry and
/// agree with their direct spellings.
#[test]
fn registry_engine_variants_match_option_spellings() {
    let variants: [(&str, RolagOptions); 3] = [
        ("rolag-ext", RolagOptions::with_extensions()),
        ("no-special", RolagOptions::no_special_nodes()),
        ("rolag-rescan", RolagOptions::default()),
    ];
    for (name, module) in repro_modules() {
        for (spec, opts) in &variants {
            let mut a = module.clone();
            roll_module(&mut a, opts);
            let mut b = module.clone();
            run_managed(&mut b, spec);
            assert_eq!(
                print_module(&a),
                print_module(&b),
                "`{spec}` diverged on {name}"
            );
        }
    }
}

// ------------------------------------------------------------- drift guard

/// Every pass the registry knows must be documented in the README, and
/// the generated `--help` table must cover every registered pass — the
/// docs can't silently drift from the code.
#[test]
fn every_registered_pass_is_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    let help = PassRegistry::builtin().help_passes();
    for info in PassRegistry::builtin().infos() {
        assert!(
            help.contains(info.name),
            "`{}` missing from the generated help",
            info.name
        );
        assert!(
            readme.contains(info.name) || design.contains(info.name),
            "pass `{}` is not mentioned in README.md or DESIGN.md",
            info.name
        );
    }
}

/// The translation validator's declared abstractions are API: DESIGN.md
/// documents each one by name, and this guard keeps the list and the
/// docs from drifting apart.
#[test]
fn every_tv_abstraction_is_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    for name in rolag_tv::ABSTRACTIONS {
        assert!(
            design.contains(name),
            "validator abstraction `{name}` is not documented in DESIGN.md"
        );
    }
}
