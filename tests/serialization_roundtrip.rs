//! Binary-serialization round-trip over every checked-in `.rir` corpus.
//!
//! The acceptance bar for the binary format is print-identity: for each
//! module, `parse → encode → decode → print` must equal `parse → print`
//! byte-for-byte. The decoded arenas are slot-identical to the source
//! arenas, so any drift shows up as a text diff anchored to the corpus
//! file that produced it.

use std::path::{Path, PathBuf};

use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::serialization::{decode_module, encode_module};

/// Every `.rir` under the repo's corpus directories, sorted.
fn corpus() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["tests/lit", "tests/repros", "examples/ir"] {
        for entry in std::fs::read_dir(root.join(dir)).expect("corpus dir exists") {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|e| e == "rir") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(!files.is_empty(), "corpus discovery found no .rir files");
    files
}

#[test]
fn every_corpus_module_roundtrips_print_identical() {
    let mut failures = Vec::new();
    for path in corpus() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let module = match parse_module(&text) {
            Ok(m) => m,
            Err(e) => panic!("{} does not parse: {e}", path.display()),
        };
        let bytes = encode_module(&module);
        let decoded = match decode_module(&bytes) {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("{}: decode failed: {e}", path.display()));
                continue;
            }
        };
        if print_module(&decoded) != print_module(&module) {
            failures.push(format!("{}: decoded print diverges", path.display()));
        }
        // Encoding must be deterministic: a second encode of the decoded
        // module reproduces the same bytes.
        if encode_module(&decoded) != bytes {
            failures.push(format!("{}: re-encode is not byte-stable", path.display()));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn truncated_corpus_bytes_never_panic() {
    // Sample a handful of truncation points per module (every prefix of
    // every corpus file would be quadratic); the per-byte sweep lives in
    // the rolag-ir unit tests.
    for path in corpus() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let module = parse_module(&text).expect("corpus parses");
        let bytes = encode_module(&module);
        for i in 1..=32 {
            let len = bytes.len() * i / 33;
            assert!(
                decode_module(&bytes[..len]).is_err(),
                "{}: prefix of {len} bytes decoded",
                path.display()
            );
        }
    }
}
