//! Workspace smoke test for the differential semantic oracle.
//!
//! Three layers:
//! * a fixed-seed 256-module corpus driven through the full pipeline
//!   matrix (the same gate `rolag-verify --seed 0 --count 256` runs in CI),
//! * direct trap-semantics checks at the oracle level,
//! * a regression sweep over every checked-in reproducer in
//!   `tests/repros/`.

use rolag_difftest::gen::{args_for, generate, generate_module};
use rolag_difftest::oracle::{check_module, compare_behaviour, Pipeline};
use rolag_ir::interp::{ExecError, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use std::path::Path;

/// The acceptance gate: 256 fixed-seed modules, every pipeline, two
/// argument sets per entry point. Zero divergences, zero panics.
#[test]
fn corpus_seed0_is_clean_on_every_pipeline() {
    for i in 0..256 {
        let module = generate_module(0, i);
        if let Err(failure) = check_module(&module, &Pipeline::ALL, 2) {
            panic!(
                "corpus module (seed 0, index {i}) failed:\n  {failure}\n\n{}",
                generate(0, i)
            );
        }
    }
}

/// The corpus text itself is stable: regenerating a module yields
/// byte-identical IR, so a failure report's `(seed, index)` is a complete
/// reproducer.
#[test]
fn corpus_is_reproducible_from_seed_and_index() {
    for i in [0, 17, 100, 255] {
        assert_eq!(generate(0, i), generate(0, i));
    }
}

fn run(text: &str, entry: &str, args: &[IValue]) -> Result<IValue, ExecError> {
    let m = parse_module(text).unwrap();
    let mut i = Interpreter::new(&m);
    i.run(entry, args).map(|o| o.ret)
}

/// Division edges trap as typed errors instead of killing the process.
#[test]
fn division_edges_trap() {
    let text = r#"
module "t"
func @div(i32 %p0, i32 %p1) -> i32 {
entry:
  %d = sdiv i32 %p0, %p1
  ret %d
}
"#;
    assert_eq!(
        run(text, "div", &[IValue::Int(7), IValue::Int(0)]),
        Err(ExecError::DivByZero)
    );
    assert_eq!(
        run(
            text,
            "div",
            &[IValue::Int(i32::MIN as i64), IValue::Int(-1)]
        ),
        Err(ExecError::DivOverflow)
    );
    assert_eq!(
        run(text, "div", &[IValue::Int(-12), IValue::Int(4)]),
        Ok(IValue::Int(-3))
    );
}

/// Wild and misaligned accesses trap; and the oracle insists the
/// transformed module traps the same way.
#[test]
fn memory_faults_trap_and_must_be_preserved() {
    let text = r#"
module "t"
global @a : [4 x i32] = zero
func @mis() -> i32 {
entry:
  %b = gep i8, @a, i64 2
  %v = load i32, %b
  ret %v
}
"#;
    assert!(matches!(
        run(text, "mis", &[]),
        Err(ExecError::Misaligned { align: 4, .. })
    ));
    // A module that traps must not be "optimized" into one that returns.
    let trapping = parse_module(text).unwrap();
    let clean = parse_module(
        r#"
module "t"
global @a : [4 x i32] = zero
func @mis() -> i32 {
entry:
  ret i32 0
}
"#,
    )
    .unwrap();
    let err = compare_behaviour(&trapping, &clean, "mis", &[]).unwrap_err();
    assert!(err.contains("trapped"), "unexpected detail: {err}");
}

/// Synthesized arguments cover the trap-triggering boundary values, so
/// the corpus genuinely drives the edge paths.
#[test]
fn argument_pool_reaches_division_boundaries() {
    let m = parse_module(
        r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %d = sdiv i32 %p0, %p1
  ret %d
}
"#,
    )
    .unwrap();
    let mut saw_zero = false;
    let mut saw_min = false;
    for k in 0..64 {
        for v in args_for(&m, "f", k).unwrap() {
            saw_zero |= v == IValue::Int(0);
            saw_min |= v == IValue::Int(i32::MIN as i64);
        }
    }
    assert!(saw_zero && saw_min, "pool misses boundary values");
}

/// Every checked-in reproducer stays fixed: parse it and run the full
/// pipeline matrix with a deeper argument sweep.
#[test]
fn checked_in_repros_stay_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/repros exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rir"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} no longer parses: {e}", path.display()));
        if let Err(failure) = check_module(&module, &Pipeline::ALL, 6) {
            panic!("{} regressed: {failure}", path.display());
        }
        seen += 1;
    }
    assert!(
        seen >= 4,
        "expected the checked-in repro corpus, found {seen}"
    );
}
