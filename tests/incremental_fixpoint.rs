//! Equivalence tests for the incremental fixpoint engine: on every input,
//! `roll_module` (dirty-block worklist + per-block size deltas + attempt
//! memoization) must produce a byte-identical printed module and identical
//! outcome statistics to `roll_module_full_rescan`, the retained
//! pre-incremental reference loop. Timings and cache counters are excluded
//! from statistics equality by `RolagStats`'s `PartialEq` itself.

use rolag::{roll_module, roll_module_full_rescan, RolagOptions};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;
use rolag_prng::{check::run_cases, ChaCha8Rng, Rng, SeedableRng};
use rolag_suites::angha::{build_pattern, PatternKind};
use rolag_suites::tsvc::build_suite_module;
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

/// Rolls `module` with both engines under `opts` and asserts byte-identical
/// output and equal statistics. Returns the incremental engine's stats for
/// further cache-counter assertions.
fn assert_engines_agree_with(
    module: &Module,
    opts: &RolagOptions,
    label: &str,
) -> rolag::RolagStats {
    let mut reference = module.clone();
    let ref_stats = roll_module_full_rescan(&mut reference, opts);
    verify_module(&reference).expect("reference output verifies");

    let mut incremental = module.clone();
    let inc_stats = roll_module(&mut incremental, opts);
    verify_module(&incremental).expect("incremental output verifies");

    assert_eq!(
        print_module(&incremental),
        print_module(&reference),
        "module bytes diverged ({label})"
    );
    assert_eq!(inc_stats, ref_stats, "stats diverged ({label})");
    inc_stats
}

/// [`assert_engines_agree_with`] under the default options.
fn assert_engines_agree(module: &Module, label: &str) -> rolag::RolagStats {
    assert_engines_agree_with(module, &RolagOptions::default(), label)
}

/// The whole TSVC suite, raw and after the unroll→CSE→cleanup pipeline
/// (the pipelined form is where most rolls actually happen).
#[test]
fn engines_agree_on_tsvc_suite() {
    let raw = build_suite_module();
    assert_engines_agree(&raw, "tsvc raw");

    let mut pipelined = raw.clone();
    unroll_module(&mut pipelined, 8);
    cse_module(&mut pipelined);
    cleanup_module(&mut pipelined);
    assert_engines_agree(&pipelined, "tsvc unroll8+cse+cleanup");
}

/// Measured-cost mode (profitability from the `rolag-lower` binary-size
/// simulator, incremental via the per-block regalloc sketch) must agree
/// with the full-rescan reference — which re-lowers the whole function
/// from scratch on every decision — on the entire TSVC suite. In debug
/// builds every sweep additionally cross-checks the sketch against a full
/// `measure_function` via `debug_assert_eq!`.
#[test]
fn engines_agree_on_tsvc_suite_measured() {
    let opts = RolagOptions::measured();
    let raw = build_suite_module();
    assert_engines_agree_with(&raw, &opts, "tsvc raw (measured)");

    let mut pipelined = raw.clone();
    unroll_module(&mut pipelined, 8);
    cse_module(&mut pipelined);
    cleanup_module(&mut pipelined);
    let stats = assert_engines_agree_with(&pipelined, &opts, "tsvc unroll8+cse+cleanup (measured)");
    assert!(stats.rolled > 0, "measured mode must still commit rolls");
}

/// Measured-cost mode over random pattern mixes: the trial-sketch delta
/// path (clone, invalidate changed ∪ one-hop fold neighbourhood, re-select,
/// recombine) must equal full re-lowering on every profitability decision.
#[test]
fn engines_agree_on_random_modules_measured() {
    let opts = RolagOptions::measured();
    run_cases(
        "engines_agree_on_random_modules_measured",
        12,
        0x0603,
        |rng, case| {
            let mut m = Module::new("incr.measured");
            let kinds = PatternKind::all();
            let n = rng.gen_range(1usize..5);
            for i in 0..n {
                let kind = kinds[rng.gen_range(0usize..kinds.len())];
                build_pattern(&mut m, rng, kind, i);
            }
            verify_module(&m).expect("generated module verifies");
            assert_engines_agree_with(&m, &opts, &format!("measured random case {case}"));
        },
    );
}

/// A multi-function AnghaBench-like module mixing every pattern family.
#[test]
fn engines_agree_on_angha_module() {
    let mut m = Module::new("angha.multi");
    let mut rng = ChaCha8Rng::seed_from_u64(0x0601);
    let kinds = PatternKind::all();
    for i in 0..36 {
        build_pattern(&mut m, &mut rng, kinds[i % kinds.len()], i);
    }
    verify_module(&m).expect("generated module verifies");
    assert_engines_agree(&m, "angha multi-pattern");
}

/// Randomized property: random pattern mixes and random unrolled (and
/// partially flattened) counted loops never make the engines disagree.
#[test]
fn engines_agree_on_random_modules() {
    run_cases(
        "engines_agree_on_random_modules",
        32,
        0x0602,
        |rng, case| {
            let mut m = Module::new("incr.prop");
            let kinds = PatternKind::all();
            let n = rng.gen_range(1usize..5);
            for i in 0..n {
                let kind = kinds[rng.gen_range(0usize..kinds.len())];
                build_pattern(&mut m, rng, kind, i);
            }
            verify_module(&m).expect("generated module verifies");
            assert_engines_agree(&m, &format!("random patterns case {case}"));

            // A random counted loop, fully or partially flattened by unrolling.
            let mul_k = rng.gen_range(1i64..9);
            let add_k = rng.gen_range(-8i64..9);
            let trips = rng.gen_range(1i64..8) * 8;
            let factor = [2u32, 4, 8][rng.gen_range(0usize..3)];
            let text = format!(
                r#"
module "lp"
global @a : [64 x i32] = zero
func @f() -> i32 {{
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %t = trunc i32 %iv
  %m = mul i32 %t, i32 {mul_k}
  %v = add i32 %m, i32 {add_k}
  %q = gep i32, @a, %iv
  store %v, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 {trips}
  condbr %c, loop, exit
exit:
  %r = load i32, @a
  ret %r
}}
"#
            );
            let mut unrolled = parse_module(&text).unwrap();
            unroll_module(&mut unrolled, factor);
            cse_module(&mut unrolled);
            cleanup_module(&mut unrolled);
            assert_engines_agree(&unrolled, &format!("random loop case {case}"));
        },
    );
}

/// On a many-commit function (several value-disconnected rollable blocks
/// plus a short unprofitable tail block) the caches must actually kick in:
/// clean blocks are served from the candidate and size caches instead of
/// being re-scanned every sweep, and the tail block's repeated reject is
/// replayed from the memo instead of being rebuilt.
#[test]
fn caches_are_effective_on_many_commit_input() {
    let blocks = 12;
    let mut text = String::from("module \"many\"\nglobal @t : [2 x i32] = zero\n");
    for b in 0..blocks {
        text.push_str(&format!("global @g{b} : [8 x i32] = zero\n"));
    }
    // The short block comes first so every sweep visits (and rejects) its
    // candidate before reaching that sweep's commit.
    text.push_str(
        "func @f() -> void {\nentry:\n  br short\nshort:\n\
         \x20 %t0 = gep i32, @t, i64 0\n  store i32 1, %t0\n\
         \x20 %t1 = gep i32, @t, i64 1\n  store i32 8, %t1\n  br b0\n",
    );
    for b in 0..blocks {
        text.push_str(&format!("b{b}:\n"));
        for i in 0..8 {
            text.push_str(&format!("  %p{b}_{i} = gep i32, @g{b}, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %p{b}_{i}\n", b * 100 + i * 7));
        }
        if b + 1 < blocks {
            text.push_str(&format!("  br b{}\n", b + 1));
        } else {
            text.push_str("  ret\n");
        }
    }
    text.push_str("}\n");
    let module = parse_module(&text).unwrap();
    verify_module(&module).expect("generated module verifies");
    let stats = assert_engines_agree(&module, "many-commit synthetic");

    assert_eq!(stats.rolled as usize, blocks, "every store block rolls");
    // With `blocks` commits, the full-rescan engine would re-scan every
    // block every sweep; the incremental engine must mostly reuse.
    assert!(
        stats.cache.cand_blocks_reused > stats.cache.cand_blocks_scanned,
        "candidate cache ineffective: {:?}",
        stats.cache
    );
    assert!(
        stats.cache.size_blocks_reused > stats.cache.size_blocks_computed,
        "size cache ineffective: {:?}",
        stats.cache
    );
    // The tail block is rejected once per sweep; all but the first are
    // memo replays.
    assert!(
        stats.cache.memo_hits > 0,
        "memoized verdicts never replayed: {:?}",
        stats.cache
    );
}

/// A function whose only candidate is rejected every sweep: the discarded
/// speculation must leave *no* observable trace on the function that lands
/// back in the module. The engine speculates in place under a snapshot
/// journal, so this pins rollback exactness — bytes, value-arena length
/// (rejected graph builds intern constants that rollback must un-intern),
/// and the revision counter (a bump would poison downstream
/// revision-keyed caches as if the function had changed).
#[test]
fn discarded_speculation_leaves_no_observable_trace() {
    let text = r#"
module "reject"
global @t : [2 x i32] = zero
func @f() -> void {
entry:
  %t0 = gep i32, @t, i64 0
  store i32 1, %t0
  %t1 = gep i32, @t, i64 1
  store i32 8, %t1
  ret
}
"#;
    let module = parse_module(text).unwrap();
    let id = module.func_ids().next().unwrap();
    let before_print = print_module(&module);
    let before_revision = module.func(id).revision();
    let before_values = module.func(id).num_values();

    for opts in [RolagOptions::default(), RolagOptions::measured()] {
        let mut rolled = module.clone();
        let stats = roll_module(&mut rolled, &opts);
        assert!(stats.attempted > 0, "the candidate must at least be tried");
        assert_eq!(stats.rolled, 0, "the candidate must be rejected");
        assert_eq!(print_module(&rolled), before_print, "bytes changed");
        assert_eq!(
            rolled.func(id).revision(),
            before_revision,
            "a discarded candidate must not bump the revision counter"
        );
        assert_eq!(
            rolled.func(id).num_values(),
            before_values,
            "rollback must un-intern speculative constants"
        );
    }
}

/// Rejections interleaved with commits: each sweep of the many-commit
/// input rejects the short block's candidate *before* committing a roll,
/// so the per-block size state (`BlockSizeCache`, and the regalloc
/// `SizeSketch` under measured costs) carries across a rollback into the
/// very next profitability decision. Any stale carry diverges from the
/// full-rescan reference byte-for-byte or trips the debug parity asserts
/// that cross-check the sketch against a from-scratch `measure_function`
/// every sweep. The cache counters prove the carried state was *used*
/// after rollbacks rather than conservatively rebuilt.
#[test]
fn rejects_before_commits_reuse_carried_size_state() {
    let blocks = 6;
    let mut text = String::from("module \"mix\"\nglobal @t : [2 x i32] = zero\n");
    for b in 0..blocks {
        text.push_str(&format!("global @g{b} : [8 x i32] = zero\n"));
    }
    text.push_str(
        "func @f() -> void {\nentry:\n  br short\nshort:\n\
         \x20 %t0 = gep i32, @t, i64 0\n  store i32 1, %t0\n\
         \x20 %t1 = gep i32, @t, i64 1\n  store i32 8, %t1\n  br b0\n",
    );
    for b in 0..blocks {
        text.push_str(&format!("b{b}:\n"));
        for i in 0..8 {
            text.push_str(&format!("  %p{b}_{i} = gep i32, @g{b}, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %p{b}_{i}\n", b * 100 + i * 7));
        }
        if b + 1 < blocks {
            text.push_str(&format!("  br b{}\n", b + 1));
        } else {
            text.push_str("  ret\n");
        }
    }
    text.push_str("}\n");
    let module = parse_module(&text).unwrap();
    verify_module(&module).expect("generated module verifies");

    for (opts, label) in [
        (RolagOptions::default(), "mix default"),
        (RolagOptions::measured(), "mix measured"),
    ] {
        let stats = assert_engines_agree_with(&module, &opts, label);
        assert_eq!(stats.rolled as usize, blocks, "{label}: all blocks roll");
        assert!(
            stats.rejected_profit > 0,
            "{label}: the short block must be rejected each sweep"
        );
        assert!(
            stats.cache.size_blocks_reused > 0,
            "{label}: size state must be served from carry after rollbacks: {:?}",
            stats.cache
        );
        assert!(
            stats.cache.cand_blocks_reused > 0,
            "{label}: candidate lists must be served from carry: {:?}",
            stats.cache
        );
    }
}
