//! Conformance suite for the validator-gated beam search
//! (`rolag::search`). Two properties pin the search engine to the greedy
//! baseline:
//!
//! * **beam:1 is greedy.** A width-1 beam never reaches the beam engine
//!   (there is nothing to choose between), so `beam:1` must produce a
//!   byte-identical module and equal outcome statistics to the greedy
//!   pass on every corpus we have — TSVC kernels, the checked-in repro
//!   modules, and a 256-module generator sweep.
//! * **Wider beams never lose.** The beam engine runs the greedy trial
//!   first and only adopts a searched result that *measures strictly
//!   smaller*, so for every function the measured text bytes under
//!   `beam:k` are at most the greedy result's — per-function
//!   monotonicity, checked here for k = 2 and k = 4.

use std::path::Path;

use rolag::{roll_module, RolagOptions, SearchConfig};
use rolag_difftest::generate_module;
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use rolag_lower::measure_function;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};

fn beam(width: usize) -> RolagOptions {
    RolagOptions {
        search: SearchConfig::Beam {
            width,
            depth: SearchConfig::DEFAULT_DEPTH,
        },
        ..RolagOptions::default()
    }
}

/// Rolls `module` greedily and with `beam:1`; asserts byte- and
/// stats-identical results. Returns the greedy roll count.
fn assert_beam1_is_greedy(module: &Module, what: &str) -> u64 {
    let mut greedy = module.clone();
    let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());

    let mut searched = module.clone();
    let searched_stats = roll_module(&mut searched, &beam(1));

    assert_eq!(
        print_module(&searched),
        print_module(&greedy),
        "{what}: beam:1 diverged from greedy"
    );
    assert_eq!(
        searched_stats, greedy_stats,
        "{what}: beam:1 stats diverged from greedy"
    );
    greedy_stats.rolled
}

/// Rolls `module` greedily and with `beam:width`; asserts the searched
/// result never measures more text bytes than greedy, function by
/// function. Returns `(greedy_rolls, searched_adopted)`.
fn assert_beam_is_monotonic(module: &Module, width: usize, what: &str) -> (u64, u64) {
    let mut greedy = module.clone();
    let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());

    let mut searched = module.clone();
    let searched_stats = roll_module(&mut searched, &beam(width));

    for id in module.func_ids() {
        let name = &module.func(id).name;
        let g = greedy.func_by_name(name).expect("greedy keeps the func");
        let s = searched.func_by_name(name).expect("search keeps the func");
        let gb = measure_function(&greedy, greedy.func(g));
        let sb = measure_function(&searched, searched.func(s));
        assert!(
            sb <= gb,
            "{what}: beam:{width} grew @{name}: {sb} bytes vs greedy's {gb}"
        );
    }
    (greedy_stats.rolled, searched_stats.search.adopted)
}

fn repro_modules() -> Vec<(String, Module)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("repros");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/repros exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rir"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no repro modules in {}", dir.display());
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable repro");
            let module =
                parse_module(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
            (name, module)
        })
        .collect()
}

#[test]
fn beam1_matches_greedy_on_tsvc() {
    let mut rolled = 0u64;
    for spec in all_kernels() {
        let module = build_kernel_module(&spec);
        rolled += assert_beam1_is_greedy(&module, &format!("tsvc.{}", spec.name));
    }
    assert!(rolled >= 1, "no TSVC kernel rolled at all");
}

#[test]
fn beam1_matches_greedy_on_repros() {
    for (name, module) in repro_modules() {
        assert_beam1_is_greedy(&module, &name);
    }
}

#[test]
fn beam1_matches_greedy_on_generated_corpus() {
    let mut rolled = 0u64;
    for i in 0..256 {
        let module = generate_module(0, i);
        rolled += assert_beam1_is_greedy(&module, &format!("module (0,{i})"));
    }
    assert!(
        rolled >= 32,
        "corpus too tame: only {rolled} rolls across 256 modules"
    );
}

#[test]
fn wider_beams_never_grow_a_function_on_tsvc() {
    for width in [2, 4] {
        let mut rolled = 0u64;
        for spec in all_kernels() {
            let module = build_kernel_module(&spec);
            let (r, _) = assert_beam_is_monotonic(&module, width, &format!("tsvc.{}", spec.name));
            rolled += r;
        }
        assert!(rolled >= 1, "no TSVC kernel rolled at all");
    }
}

#[test]
fn wider_beams_never_grow_a_function_on_generated_corpus() {
    for width in [2, 4] {
        for i in 0..64 {
            let module = generate_module(3, i);
            assert_beam_is_monotonic(&module, width, &format!("module (3,{i})"));
        }
    }
}

/// The beam engine must actually explore: across the generated corpus a
/// width-4 beam must report explored candidates, and the poisoned-tail
/// shape (a runtime store appended to a constant run) must be *won* —
/// greedy misses the roll, the beam adopts one.
#[test]
fn beam_explores_and_wins_where_greedy_misses() {
    let text = r#"
module "tail"
global @a : [16 x i32] = zero
func @f(i32 %p0) -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 7, %g1
  %g2 = gep i32, @a, i64 2
  store i32 14, %g2
  %g3 = gep i32, @a, i64 3
  store i32 21, %g3
  %g4 = gep i32, @a, i64 4
  store i32 28, %g4
  %g5 = gep i32, @a, i64 5
  store i32 35, %g5
  %g6 = gep i32, @a, i64 6
  store i32 42, %g6
  %g7 = gep i32, @a, i64 7
  store i32 49, %g7
  %g8 = gep i32, @a, i64 8
  store %p0, %g8
  ret
}
"#;
    let module = parse_module(text).unwrap();

    let mut greedy = module.clone();
    let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());
    assert_eq!(greedy_stats.rolled, 0, "fixture must defeat greedy");

    let mut searched = module.clone();
    let searched_stats = roll_module(&mut searched, &beam(4));
    assert_eq!(searched_stats.rolled, 1, "beam:4 must roll the fixture");
    assert_eq!(searched_stats.search.adopted, 1);
    assert!(searched_stats.search.explored > 1);

    let id = searched.func_by_name("f").unwrap();
    let gid = greedy.func_by_name("f").unwrap();
    assert!(
        measure_function(&searched, searched.func(id))
            < measure_function(&greedy, greedy.func(gid)),
        "the adopted roll must measure strictly smaller"
    );
}
