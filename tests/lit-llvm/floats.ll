; Float arithmetic: fneg becomes a subtraction from negative zero and
; fast-math flags are dropped.
; CHECK: func @mix(double %p0, double %p1) -> double {
; CHECK: %2 = fsub double double -0.0, %p0
; CHECK-NEXT: %3 = fmul double %2, %p1
; CHECK-NEXT: %4 = fadd double %3, double 1.5
; CHECK-NEXT: %5 = fcmp olt %4, double 0.0
; CHECK-NEXT: %6 = select double %5, double 0.0, %4
; CHECK-NEXT: ret %6
define double @mix(double %x, double %y) {
entry:
  %n = fneg double %x
  %p = fmul fast double %n, %y
  %s = fadd double %p, 1.5
  %cold = fcmp olt double %s, 0.0
  %r = select i1 %cold, double 0.0, double %s
  ret double %r
}
