; Basic integer arithmetic, comparisons, and select import to the
; matching native opcodes; wrapping flags are dropped.
; CHECK: func @clamp_add(i32 %p0, i32 %p1) -> i32 {
; CHECK: %2 = add i32 %p0, %p1
; CHECK-NEXT: %3 = icmp sgt %2, i32 255
; CHECK-NEXT: %4 = select i32 %3, i32 255, %2
; CHECK-NEXT: ret %4
define i32 @clamp_add(i32 %a, i32 %b) {
entry:
  %s = add nsw i32 %a, %b
  %big = icmp sgt i32 %s, 255
  %r = select i1 %big, i32 255, i32 %s
  ret i32 %r
}
