; The native IR has no switch: the importer lowers it to a compare
; chain, retargeting phis in the destinations.
; CHECK: entry:
; CHECK-NEXT: %1 = icmp eq %p0, i32 0
; CHECK-NEXT: condbr %1, zero, entry.sw0
; CHECK: entry.sw0:
; CHECK-NEXT: %2 = icmp eq %p0, i32 1
; CHECK-NEXT: condbr %2, one, other
; CHECK: join:
; CHECK-NEXT: %3 = phi i32 [ i32 10, zero ], [ i32 11, one ], [ i32 12, other ]
; CHECK-NEXT: ret %3
; CHECK-COUNT-2: icmp eq
define i32 @classify(i32 %x) {
entry:
  switch i32 %x, label %other [
    i32 0, label %zero
    i32 1, label %one
  ]
zero:
  br label %join
one:
  br label %join
other:
  br label %join
join:
  %r = phi i32 [ 10, %zero ], [ 11, %one ], [ 12, %other ]
  ret i32 %r
}
