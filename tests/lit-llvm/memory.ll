; Alloca, gep chains, and load/store round-trip through the importer;
; alignment and inbounds annotations are dropped.
; CHECK: func @swap(ptr %p0) -> void {
; CHECK: %1 = alloca i32
; CHECK-NEXT: %2 = gep i32, %p0, i64 1
; CHECK-NEXT: %3 = load i32, %p0
; CHECK-NEXT: %4 = load i32, %2
; CHECK-NEXT: store %4, %p0
; CHECK-NEXT: store %3, %2
; CHECK-NEXT: store %3, %1
; CHECK-NEXT: ret
define void @swap(ptr %p) {
entry:
  %tmp = alloca i32, align 4
  %q = getelementptr inbounds i32, ptr %p, i64 1
  %a = load i32, ptr %p, align 4
  %b = load i32, ptr %q, align 4
  store i32 %b, ptr %p, align 4
  store i32 %a, ptr %q, align 4
  store i32 %a, ptr %tmp
  ret void
}
