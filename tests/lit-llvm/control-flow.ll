; Branches and phis: a counted loop imports with its phi incoming
; edges intact.
; CHECK: func @sum_to(i64 %p0) -> i64 {
; CHECK: entry:
; CHECK-NEXT: br loop
; CHECK: loop:
; CHECK-NEXT: %1 = phi i64 [ i64 0, entry ], [ %4, loop ]
; CHECK-NEXT: %2 = phi i64 [ i64 0, entry ], [ %3, loop ]
; CHECK-NEXT: %3 = add i64 %2, %1
; CHECK-NEXT: %4 = add i64 %1, i64 1
; CHECK-NEXT: %5 = icmp eq %4, %p0
; CHECK-NEXT: condbr %5, exit, loop
; CHECK: exit:
; CHECK-NEXT: ret %3
define i64 @sum_to(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %loop ]
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  %done = icmp eq i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
