; Out-of-subset functions are skipped one at a time with a reason
; code; in-subset functions in the same module still import. A
; skipped definition leaves a declaration behind when something in
; the module may still reference it.
; SKIP: @vec_add unsupported-type
; SKIP: @spin atomics
; SKIP: @printf_like varargs
; CHECK: declare @spin(ptr %p0) -> void readwrite
; CHECK: func @ok(i32 %p0) -> i32 {
; CHECK: %1 = mul i32 %p0, i32 3
; CHECK-NEXT: ret %1
define <4 x i32> @vec_add(<4 x i32> %a, <4 x i32> %b) {
entry:
  %s = add <4 x i32> %a, %b
  ret <4 x i32> %s
}

define void @spin(ptr %p) {
entry:
  %old = atomicrmw add ptr %p, i32 1 seq_cst
  ret void
}

define i32 @printf_like(ptr %fmt, ...) {
entry:
  ret i32 0
}

define i32 @ok(i32 %x) {
entry:
  %d = mul i32 %x, 3
  ret i32 %d
}
