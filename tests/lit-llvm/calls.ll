; External declarations keep their effects; debug intrinsic calls are
; dropped rather than skipped (only the metadata-typed declaration
; itself is out of subset).
; SKIP: @llvm.dbg.value unsupported-type
; CHECK: declare @emit(i32 %p0) -> i32 readwrite
; CHECK: func @twice(i32 %p0) -> i32 {
; CHECK: %1 = call i32 @emit(%p0)
; CHECK-NEXT: %2 = call i32 @emit(%1)
; CHECK-NEXT: ret %2
declare i32 @emit(i32) nounwind
declare void @llvm.dbg.value(metadata, metadata, metadata)

define i32 @twice(i32 %x) {
entry:
  call void @llvm.dbg.value(metadata i32 %x, metadata !1, metadata !2), !dbg !3
  %a = tail call i32 @emit(i32 %x)
  %b = call i32 @emit(i32 %a)
  ret i32 %b
}
