; Global arrays import with their initializers; zeroinitializer maps
; to a zero-filled global.
; CHECK: const @table : [4 x i32] = ints i32 [1, 2, 3, 4]
; CHECK-NEXT: global @scratch : [8 x i8] = zero
; CHECK: func @first() -> i32 {
; CHECK: %0 = gep [4 x i32], @table, i64 0, i64 0
; CHECK-NEXT: %1 = load i32, %0
; CHECK-NEXT: ret %1
@table = internal constant [4 x i32] [i32 1, i32 2, i32 3, i32 4], align 4
@scratch = global [8 x i8] zeroinitializer

define i32 @first() {
entry:
  %p = getelementptr inbounds [4 x i32], ptr @table, i64 0, i64 0
  %v = load i32, ptr %p
  ret i32 %v
}
