//! Workspace-level integration tests: the full pipeline across crates —
//! parse → verify → unroll → CSE → roll/reroll → lower → interpret.

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

/// Text IR → parse → roll → print → re-parse → identical behaviour.
#[test]
fn parse_roll_print_reparse_round_trip() {
    let text = r#"
module "rt"
global @t : [8 x i32] = zero
func @f() -> i32 {
entry:
  %g0 = gep i32, @t, i64 0
  store i32 3, %g0
  %g1 = gep i32, @t, i64 1
  store i32 6, %g1
  %g2 = gep i32, @t, i64 2
  store i32 9, %g2
  %g3 = gep i32, @t, i64 3
  store i32 12, %g3
  %g4 = gep i32, @t, i64 4
  store i32 15, %g4
  %g5 = gep i32, @t, i64 5
  store i32 18, %g5
  %r = gep i32, @t, i64 2
  %v = load i32, %r
  ret %v
}
"#;
    let original = parse_module(text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 1);

    let printed = print_module(&rolled);
    let reparsed = parse_module(&printed).expect("rolled module re-parses");
    verify_module(&reparsed).expect("re-parsed module verifies");
    check_equivalence(&original, &reparsed, "f", &[]).expect("behaviour preserved");
}

/// The full evaluation pipeline on a loop: unroll, disturb with CSE, then
/// both rolling techniques, with sizes measured by the lowering simulator.
#[test]
fn unroll_cse_roll_pipeline_preserves_behaviour_and_shrinks() {
    let text = r#"
module "p"
global @a : [64 x i32] = zero
global @b : [64 x i32] = ints i32 [9,8,7,6,5,4,3,2,1,0,9,8,7,6,5,4,3,2,1,0,9,8,7,6,5,4,3,2,1,0,9,8,7,6,5,4,3,2,1,0,9,8,7,6,5,4,3,2,1,0,9,8,7,6,5,4,3,2,1,0,9,8,7,6]
func @f() -> i32 {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %p = gep i32, @b, %iv
  %v = load i32, %p
  %w = mul i32 %v, i32 3
  %q = gep i32, @a, %iv
  store %w, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 64
  condbr %c, loop, exit
exit:
  %r = gep i32, @a, i64 10
  %out = load i32, %r
  ret %out
}
"#;
    let original = parse_module(text).unwrap();
    let mut base = original.clone();
    unroll_module(&mut base, 8);
    cse_module(&mut base);
    cleanup_module(&mut base);
    verify_module(&base).unwrap();
    check_equivalence(&original, &base, "f", &[]).unwrap();
    let base_size = measure_module(&base).code_footprint();

    let mut llvm = base.clone();
    let llvm_stats = reroll_module(&mut llvm);
    cleanup_module(&mut llvm);
    check_equivalence(&base, &llvm, "f", &[]).unwrap();

    let mut rolag_m = base.clone();
    let stats = roll_module(&mut rolag_m, &RolagOptions::default());
    cleanup_module(&mut rolag_m);
    check_equivalence(&base, &rolag_m, "f", &[]).unwrap();
    let rolag_size = measure_module(&rolag_m).code_footprint();

    assert_eq!(llvm_stats.rerolled, 1, "simple kernel rerolls");
    assert_eq!(stats.rolled, 1, "RoLAG rolls it too");
    assert!(
        rolag_size < base_size,
        "rolled {rolag_size} >= unrolled {base_size}"
    );
}

/// Every generated AnghaBench function behaves identically after RoLAG.
#[test]
fn angha_corpus_rolling_is_behaviour_preserving() {
    let cfg = AnghaConfig {
        seed: 11,
        functions: 120,
    };
    let corpus = generate(&cfg);
    let mut failures = Vec::new();
    for (name, kind, module) in corpus.entries {
        let mut rolled = module.clone();
        roll_module(&mut rolled, &RolagOptions::default());
        if let Err(e) = verify_module(&rolled) {
            failures.push(format!("{name} ({kind:?}): verify: {e:?}"));
            continue;
        }
        // Entry points take differing signatures; run with a safe pointer
        // into scratch memory and a couple of integers.
        let args = entry_args(&module, &name);
        if let Err(msg) = check_equivalence(&module, &rolled, &name, &args) {
            failures.push(format!("{name} ({kind:?}): {msg}"));
        }
    }
    assert!(failures.is_empty(), "{}\n", failures.join("\n"));
}

fn entry_args(module: &rolag_ir::Module, name: &str) -> Vec<IValue> {
    let f = module.func(module.func_by_name(name).unwrap());
    f.param_tys()
        .iter()
        .map(|&ty| {
            if module.types.is_ptr(ty) {
                // A valid address: the base of the module's first global, or
                // fresh scratch if there is none.
                let interp = Interpreter::new(module);
                match module.global_ids().next() {
                    Some(g) => IValue::Ptr(interp.global_addr(g)),
                    None => IValue::Ptr(64),
                }
            } else if module.types.is_float(ty) {
                IValue::Float(1.5)
            } else {
                IValue::Int(37)
            }
        })
        .collect()
}

/// The §V-C improvement end to end: RoLAG rolls the unrolled loop into a
/// nest; the flattening post-pass collapses it back to a single loop,
/// matching the baseline's shape — with behaviour preserved throughout.
#[test]
fn rolag_nest_flattens_to_a_single_loop() {
    let text = r#"
module "fl"
global @a : [64 x i32] = zero
func @f() -> i32 {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %t = trunc i32 %iv
  %m = mul i32 %t, i32 3
  %q = gep i32, @a, %iv
  store %m, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 64
  condbr %c, loop, exit
exit:
  %p = gep i32, @a, i64 11
  %v = load i32, %p
  ret %v
}
"#;
    let original = parse_module(text).unwrap();
    let mut m = original.clone();
    unroll_module(&mut m, 8);
    cse_module(&mut m);
    cleanup_module(&mut m);
    let stats = roll_module(&mut m, &RolagOptions::default());
    assert_eq!(stats.rolled, 1, "RoLAG re-rolls the unrolled loop");
    let nested_size = measure_module(&m).code_footprint();

    // RoLAG created a nest (two loops).
    let f = m.func(m.func_by_name("f").unwrap());
    let dom = rolag_analysis::DomTree::compute(f);
    assert_eq!(rolag_analysis::find_loops(f, &dom).len(), 2);

    let flattened = rolag_transforms::flatten_module(&mut m);
    cleanup_module(&mut m);
    assert_eq!(flattened, 1, "the nest flattens");
    verify_module(&m).unwrap();
    check_equivalence(&original, &m, "f", &[]).unwrap();

    let f = m.func(m.func_by_name("f").unwrap());
    let dom = rolag_analysis::DomTree::compute(f);
    assert_eq!(rolag_analysis::find_loops(f, &dom).len(), 1, "one loop");
    assert!(
        measure_module(&m).code_footprint() < nested_size,
        "flattening shrinks the code further"
    );
}

/// Estimated and measured sizes agree on ordering for a mixed module.
#[test]
fn estimate_and_measurement_are_correlated() {
    let cfg = AnghaConfig {
        seed: 5,
        functions: 60,
    };
    let corpus = generate(&cfg);
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut prev: Option<(u64, u64)> = None;
    for (_, _, module) in &corpus.entries {
        let est = rolag_analysis::cost::module_text_estimate(&rolag_analysis::X86SizeModel, module);
        let meas = measure_module(module).text;
        if let Some((pe, pm)) = prev {
            total += 1;
            if (est > pe) == (meas > pm) {
                agree += 1;
            }
        }
        prev = Some((est, meas));
    }
    // The TTI estimate is deliberately inexact but must track the backend.
    assert!(
        agree as f64 >= 0.8 * total as f64,
        "estimate ordering agreement too low: {agree}/{total}"
    );
}
