//! Serve determinism: a cache-served request must be byte-identical to a
//! cold roll.
//!
//! The cross-request store's whole contract is that replaying a cached
//! body is indistinguishable from compiling it fresh: same printed module,
//! same outcome statistics. These tests pin that contract end to end
//! through the service protocol — over the TSVC repro corpus and over a
//! 128-module generator sweep — by submitting every module twice to one
//! [`Server`] and comparing the second (store-served) response against
//! both the first response and a direct, store-less driver roll.

use rolag::{roll_module_par_with, DriverOptions, RolagOptions};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_serve::json::{parse, Json};
use rolag_serve::proto::Request;
use rolag_serve::{Server, ServerConfig};

/// Submits `text` as a roll request and returns the parsed response
/// document. Panics on protocol- or request-level failure.
fn roll_via(server: &Server, id: &str, text: &str, options: &str) -> Json {
    let line = Request::Roll {
        id: id.into(),
        module: text.into(),
        options: options.into(),
        client: None,
    }
    .render();
    let (response, shutdown) = server.handle_line(&line);
    assert!(!shutdown);
    let doc = parse(&response).expect("well-formed response line");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request {id} failed: {:?}",
        doc.get("error")
    );
    doc
}

fn module_of(doc: &Json) -> &str {
    doc.get("module")
        .and_then(Json::as_str)
        .expect("success responses carry the module")
}

fn counter(doc: &Json, section: &str, key: &str) -> f64 {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing {section}.{key}"))
}

/// The module as the driver itself would roll it cold, with no store —
/// the reference the service output must match byte for byte.
fn direct_roll(text: &str, opts: &RolagOptions) -> String {
    let mut module = parse_module(text).expect("corpus parses");
    roll_module_par_with(&mut module, opts, &DriverOptions::default(), None, None);
    print_module(&module)
}

/// First request, repeat request: the repeat must be served entirely from
/// the store, with the same bytes and the same outcome stats. (The first
/// request may itself hit entries seeded by earlier modules — generated
/// corpora contain cross-module duplicates — which is fine: a hit is
/// byte-identical by contract, which is exactly what this checks.)
/// Returns the first response for further assertions.
fn assert_replay_identical(server: &Server, tag: &str, text: &str, preset: &str) -> Json {
    let cold = roll_via(server, &format!("{tag}-cold"), text, preset);
    let warm = roll_via(server, &format!("{tag}-warm"), text, preset);

    assert_eq!(
        module_of(&cold),
        module_of(&warm),
        "{tag}: store-served module diverged from the cold roll"
    );
    assert_eq!(
        cold.get("stats"),
        warm.get("stats"),
        "{tag}: outcome stats diverged between cold and replay"
    );

    let functions = counter(&cold, "request", "functions");
    assert_eq!(counter(&warm, "request", "store_hits"), functions, "{tag}");
    assert_eq!(counter(&warm, "request", "store_misses"), 0.0, "{tag}");
    cold
}

#[test]
fn tsvc_corpus_replays_byte_identical() {
    let server = Server::new(&ServerConfig {
        jobs: 2,
        capacity: 1024,
    });
    let text = print_module(&rolag_suites::tsvc::build_suite_module());
    let cold = assert_replay_identical(&server, "tsvc", &text, "default");

    // A fresh server with one corpus: the first request misses every
    // definition, and its output equals a direct, store-less driver roll.
    assert_eq!(counter(&cold, "request", "store_hits"), 0.0);
    assert_eq!(
        counter(&cold, "request", "store_misses"),
        counter(&cold, "request", "functions"),
    );
    assert_eq!(
        module_of(&cold),
        direct_roll(&text, &RolagOptions::default()),
        "service output diverged from a direct driver roll"
    );
}

#[test]
fn generator_sweep_replays_byte_identical() {
    const SEED: u64 = 0x0de7_e121;
    const MODULES: u64 = 128;
    let server = Server::new(&ServerConfig {
        jobs: 2,
        capacity: 4096,
    });
    for index in 0..MODULES {
        let text = rolag_difftest::gen::generate(SEED, index);
        assert_replay_identical(&server, &format!("gen-{index}"), &text, "default");
    }
    // Every module was submitted exactly twice, so at least half of all
    // store lookups hit (more when the corpus duplicates across modules).
    let snap = server.snapshot();
    assert_eq!(snap.requests, 2 * MODULES);
    assert_eq!(snap.errors, 0);
    assert!(
        snap.store.hit_rate() >= 0.5,
        "duplicated sweep must hit: {:?}",
        snap.store
    );
}

/// The replay contract holds under the expensive presets too — a store
/// hit must reproduce the translation-validated output and its verdict
/// counters, not just the default pipeline's.
#[test]
fn validated_preset_replays_byte_identical() {
    const SEED: u64 = 0x7a11_da7e;
    let server = Server::new(&ServerConfig {
        jobs: 2,
        capacity: 256,
    });
    for index in 0..8 {
        let text = rolag_difftest::gen::generate(SEED, index);
        let tag = format!("tv-{index}");
        assert_replay_identical(&server, &tag, &text, "validated");
        let cold = roll_via(&server, &format!("{tag}-ref"), &text, "validated");
        assert_eq!(
            module_of(&cold),
            direct_roll(&text, &RolagOptions::validated()),
            "{tag}: validated service output diverged from a direct roll"
        );
    }
}
