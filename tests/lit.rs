//! A lit-style golden-test suite over `tests/lit/*.rir`.
//!
//! Every file in the suite is a self-contained golden: a textual IR
//! module whose comment lines carry the test. One `; RUN: <spec>` line
//! names the `rolag-passes` pipeline to run (the same spec grammar as
//! `rolag-opt --passes`), and `; CHECK...` lines are FileCheck-style
//! directives matched against the printed post-pipeline module:
//!
//! ```text
//! ; RUN: cleanup,rolag
//! ; CHECK: rolag.loop
//! ; CHECK-COUNT-1: store
//! module "example"
//! ...
//! ```
//!
//! The harness runs the whole directory in one test so a red run lists
//! every broken golden. Directive failures render as caret diagnostics
//! anchored to the original file — the check script is derived from the
//! golden line-for-line and column-for-column (the leading `;` becomes a
//! space, non-directive lines go blank), so `file:line:col` points at
//! the exact `; CHECK` line that missed.

use std::path::{Path, PathBuf};

use rolag_ir::filecheck::filecheck;
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_passes::{
    AnalysisManager, PassContext, PassManager, PassManagerOptions, PassRegistry, TargetKind,
};

fn lit_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("lit")
}

/// Every golden in the suite, sorted for deterministic ordering.
fn discover() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(lit_dir())
        .expect("tests/lit exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rir"))
        .collect();
    files.sort();
    files
}

/// Extracts the single `; RUN:` pipeline spec of a golden.
fn run_spec(text: &str) -> Result<String, String> {
    let specs: Vec<&str> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("; RUN:"))
        .map(str::trim)
        .collect();
    match specs.as_slice() {
        [spec] => Ok((*spec).to_string()),
        [] => Err("no `; RUN:` line".into()),
        _ => Err(format!("{} `; RUN:` lines, expected one", specs.len())),
    }
}

/// Derives the check script: `; CHECK...` lines keep their line number
/// and column (the `;` becomes a space), everything else goes blank.
fn check_script(text: &str) -> String {
    text.lines()
        .map(|l| {
            if l.trim_start().starts_with("; CHECK") {
                l.replacen(';', " ", 1)
            } else {
                String::new()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs one golden end to end. `Err` is the full diagnostic to report.
fn run_golden(origin: &str, text: &str) -> Result<(), String> {
    let spec = run_spec(text).map_err(|e| format!("{origin}: {e}"))?;
    let passes = PassRegistry::builtin()
        .parse_pipeline(&spec)
        .map_err(|e| e.render(origin, &spec))?;
    let mut module =
        parse_module(text).map_err(|e| format!("{origin}:{}:{}: {}", e.line, e.col, e.message))?;
    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each: true,
        print_changed: false,
    });
    pm.add_all(passes);
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(TargetKind::default());
    pm.run(&mut module, &mut am, &mut cx).map_err(|e| {
        format!(
            "{origin}: verify failed after `{}`: {}",
            e.pass,
            e.errors.join("; ")
        )
    })?;
    let printed = print_module(&module);
    let script = check_script(text);
    filecheck(&printed, &script).map_err(|e| {
        format!(
            "{}\n--- output of `{spec}` ---\n{printed}",
            e.render(origin, &script)
        )
    })
}

#[test]
fn lit_goldens_pass() {
    let files = discover();
    assert!(!files.is_empty(), "no goldens in {}", lit_dir().display());
    let mut failures = Vec::new();
    for path in &files {
        let origin = format!("tests/lit/{}", path.file_name().unwrap().to_string_lossy());
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        if let Err(diag) = run_golden(&origin, &text) {
            failures.push(diag);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} lit golden(s) failed:\n\n{}",
        failures.len(),
        files.len(),
        failures.join("\n\n")
    );
}

#[test]
fn lit_suite_is_seeded() {
    let files = discover();
    assert!(
        files.len() >= 12,
        "the lit suite should hold at least 12 goldens, found {}",
        files.len()
    );
}

#[test]
fn run_line_is_mandatory_and_unique() {
    let module = "module \"m\"\nfunc @f() -> void {\nentry:\n  ret\n}\n";
    let err = run_golden("a.rir", module).unwrap_err();
    assert!(err.contains("no `; RUN:` line"), "got: {err}");

    let two = format!("; RUN: cleanup\n; RUN: cse\n{module}");
    let err = run_golden("b.rir", &two).unwrap_err();
    assert!(err.contains("2 `; RUN:` lines"), "got: {err}");
}

#[test]
fn bad_pipeline_specs_render_spec_diagnostics() {
    let text = "; RUN: cleanupp\nmodule \"m\"\nfunc @f() -> void {\nentry:\n  ret\n}\n";
    let err = run_golden("c.rir", text).unwrap_err();
    assert!(
        err.contains("unknown pass `cleanupp`") && err.contains("did you mean `cleanup`?"),
        "got: {err}"
    );
}

#[test]
fn failed_directives_point_at_the_golden_line() {
    let text = "\
; RUN: cleanup
module \"m\"
; CHECK: sub i64
func @f() -> void {
entry:
  ret
}
";
    let err = run_golden("d.rir", text).unwrap_err();
    assert!(err.starts_with("d.rir:3:3: error:"), "got: {err}");
    assert!(err.contains('^'), "caret diagnostic expected, got: {err}");
}
