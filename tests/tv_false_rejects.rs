//! Soundness-direction property tests for the `rolag-tv` translation
//! validator. The validator is one-sided: it may only *reject*, so the
//! property worth sweeping is the absence of false rejects — every
//! rewrite the engine accepts must be proven, on generated corpora and
//! on the paper's benchmark suites alike, and turning validation on
//! must never change what the pass produces.

use rolag::{
    roll_module, roll_module_full_rescan, search_function_audited, RejectedSpeculation,
    RolagOptions, SearchAudit,
};
use rolag_difftest::{args_for, compare_behaviour, generate_module};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::effects_table;

/// Rolls `module` twice — validation off and on — and asserts the
/// validated run proves every accepted rewrite and commits exactly the
/// same result. Returns `(tv_validated, rolled)` for corpus totals.
fn assert_no_false_rejects(module: &Module, what: &str) -> (u64, u64) {
    let mut plain = module.clone();
    let plain_stats = roll_module(&mut plain, &RolagOptions::default());

    let mut validated = module.clone();
    let stats = roll_module(&mut validated, &RolagOptions::validated());

    assert_eq!(
        stats.tv_rejected, 0,
        "{what}: the validator rejected an engine-accepted rewrite: {stats}"
    );
    assert!(
        stats.tv_validated >= stats.rolled,
        "{what}: every committed roll must have been validated: {stats}"
    );
    assert_eq!(
        stats.rolled, plain_stats.rolled,
        "{what}: validation changed the number of commits"
    );
    assert_eq!(
        print_module(&validated),
        print_module(&plain),
        "{what}: validation changed the produced module"
    );
    (stats.tv_validated, stats.rolled)
}

#[test]
fn generator_corpus_has_zero_static_false_rejects() {
    let mut validated = 0u64;
    let mut rolled = 0u64;
    for i in 0..256 {
        let module = generate_module(0, i);
        let (v, r) = assert_no_false_rejects(&module, &format!("module (0,{i})"));
        validated += v;
        rolled += r;
    }
    // The corpus must actually exercise the validator, not vacuously pass.
    assert!(
        rolled >= 32,
        "corpus too tame: only {rolled} rolls across 256 modules"
    );
    assert!(validated >= rolled);
}

#[test]
fn validated_incremental_engine_matches_full_rescan() {
    // The tv counters are part of RolagStats equality, so this pins the
    // incremental engine's memo replay to the full rescan's re-validation
    // behaviour (including tv_validated on unprofitable replays).
    let opts = RolagOptions::validated();
    for i in 0..64 {
        let module = generate_module(1, i);
        let mut incr = module.clone();
        let incr_stats = roll_module(&mut incr, &opts);
        let mut full = module.clone();
        let full_stats = roll_module_full_rescan(&mut full, &opts);
        assert_eq!(
            print_module(&incr),
            print_module(&full),
            "module (1,{i}): engines diverge under validation"
        );
        assert_eq!(
            incr_stats, full_stats,
            "module (1,{i}): engine stats diverge under validation"
        );
    }
}

#[test]
fn tsvc_kernels_have_zero_static_false_rejects() {
    let mut rolled = 0u64;
    for spec in all_kernels() {
        let module = build_kernel_module(&spec);
        let (_, r) = assert_no_false_rejects(&module, &format!("tsvc.{}", spec.name));
        rolled += r;
    }
    assert!(rolled >= 1, "no TSVC kernel rolled at all");
}

#[test]
fn angha_slice_has_zero_static_false_rejects() {
    let corpus = generate(&AnghaConfig {
        functions: 128,
        ..AnghaConfig::default()
    });
    let mut rolled = 0u64;
    for (name, _, module) in &corpus.entries {
        let (_, r) = assert_no_false_rejects(module, &format!("angha @{name}"));
        rolled += r;
    }
    assert!(rolled >= 8, "angha slice too tame: {rolled} rolls");
}

/// Dynamically cross-checks one TV-rejected beam candidate: the
/// validator is one-sided, so a reject may be a conservative *false*
/// reject — but the speculative module the engine built must still be
/// behaviourally equivalent to its baseline, or the codegen (not the
/// validator) has a bug. `Err` describes the first divergence.
fn cross_check_reject(reject: &RejectedSpeculation) -> Result<(), String> {
    let before = parse_module(&reject.before).map_err(|e| format!("before: {e}"))?;
    let after = parse_module(&reject.after).map_err(|e| format!("after: {e}"))?;
    for k in 0..4 {
        let Some(args) = args_for(&before, &reject.func, k) else {
            continue;
        };
        compare_behaviour(&before, &after, &reject.func, &args)
            .map_err(|e| format!("@{}({args:?}): {e}", reject.func))?;
    }
    Ok(())
}

/// Runs the audited beam search over `module` and dynamically
/// cross-checks every TV-rejected candidate the beam explored. Returns
/// the number of rejects checked.
fn audit_and_cross_check(module: &Module, what: &str) -> u64 {
    let opts = RolagOptions::searched(4);
    let mut m = module.clone();
    let effects = effects_table(&m);
    let mut audit = SearchAudit::default();
    for id in m.func_ids().collect::<Vec<_>>() {
        search_function_audited(&mut m, id, &opts, &effects, &mut audit);
    }
    for reject in &audit.rejects {
        if let Err(e) = cross_check_reject(reject) {
            panic!(
                "{what}: TV-rejected candidate for @{} is a genuine miscompile: {e}",
                reject.func
            );
        }
    }
    audit.rejects.len() as u64
}

/// Every TV reject the beam search encounters while exploring candidate
/// variants must be a *static* false reject, never a dynamic miscompile:
/// the speculative module is interpreted against its baseline before the
/// rejection is allowed to stand. (Today the validator proves every
/// candidate our corpora produce, so the sweep doubles as a pin on that:
/// the companion test below proves the cross-check itself can catch a
/// planted miscompile, so a future reject cannot slip through unchecked.)
#[test]
fn beam_explored_tv_rejects_are_dynamically_clean() {
    for i in 0..128 {
        let module = generate_module(0, i);
        audit_and_cross_check(&module, &format!("module (0,{i})"));
    }
    for spec in all_kernels() {
        let module = build_kernel_module(&spec);
        audit_and_cross_check(&module, &format!("tsvc.{}", spec.name));
    }
}

/// The cross-check harness must itself be able to catch a miscompile —
/// otherwise `beam_explored_tv_rejects_are_dynamically_clean` would pass
/// vacuously even if the audit captured garbage.
#[test]
fn reject_cross_check_catches_a_planted_miscompile() {
    let before = "module \"t\"\nglobal @g : [2 x i32] = zero\nfunc @f() -> void {\nentry:\n  %p = gep i32, @g, i64 0\n  store i32 1, %p\n  ret\n}\n";
    let after = "module \"t\"\nglobal @g : [2 x i32] = zero\nfunc @f() -> void {\nentry:\n  %p = gep i32, @g, i64 1\n  store i32 1, %p\n  ret\n}\n";
    let planted = RejectedSpeculation {
        func: "f".into(),
        before: before.into(),
        after: after.into(),
        dot: String::new(),
    };
    let err = cross_check_reject(&planted).expect_err("must catch the retargeted store");
    assert!(err.contains("@g"), "unexpected detail: {err}");

    let clean = RejectedSpeculation {
        func: "f".into(),
        before: before.into(),
        after: before.into(),
        dot: String::new(),
    };
    cross_check_reject(&clean).expect("identical modules must pass");
}

/// The binary codec rebuilds a module's arenas from scratch
/// (`from_raw_parts`: re-derived instruction results, fresh constant map,
/// fresh revision), so a decoded module is the arena-backend's
/// worst-case input: any engine behaviour that secretly depended on
/// arena construction history — rather than on the IR the arenas
/// describe — diverges here. Rolling a decoded module under validation
/// must match rolling the parsed original bit for bit, stats included.
#[test]
fn decoded_modules_roll_identically_to_their_originals() {
    let opts = RolagOptions::validated();
    let mut corpus: Vec<(String, Module)> = (0..64)
        .map(|i| (format!("module (2,{i})"), generate_module(2, i)))
        .collect();
    for spec in all_kernels() {
        corpus.push((format!("tsvc.{}", spec.name), build_kernel_module(&spec)));
    }
    let mut rolled = 0u64;
    for (what, module) in &corpus {
        let decoded = rolag_ir::decode_module(&rolag_ir::encode_module(module))
            .unwrap_or_else(|e| panic!("{what}: decode failed: {e}"));
        let mut original = module.clone();
        let original_stats = roll_module(&mut original, &opts);
        let mut from_binary = decoded;
        let binary_stats = roll_module(&mut from_binary, &opts);
        assert_eq!(
            print_module(&from_binary),
            print_module(&original),
            "{what}: rolling the decoded module diverged"
        );
        assert_eq!(
            binary_stats, original_stats,
            "{what}: stats diverged on the decoded module"
        );
        rolled += original_stats.rolled;
    }
    assert!(rolled >= 8, "corpus too tame: {rolled} rolls");
}
