//! Guards the sample `.rir` files shipped in `examples/ir/`: they must
//! parse, verify, interpret, and actually demonstrate a roll.

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::check_equivalence;
use rolag_ir::parser::parse_module;
use rolag_ir::verify::verify_module;

fn load(name: &str) -> rolag_ir::Module {
    let path = format!("{}/examples/ir/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let m = parse_module(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    verify_module(&m).unwrap_or_else(|e| panic!("{path}: {e:?}"));
    m
}

#[test]
fn aegis128_sample_rolls() {
    let m = load("aegis128.rir");
    let mut rolled = m.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 1);
    check_equivalence(&m, &rolled, "save_state", &[]).expect("equivalent");
}

#[test]
fn memcpy_sample_rolls_dramatically() {
    let m = load("memcpy72.rir");
    let mut rolled = m.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 1);
    assert!(stats.reduction_percent() > 70.0);
    check_equivalence(&m, &rolled, "copy", &[]).expect("equivalent");
}

#[test]
fn axpy_sample_survives_the_full_pipeline() {
    let m = load("axpy.rir");
    let mut v = m.clone();
    rolag_transforms::unroll_module(&mut v, 4);
    rolag_transforms::cse_module(&mut v);
    rolag_transforms::cleanup_module(&mut v);
    let stats = roll_module(&mut v, &RolagOptions::default());
    assert_eq!(stats.rolled, 1, "the unrolled axpy re-rolls");
    rolag_transforms::cleanup_module(&mut v);
    verify_module(&v).expect("verifies");
    check_equivalence(&m, &v, "axpy", &[rolag_ir::interp::IValue::Float(2.5)]).expect("equivalent");
}
