//! Focused regression tests for the shrunken reproducers in
//! `tests/repros/` — one per file, each asserting the *exact* trap
//! discriminant or mismatch the repro was minimized to exhibit. The
//! differential oracle also sweeps these files end to end (in CI via
//! `rolag-verify`); these tests pin the specific behaviour so a
//! regression names the broken invariant instead of a generic
//! divergence.

use rolag::{roll_module, roll_module_full_rescan, RolagOptions};
use rolag_ir::interp::{ExecError, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use std::path::Path;

fn load(name: &str) -> Module {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/repros")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_module(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run(module: &Module, entry: &str, args: &[IValue]) -> Result<IValue, ExecError> {
    Interpreter::new(module)
        .run(entry, args)
        .map(|outcome| outcome.ret)
}

#[test]
fn unused_trapping_div_still_traps_after_cleanup() {
    // The unused `sdiv %p0, 0` always traps; DCE deleting it would turn
    // the trap into a clean `ret 0`.
    let module = load("dce-unused-trapping-div.rir");
    let err = run(&module, "f", &[IValue::Int(37)]).unwrap_err();
    assert!(matches!(err, ExecError::DivByZero), "got {err:?}");

    let mut cleaned = module.clone();
    let id = cleaned.func_ids().next().unwrap();
    let (func, types) = cleaned.func_and_types_mut(id);
    rolag_transforms::cleanup_in_place(func, types, &[]);
    let err = run(&cleaned, "f", &[IValue::Int(37)]).unwrap_err();
    assert!(
        matches!(err, ExecError::DivByZero),
        "cleanup deleted a trapping division: got {err:?}"
    );
}

#[test]
fn mismatch_lanes_attempt_agrees_across_engines_and_validates() {
    // The off-pattern lane (99 at index 3) forces the constant-mismatch
    // path: the speculative rewrite builds a `rolag.cdata` lookup table,
    // which the cost model then rejects as unprofitable on this
    // six-store module. The repro pins that both engines walk that path
    // to the same verdict — and, with validation on, that the
    // translation validator proves the speculative table rewrite before
    // the cost model discards it.
    let module = load("rolag-mismatch-lanes.rir");
    let opts = RolagOptions::validated();

    let mut incremental = module.clone();
    let stats = roll_module(&mut incremental, &opts);
    assert_eq!(stats.attempted, 1, "{stats}");
    assert_eq!(stats.rejected_profit, 1, "{stats}");
    assert_eq!(stats.rolled, 0, "{stats}");
    assert_eq!(
        stats.tv_validated, 1,
        "validator proves the attempt: {stats}"
    );
    assert_eq!(stats.tv_rejected, 0, "{stats}");
    assert_eq!(
        print_module(&incremental),
        print_module(&module),
        "a rejected attempt must leave the module untouched"
    );

    let mut full = module.clone();
    let full_stats = roll_module_full_rescan(&mut full, &opts);
    assert_eq!(
        print_module(&full),
        print_module(&module),
        "full rescan must reach the same (unchanged) module"
    );
    assert_eq!(stats, full_stats, "engine statistics must agree");
}

#[test]
fn nonfinite_floats_roundtrip_bit_exactly() {
    // +inf, -inf, and a NaN with payload bits must survive
    // print -> parse -> print without loss, as 0x literals.
    let module = load("roundtrip-nonfinite-floats.rir");
    let printed = print_module(&module);
    for bits in [
        "0x7ff0000000000000",
        "0xfff0000000000000",
        "0x7ff8000000000dea",
    ] {
        assert!(printed.contains(bits), "missing {bits} in:\n{printed}");
    }
    let reparsed = parse_module(&printed).expect("printed module reparses");
    assert_eq!(
        printed,
        print_module(&reparsed),
        "print must be a fixed point"
    );
}

#[test]
fn division_edges_trap_with_typed_errors() {
    let module = load("trap-division-edges.rir");

    // A benign pair completes: 8/2 = 4, 8 % -1 = 0.
    let ret = run(&module, "div", &[IValue::Int(8), IValue::Int(2)]).unwrap();
    assert_eq!(ret, IValue::Int(4));

    // Division by zero is a typed trap, not a native crash.
    let err = run(&module, "div", &[IValue::Int(37), IValue::Int(0)]).unwrap_err();
    assert!(matches!(err, ExecError::DivByZero), "got {err:?}");

    // i32::MIN / -1 overflows at type width.
    let min = i64::from(i32::MIN);
    let err = run(&module, "div", &[IValue::Int(min), IValue::Int(-1)]).unwrap_err();
    assert!(matches!(err, ExecError::DivOverflow), "got {err:?}");

    // ... and so does the remainder edge `i32::MIN % -1`.
    let err = run(&module, "div", &[IValue::Int(min), IValue::Int(1)]).unwrap_err();
    assert!(matches!(err, ExecError::DivOverflow), "got {err:?}");
}

#[test]
fn misaligned_and_wild_accesses_trap_with_typed_errors() {
    let module = load("trap-misaligned-wild.rir");

    // A 4-byte load at offset 2 violates i32 alignment.
    let err = run(&module, "mis", &[]).unwrap_err();
    assert!(
        matches!(err, ExecError::Misaligned { align: 4, .. }),
        "got {err:?}"
    );

    // A store through address 0 hits the reserved null page.
    let err = run(&module, "wild", &[IValue::Int(0)]).unwrap_err();
    assert!(matches!(err, ExecError::NullAccess { .. }), "got {err:?}");

    // A store far past the end of memory is out of bounds, and must not
    // grow interpreter memory to reach it.
    let err = run(&module, "wild", &[IValue::Int(1 << 40)]).unwrap_err();
    assert!(
        matches!(err, ExecError::OutOfBounds { size: 8, .. }),
        "got {err:?}"
    );
}
