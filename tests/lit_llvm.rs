//! A lit-style golden-test suite over `tests/lit-llvm/*.ll`.
//!
//! Every file is an LLVM-subset module fed through the LLVM frontend.
//! `; CHECK...` lines are FileCheck-style directives matched against
//! the canonical native print of the imported module, and `; SKIP:
//! @name code` lines assert that a function was skipped with exactly
//! that reason code. Functions not named in a `; SKIP:` line must
//! import without a skip.
//!
//! Like `tests/lit.rs`, the check script is derived from the golden
//! line-for-line so failed directives render as caret diagnostics
//! pointing at the original `.ll` file.

use std::path::{Path, PathBuf};

use rolag_frontend::llvm::LlvmFrontend;
use rolag_frontend::Frontend;
use rolag_ir::filecheck::filecheck;
use rolag_ir::printer::print_module;

fn lit_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("lit-llvm")
}

fn discover() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(lit_dir())
        .expect("tests/lit-llvm exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ll"))
        .collect();
    files.sort();
    files
}

/// `; SKIP: @name code` expectations of a golden.
fn skip_expectations(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("; SKIP:") else {
            continue;
        };
        let mut parts = rest.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(code), None) if name.starts_with('@') => {
                out.push((name[1..].to_string(), code.to_string()));
            }
            _ => return Err(format!("malformed `; SKIP:` line: {line}")),
        }
    }
    Ok(out)
}

/// Derives the check script: `; CHECK...` lines keep their line number
/// and column (the `;` becomes a space), everything else goes blank.
fn check_script(text: &str) -> String {
    text.lines()
        .map(|l| {
            if l.trim_start().starts_with("; CHECK") {
                l.replacen(';', " ", 1)
            } else {
                String::new()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs one golden end to end. `Err` is the full diagnostic to report.
fn run_golden(origin: &str, text: &str) -> Result<(), String> {
    let expected = skip_expectations(text).map_err(|e| format!("{origin}: {e}"))?;
    let res = LlvmFrontend
        .parse(text.as_bytes(), origin)
        .map_err(|d| d.render(text))?;

    let mut actual: Vec<(String, String)> = res
        .skips
        .iter()
        .map(|s| (s.symbol.clone(), s.code.code().to_string()))
        .collect();
    actual.sort();
    let mut want = expected;
    want.sort();
    if actual != want {
        return Err(format!(
            "{origin}: skip mismatch\n  expected: {want:?}\n  actual:   {actual:?}"
        ));
    }

    let printed = print_module(&res.module);
    let script = check_script(text);
    filecheck(&printed, &script).map_err(|e| {
        format!(
            "{}\n--- canonical import ---\n{printed}",
            e.render(origin, &script)
        )
    })
}

#[test]
fn llvm_lit_goldens_pass() {
    let files = discover();
    assert!(!files.is_empty(), "no goldens in {}", lit_dir().display());
    let mut failures = Vec::new();
    for path in &files {
        let origin = format!(
            "tests/lit-llvm/{}",
            path.file_name().unwrap().to_string_lossy()
        );
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        if let Err(diag) = run_golden(&origin, &text) {
            failures.push(diag);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} LLVM lit golden(s) failed:\n\n{}",
        failures.len(),
        files.len(),
        failures.join("\n\n")
    );
}

#[test]
fn llvm_lit_suite_is_seeded() {
    let files = discover();
    assert!(
        files.len() >= 8,
        "the LLVM lit suite should hold at least 8 goldens, found {}",
        files.len()
    );
}

#[test]
fn unexpected_skips_fail_the_golden() {
    let text = "\
define void @spin(ptr %p) {
entry:
  %old = atomicrmw add ptr %p, i32 1 seq_cst
  ret void
}
";
    let err = run_golden("u.ll", text).unwrap_err();
    assert!(err.contains("skip mismatch"), "got: {err}");
    assert!(err.contains("atomics"), "got: {err}");
}

#[test]
fn module_fatal_inputs_render_caret_diagnostics() {
    let text = "define i32 @f(\n";
    let err = run_golden("m.ll", text).unwrap_err();
    assert!(err.contains("m.ll:"), "got: {err}");
    assert!(err.contains('^'), "caret diagnostic expected, got: {err}");
}
