//! Integration tests for the parallel memoizing module driver
//! (`rolag::roll_module_par`): on whole benchmark suites the driver must
//! produce byte-identical modules and identical statistics to the serial
//! pass for every worker count, with or without memoization — and cached
//! results must stay behaviourally equivalent under the interpreter.

use rolag::{roll_module, roll_module_par, DriverOptions, RolagOptions};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;
use rolag_prng::{check::run_cases, ChaCha8Rng, Rng, SeedableRng};
use rolag_suites::angha::{build_pattern, PatternKind};
use rolag_suites::tsvc::build_suite_module;

/// Rolls `module` serially and through the driver at several worker counts,
/// asserting byte-identical output and equal stats each time.
fn assert_parallel_matches_serial(module: &Module) {
    let opts = RolagOptions::default();
    let mut serial = module.clone();
    let serial_stats = roll_module(&mut serial, &opts);
    let serial_text = print_module(&serial);

    for jobs in [0usize, 2, 3] {
        for memoize in [false, true] {
            let mut par = module.clone();
            let report = roll_module_par(&mut par, &opts, &DriverOptions { jobs, memoize });
            verify_module(&par).expect("driver output verifies");
            assert_eq!(
                print_module(&par),
                serial_text,
                "module bytes diverged (jobs={jobs}, memoize={memoize})"
            );
            assert_eq!(
                report.stats, serial_stats,
                "stats diverged (jobs={jobs}, memoize={memoize})"
            );
        }
    }
}

/// Deterministic per-signature arguments, mirroring `rolag-opt`'s
/// `--interp` defaults: 37 for integers, 1.5 for floats, the first
/// global's address for pointers.
fn default_args(module: &Module, entry: &str) -> Vec<IValue> {
    let Some(id) = module.func_by_name(entry) else {
        return Vec::new();
    };
    module
        .func(id)
        .param_tys()
        .iter()
        .map(|&ty| {
            if module.types.is_ptr(ty) {
                let interp = Interpreter::new(module);
                match module.global_ids().next() {
                    Some(g) => IValue::Ptr(interp.global_addr(g)),
                    None => IValue::Ptr(64),
                }
            } else if module.types.is_float(ty) {
                IValue::Float(1.5)
            } else {
                IValue::Int(37)
            }
        })
        .collect()
}

/// The whole TSVC suite in one module: the driver is bit-for-bit the
/// serial pass at every parallelism level.
#[test]
fn driver_matches_serial_on_tsvc_suite() {
    assert_parallel_matches_serial(&build_suite_module());
}

/// A multi-function AnghaBench-like module mixing every pattern family.
#[test]
fn driver_matches_serial_on_angha_module() {
    let mut m = Module::new("angha.multi");
    let mut rng = ChaCha8Rng::seed_from_u64(0x0501);
    let kinds = PatternKind::all();
    for i in 0..36 {
        build_pattern(&mut m, &mut rng, kinds[i % kinds.len()], i);
    }
    verify_module(&m).expect("generated module verifies");
    assert_parallel_matches_serial(&m);
}

/// Randomized cache-equivalence property: duplicate every function of a
/// random module under a fresh name, roll with memoization on (so the
/// duplicates are served from the structural-hash cache), and check each
/// entry point is observationally unchanged under the interpreter.
#[test]
fn memoized_duplicates_preserve_behaviour() {
    run_cases(
        "memoized_duplicates_preserve_behaviour",
        24,
        0x0502,
        |rng, _| {
            let mut m = Module::new("cache.prop");
            let kinds = PatternKind::all();
            let n = rng.gen_range(2usize..6);
            let mut names = Vec::new();
            for i in 0..n {
                let kind = kinds[rng.gen_range(0usize..kinds.len())];
                names.push(build_pattern(&mut m, rng, kind, i));
            }
            // Duplicate each definition under a new name; ids snapshot first so
            // the loop does not walk its own additions.
            let ids: Vec<_> = m.func_ids().collect();
            let mut dups = 0;
            for id in ids {
                if m.func(id).is_declaration {
                    continue;
                }
                let mut dup = m.func(id).clone();
                dup.name = format!("{}.copy", dup.name);
                names.push(dup.name.clone());
                m.add_func(dup);
                dups += 1;
            }
            verify_module(&m).expect("duplicated module verifies");

            let original = m.clone();
            let report = roll_module_par(
                &mut m,
                &RolagOptions::default(),
                &DriverOptions {
                    jobs: 2,
                    memoize: true,
                },
            );
            verify_module(&m).expect("rolled module verifies");
            assert!(
                report.cache_hits >= dups as u64,
                "expected at least {dups} cache hits, got {}",
                report.cache_hits
            );

            for name in &names {
                let args = default_args(&original, name);
                check_equivalence(&original, &m, name, &args)
                    .unwrap_or_else(|e| panic!("@{name} changed behaviour: {e}"));
            }
        },
    );
}
