//! # rolag-suite
//!
//! Workspace umbrella crate for the RoLAG reproduction ("Loop Rolling for
//! Code Size Reduction", CGO 2022). It re-exports every member crate and
//! hosts the workspace-level examples (`examples/`) and integration tests
//! (`tests/`).
//!
//! Crate map:
//!
//! * [`rolag_ir`] — SSA IR, builder, printer/parser, verifier, interpreter;
//! * [`rolag_analysis`] — dominators, loops, alias/dependence, cost model;
//! * [`rolag_lower`] — x86-64 lowering simulator and object-size measure;
//! * [`rolag`](rolag_pass) — the paper's contribution: the loop-rolling pass;
//! * [`rolag_reroll`] — the LLVM-style rerolling baseline;
//! * [`rolag_transforms`] — unrolling, CSE, cleanup pipeline;
//! * [`rolag_suites`] — TSVC, AnghaBench-like, and Table-I workloads.

pub use rolag as rolag_pass;
pub use rolag_analysis;
pub use rolag_ir;
pub use rolag_lower;
pub use rolag_reroll;
pub use rolag_suites;
pub use rolag_transforms;
