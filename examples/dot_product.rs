//! The reduction-tree example (Fig. 11): a straight-line dot product whose
//! whole `+` tree collapses into a single accumulator loop.
//!
//! Run with: `cargo run --example dot_product`

use rolag::{roll_module, RolagOptions};
use rolag_ir::builder::FuncBuilder;
use rolag_ir::interp::{IValue, Interpreter};
use rolag_ir::printer::print_module;
use rolag_ir::{GlobalData, GlobalInit, Module};
use rolag_lower::measure_module;

const N: i64 = 6;

fn main() {
    let mut module = Module::new("dot");
    let i32t = module.types.i32();
    let arr = module.types.array(i32t, N as u64);
    let a = module.add_global(GlobalData {
        name: "a".into(),
        ty: arr,
        init: GlobalInit::Ints {
            elem_ty: i32t,
            values: (1..=N).collect(),
        },
        is_const: false,
    });
    let b_arr = module.add_global(GlobalData {
        name: "b".into(),
        ty: arr,
        init: GlobalInit::Ints {
            elem_ty: i32t,
            values: (1..=N).map(|i| 2 * i - 1).collect(),
        },
        is_const: false,
    });

    // return a[0]*b[0] + a[1]*b[1] + ... (straight-line, no loop).
    let mut fb = FuncBuilder::new(&mut module, "dot_product", vec![], i32t);
    fb.block("entry");
    fb.ins(|bu| {
        let ga = bu.global(a);
        let gb = bu.global(b_arr);
        let mut terms = Vec::new();
        for i in 0..N {
            let idx = bu.i64_const(i);
            let pa = bu.gep(bu.types.i32(), ga, &[idx]);
            let va = bu.load(bu.types.i32(), pa);
            let pb = bu.gep(bu.types.i32(), gb, &[idx]);
            let vb = bu.load(bu.types.i32(), pb);
            terms.push(bu.mul(va, vb));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = bu.add(acc, t);
        }
        bu.ret(Some(acc));
    });
    fb.finish();

    let before = measure_module(&module).code_footprint();
    let mut rolled = module.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    let after = measure_module(&rolled).code_footprint();

    println!("=== rolled dot product ===\n{}", print_module(&rolled));
    println!("{stats}");
    println!("measured size: {before} -> {after} bytes");

    let expected: i64 = (1..=N).map(|i| i * (2 * i - 1)).sum();
    let mut interp = Interpreter::new(&rolled);
    let out = interp.run("dot_product", &[]).expect("runs");
    println!("dot_product() = {:?} (expected {expected})", out.ret);
    assert_eq!(out.ret, IValue::Int(expected));
}
