//! The paper's two motivating examples from the Linux kernel (§III):
//!
//! * `aegis128_save_state_neon` (Fig. 3) — five calls with a regular
//!   pointer pattern; rolling saves ~20% in the paper;
//! * `hdmi_wp_audio_config_format` (Fig. 4) — six chained calls reading
//!   struct fields in reverse; rolling saves ~13.6%.
//!
//! Both are rolled here by RoLAG; neither is touched by the LLVM-style
//! rerolling baseline (they are straight-line code, not unrolled loops).
//!
//! Run with: `cargo run --example linux_patterns`

use rolag::{roll_module, RolagOptions};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;

const AEGIS: &str = r#"
module "aegis128"
declare @vst1q_u8(ptr %p0, i64 %p1) -> void readwrite
global @stv : [5 x i64] = ints i64 [11, 22, 33, 44, 55]
global @state : [10 x i64] = zero
func @aegis128_save_state_neon() -> void {
entry:
  %v0 = load i64, @stv
  call void @vst1q_u8(@state, %v0)
  %s1 = gep i8, @state, i64 16
  %g1 = gep i64, @stv, i64 1
  %v1 = load i64, %g1
  call void @vst1q_u8(%s1, %v1)
  %s2 = gep i8, @state, i64 32
  %g2 = gep i64, @stv, i64 2
  %v2 = load i64, %g2
  call void @vst1q_u8(%s2, %v2)
  %s3 = gep i8, @state, i64 48
  %g3 = gep i64, @stv, i64 3
  %v3 = load i64, %g3
  call void @vst1q_u8(%s3, %v3)
  %s4 = gep i8, @state, i64 64
  %g4 = gep i64, @stv, i64 4
  %v4 = load i64, %g4
  call void @vst1q_u8(%s4, %v4)
  ret
}
"#;

const HDMI: &str = r#"
module "hdmi_wp"
declare @fld_mod(i32 %p0, i32 %p1, i32 %p2, i32 %p3) -> i32 readnone
declare @hdmi_read_reg(ptr %p0) -> i32 readonly
declare @hdmi_write_reg(ptr %p0, i32 %p1) -> void readwrite
global @fmt : [6 x i32] = ints i32 [7, 6, 5, 4, 3, 2]
func @hdmi_wp_audio_config_format(ptr %p0) -> void {
entry:
  %r0 = call i32 @hdmi_read_reg(%p0)
  %f5 = gep i32, @fmt, i32 5
  %v5 = load i32, %f5
  %r1 = call i32 @fld_mod(%r0, %v5, i32 5, i32 5)
  %f4 = gep i32, @fmt, i32 4
  %v4 = load i32, %f4
  %r2 = call i32 @fld_mod(%r1, %v4, i32 4, i32 4)
  %f3 = gep i32, @fmt, i32 3
  %v3 = load i32, %f3
  %r3 = call i32 @fld_mod(%r2, %v3, i32 3, i32 3)
  %f2 = gep i32, @fmt, i32 2
  %v2 = load i32, %f2
  %r4 = call i32 @fld_mod(%r3, %v2, i32 2, i32 2)
  %f1 = gep i32, @fmt, i32 1
  %v1 = load i32, %f1
  %r5 = call i32 @fld_mod(%r4, %v1, i32 1, i32 1)
  %f0 = gep i32, @fmt, i32 0
  %v0 = load i32, %f0
  %r6 = call i32 @fld_mod(%r5, %v0, i32 0, i32 0)
  call void @hdmi_write_reg(%p0, %r6)
  ret
}
"#;

fn demo(title: &str, text: &str) {
    println!("================= {title} =================");
    let module = parse_module(text).expect("parse");
    let before = measure_module(&module).code_footprint();

    // The baseline never fires on straight-line code.
    let mut llvm = module.clone();
    let llvm_stats = reroll_module(&mut llvm);

    let mut rolled = module.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    let after = measure_module(&rolled).code_footprint();

    println!("{}", print_module(&rolled));
    println!(
        "LLVM-style rerolling: {} loops (it needs an unrolled loop)",
        llvm_stats.rerolled
    );
    println!("RoLAG: {stats}");
    println!(
        "measured size {before} -> {after} bytes ({:.1}% reduction; paper: ~20% / ~13.6%)\n",
        100.0 * (before as f64 - after as f64) / before as f64
    );
}

fn main() {
    demo("Fig. 3: aegis128_save_state_neon", AEGIS);
    demo("Fig. 4: hdmi_wp_audio_config_format", HDMI);
}
