//! Head-to-head on a TSVC kernel: unroll `vpv` (a[i] += b[i]) by 8, then
//! let the LLVM-style rerolling baseline and RoLAG each try to undo it.
//! This is one lane of the Fig. 17 experiment, end to end.
//!
//! Run with: `cargo run --example reroll_comparison`

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::check_equivalence;
use rolag_ir::printer::print_function;
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn main() {
    let spec = all_kernels()
        .into_iter()
        .find(|k| k.name == "vpv")
        .expect("vpv is in the suite");
    let rolled = build_kernel_module(&spec);
    let oracle = measure_module(&rolled).code_footprint();

    let mut base = rolled.clone();
    unroll_module(&mut base, 8);
    cse_module(&mut base);
    cleanup_module(&mut base);
    let base_size = measure_module(&base).code_footprint();
    println!("=== vpv, force-unrolled x8 (the evaluated input) ===");
    let f = base.func(base.func_by_name("vpv").unwrap());
    println!("{}", print_function(&base, f));

    let mut llvm = base.clone();
    let llvm_stats = reroll_module(&mut llvm);
    cleanup_module(&mut llvm);
    let llvm_size = measure_module(&llvm).code_footprint();

    let mut rolag_m = base.clone();
    let stats = roll_module(&mut rolag_m, &RolagOptions::default());
    cleanup_module(&mut rolag_m);
    let rolag_size = measure_module(&rolag_m).code_footprint();

    println!("=== after RoLAG ===");
    let f = rolag_m.func(rolag_m.func_by_name("vpv").unwrap());
    println!("{}", print_function(&rolag_m, f));

    check_equivalence(&base, &llvm, "vpv", &[]).expect("baseline preserves behaviour");
    check_equivalence(&base, &rolag_m, "vpv", &[]).expect("RoLAG preserves behaviour");

    let pct = |after: u64| 100.0 * (base_size as f64 - after as f64) / base_size as f64;
    println!("unrolled input : {base_size} bytes");
    println!(
        "LLVM rerolling : {llvm_size} bytes ({:+.1}%, rerolled {} loops)",
        pct(llvm_size),
        llvm_stats.rerolled
    );
    println!(
        "RoLAG          : {rolag_size} bytes ({:+.1}%, rolled {} loops)",
        pct(rolag_size),
        stats.rolled
    );
    println!(
        "oracle (never unrolled): {oracle} bytes ({:+.1}%)",
        pct(oracle)
    );
}
