//! Quickstart: build a function with repetitive straight-line code, run
//! RoLAG, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use rolag::{roll_module, RolagOptions};
use rolag_ir::builder::FuncBuilder;
use rolag_ir::interp::{IValue, Interpreter};
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use rolag_lower::measure_module;

fn main() {
    // 1. Build a module with a function that initializes an 8-element
    //    array with the sequence 0, 7, 14, ... — classic rollable code.
    let mut module = Module::new("quickstart");
    let i32t = module.types.i32();
    let arr_ty = module.types.array(i32t, 8);
    let table = module.add_zero_global("table", arr_ty);
    let void = module.types.void();

    let mut fb = FuncBuilder::new(&mut module, "init_table", vec![], void);
    fb.block("entry");
    fb.ins(|b| {
        let base = b.global(table);
        for i in 0..8 {
            let idx = b.i64_const(i);
            let slot = b.gep(b.types.i32(), base, &[idx]);
            let value = b.iconst(b.types.i32(), i * 7);
            b.store(value, slot);
        }
        b.ret(None);
    });
    fb.finish();

    println!("=== before rolling ===\n{}", print_module(&module));
    let before = measure_module(&module);

    // 2. Run the pass.
    let mut rolled = module.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());

    println!("=== after rolling ===\n{}", print_module(&rolled));
    let after = measure_module(&rolled);

    println!("pass statistics: {stats}");
    println!(
        "measured size: {} -> {} bytes (text+rodata)",
        before.code_footprint(),
        after.code_footprint()
    );

    // 3. Confirm the rolled code computes the same table.
    let mut interp = Interpreter::new(&rolled);
    interp.run("init_table", &[]).expect("runs");
    let g = rolled.global_by_name("table").unwrap();
    let addr = interp.global_addr(g);
    print!("table after rolled init: ");
    for i in 0..8 {
        let v = interp
            .mem
            .load(&rolled.types, rolled.types.i32(), addr + 4 * i)
            .unwrap();
        if let IValue::Int(x) = v {
            print!("{x} ");
        }
    }
    println!();
}
