//! # rolag-suites
//!
//! Benchmark workloads for the RoLAG reproduction:
//!
//! * [`tsvc`] — the TSVC kernels (rolled oracle forms; the harness unrolls
//!   them ×8 per §V-C);
//! * [`angha`] — an AnghaBench-like generator of real-world-pattern
//!   functions (§V-A);
//! * [`programs`] — MiBench/SPEC-2017-like synthetic whole programs
//!   (Table I).

#![warn(missing_docs)]

pub mod angha;
pub mod programs;
pub mod tsvc;
