//! TSVC kernels: `s000` and the `s1xx`/`s1xxx` families (linear dependence
//! testing, induction variables, global data flow).

use rolag_ir::Module;

use super::helpers::{kernel_loop, kernel_loop_cond, kernel_reduce, ld, ldd, ofs, std_, LEN};
use super::KernelSpec;

fn fc(b: &mut rolag_ir::Builder<'_>, v: f64) -> rolag_ir::ValueId {
    let d = b.types.double();
    b.fconst(d, v)
}

/// Registers the family.
pub fn register(v: &mut Vec<KernelSpec>) {
    let mut k = |name: &'static str, multi_block: bool, build: fn(&mut Module)| {
        v.push(KernelSpec {
            name,
            multi_block,
            build,
        });
    };

    // s000: a[i] = b[i] + 1
    k("s000", false, |m| {
        kernel_loop(m, "s000", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let one = fc(b, 1.0);
            let y = b.fadd(x, one);
            std_(b, ar.a, iv, y);
        });
    });
    // s111: a[2i+1] = a[2i] + b[2i+1] (odd/even linear dependence)
    k("s111", false, |m| {
        kernel_loop(m, "s111", LEN / 2, |b, ar, iv| {
            let two = b.i64_const(2);
            let even = b.mul(iv, two);
            let odd = ofs(b, even, 1);
            let x = ldd(b, ar.a, even);
            let y = ldd(b, ar.b, odd);
            let s = b.fadd(x, y);
            std_(b, ar.a, odd, s);
        });
    });
    // s1111: a[2i] = c[i]*b[i] + d[i]*b[i] (no dependence, doubled stride)
    k("s1111", false, |m| {
        kernel_loop(m, "s1111", LEN / 2, |b, ar, iv| {
            let two = b.i64_const(2);
            let di = b.mul(iv, two);
            let bb = ldd(b, ar.b, iv);
            let cc = ldd(b, ar.c, iv);
            let dd = ldd(b, ar.d, iv);
            let t1 = b.fmul(cc, bb);
            let t2 = b.fmul(dd, bb);
            let s = b.fadd(t1, t2);
            std_(b, ar.a, di, s);
        });
    });
    // s1112: reverse order a[LEN-1-i] = b[LEN-1-i] + 1
    k("s1112", false, |m| {
        kernel_loop(m, "s1112", LEN, |b, ar, iv| {
            let last = b.i64_const(LEN - 1);
            let ri = b.sub(last, iv);
            let x = ldd(b, ar.b, ri);
            let one = fc(b, 1.0);
            let y = b.fadd(x, one);
            std_(b, ar.a, ri, y);
        });
    });
    // s1113: a[i] = a[LEN/2] + b[i] (possible dependence on a fixed cell)
    k("s1113", false, |m| {
        kernel_loop(m, "s1113", LEN / 2, |b, ar, iv| {
            let mid = b.i64_const(LEN / 2);
            let x = ldd(b, ar.a, mid);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s1115: triangular-ish update a[i] = a[i]*c[i] + b[i]
    k("s1115", false, |m| {
        kernel_loop(m, "s1115", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.b, iv);
            let t = b.fmul(x, y);
            let s = b.fadd(t, z);
            std_(b, ar.a, iv, s);
        });
    });
    // s1119: 2D sum over rows (flattened): a[i] = a[i-8] + b[i]
    k("s1119", false, |m| {
        kernel_loop(m, "s1119", LEN - 8, |b, ar, iv| {
            let i8v = ofs(b, iv, 8);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, i8v);
            let s = b.fadd(x, y);
            std_(b, ar.a, i8v, s);
        });
    });
    // s112: backward a[i+1] = a[i] + b[i]
    k("s112", false, |m| {
        kernel_loop(m, "s112", LEN - 8, |b, ar, iv| {
            let last = b.i64_const(LEN - 2);
            let ri = b.sub(last, iv);
            let ri1 = ofs(b, ri, 1);
            let x = ldd(b, ar.a, ri);
            let y = ldd(b, ar.b, ri);
            let s = b.fadd(x, y);
            std_(b, ar.a, ri1, s);
        });
    });
    // s113: a[i] = a[0] + b[i]
    k("s113", false, |m| {
        kernel_loop(m, "s113", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let zero = b.i64_const(0);
            let x = ldd(b, ar.a, zero);
            let y = ldd(b, ar.b, i1);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
        });
    });
    // s114: transposed triangular copy (flattened): a[i] = a[i^1] + b[i]
    k("s114", false, |m| {
        kernel_loop(m, "s114", LEN, |b, ar, iv| {
            let one = b.i64_const(1);
            let xi = b.xor(iv, one);
            let x = ldd(b, ar.a, xi);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.c, iv, s);
        });
    });
    // s115: triangular saxpy a[i] = a[i] - b[i]*c[i]
    k("s115", false, |m| {
        kernel_loop(m, "s115", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let t = b.fmul(y, z);
            let s = b.fsub(x, t);
            std_(b, ar.a, iv, s);
        });
    });
    // s116: a[i] = a[i+1]*a[i]
    k("s116", false, |m| {
        kernel_loop(m, "s116", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.a, iv);
            let p = b.fmul(x, y);
            std_(b, ar.a, iv, p);
        });
    });
    // s118: a[i] = a[i-1] + bb (flattened inner product with prior row)
    k("s118", false, |m| {
        kernel_loop(m, "s118", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, i1);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
        });
    });
    // s119: 2D stencil (flattened): a[i] = a[i-9] + b[i]
    k("s119", false, |m| {
        kernel_loop(m, "s119", LEN - 16, |b, ar, iv| {
            let i9 = ofs(b, iv, 9);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, i9);
            let s = b.fadd(x, y);
            std_(b, ar.a, i9, s);
        });
    });
    // s121: a[i] = a[i+1] + b[i]
    k("s121", false, |m| {
        kernel_loop(m, "s121", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s122: induction variable under the loop control: a[i] += b[LEN-j]
    k("s122", false, |m| {
        kernel_loop(m, "s122", LEN, |b, ar, iv| {
            let last = b.i64_const(LEN - 1);
            let rj = b.sub(last, iv);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, rj);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s1221: four-way unrollable run: a[i] = b[i] + a[i-4]
    k("s1221", false, |m| {
        kernel_loop(m, "s1221", LEN - 8, |b, ar, iv| {
            let i4 = ofs(b, iv, 4);
            let x = ldd(b, ar.b, i4);
            let y = ldd(b, ar.a, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, i4, s);
        });
    });
    // s123: conditional induction bumps (modelled with select)
    k("s123", false, |m| {
        kernel_loop(m, "s123", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let zero = fc(b, 0.0);
            let cnd = b.fcmp(rolag_ir::FloatPredicate::Ogt, y, zero);
            let s = b.fadd(x, y);
            let sel = b.select(cnd, s, x);
            std_(b, ar.a, iv, sel);
        });
    });
    // s1232: symmetric 2D update (flattened): a[i] = b[i]+c[i]; d[i]=a[i]*e-ish
    k("s1232", false, |m| {
        kernel_loop(m, "s1232", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
            let z = ldd(b, ar.e, iv);
            let t = b.fmul(s, z);
            std_(b, ar.d, iv, t);
        });
    });
    // s124: select-driven induction
    k("s124", false, |m| {
        kernel_loop(m, "s124", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.d, iv);
            let zero = fc(b, 0.0);
            let cnd = b.fcmp(rolag_ir::FloatPredicate::Ogt, x, zero);
            let p = b.fmul(x, y);
            let q = b.fadd(x, y);
            let sel = b.select(cnd, p, q);
            std_(b, ar.a, iv, sel);
        });
    });
    // s1244: a[i] = b[i]+c[i]+d[i]; d[i] = b[i]+e[i]
    k("s1244", false, |m| {
        kernel_loop(m, "s1244", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let s1 = b.fadd(x, y);
            let s2 = b.fadd(s1, z);
            std_(b, ar.a, iv, s2);
            let w = ldd(b, ar.e, iv);
            let s3 = b.fadd(x, w);
            std_(b, ar.d, iv, s3);
        });
    });
    // s125: collapsed 2D: a[i] = b[i]*c[i] + d[i]*e[i]
    k("s125", false, |m| {
        kernel_loop(m, "s125", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let w = ldd(b, ar.e, iv);
            let p = b.fmul(x, y);
            let q = b.fmul(z, w);
            let s = b.fadd(p, q);
            std_(b, ar.a, iv, s);
        });
    });
    // s1251: scalar expansion inside the body
    k("s1251", false, |m| {
        kernel_loop(m, "s1251", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            let z = ldd(b, ar.d, iv);
            let t = b.fmul(s, z);
            std_(b, ar.a, iv, t);
        });
    });
    // s126: flattened column-wise recurrence
    k("s126", false, |m| {
        kernel_loop(m, "s126", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.c, i1);
            let s = b.fadd(p, z);
            std_(b, ar.a, i1, s);
        });
    });
    // s127: doubled write stride
    k("s127", false, |m| {
        kernel_loop(m, "s127", LEN / 2, |b, ar, iv| {
            let two = b.i64_const(2);
            let di = b.mul(iv, two);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, di, s);
        });
    });
    // s128: strided read/write pair
    k("s128", false, |m| {
        kernel_loop(m, "s128", LEN / 2, |b, ar, iv| {
            let two = b.i64_const(2);
            let di = b.mul(iv, two);
            let di1 = ofs(b, di, 1);
            let x = ldd(b, ar.b, di);
            let y = ldd(b, ar.d, di1);
            let s = b.fadd(x, y);
            std_(b, ar.a, di, s);
            std_(b, ar.c, di1, x);
        });
    });
    // s1281: crossing thresholds with temporaries
    k("s1281", false, |m| {
        kernel_loop(m, "s1281", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let t = b.fmul(x, y);
            let u = b.fadd(t, z);
            std_(b, ar.a, iv, u);
            std_(b, ar.e, iv, t);
        });
    });
    // s131: a[i] = a[i+1] + b[i] (one-off forward)
    k("s131", false, |m| {
        kernel_loop(m, "s131", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s13110: reduction to scalar with global bound tracking
    k("s13110", false, |m| {
        kernel_reduce(m, "s13110", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // s132: 2D with constant row offset (flattened)
    k("s132", false, |m| {
        kernel_loop(m, "s132", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s1351: pointer-walk copy: *a++ = *b++ + *c++
    k("s1351", false, |m| {
        kernel_loop(m, "s1351", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s141: packed lower-triangle walk (flattened via ip)
    k("s141", false, |m| {
        kernel_loop(m, "s141", LEN, |b, ar, iv| {
            let i64t = b.types.i64();
            let j = ld(b, ar.ip, i64t, iv);
            let x = ldd(b, ar.b, j);
            let y = ldd(b, ar.a, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s1421: storage classes — half-array shifted add
    k("s1421", false, |m| {
        kernel_loop(m, "s1421", LEN / 2, |b, ar, iv| {
            let half = b.i64_const(LEN / 2);
            let hi = b.add(iv, half);
            let x = ldd(b, ar.b, hi);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s151: one-call-deep interprocedural (inlined form)
    k("s151", false, |m| {
        kernel_loop(m, "s151", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s152: dot-ish with write to both arrays
    k("s152", false, |m| {
        kernel_loop(m, "s152", LEN, |b, ar, iv| {
            let x = ldd(b, ar.d, iv);
            let y = ldd(b, ar.e, iv);
            let p = b.fmul(x, y);
            std_(b, ar.b, iv, p);
            let z = ldd(b, ar.c, iv);
            let s = b.fadd(p, z);
            std_(b, ar.a, iv, s);
        });
    });
    // s161: control flow — if (b[i] < 0) goto else-arm (multi-block).
    k("s161", true, |m| {
        kernel_loop_cond(
            m,
            "s161",
            LEN - 8,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(rolag_ir::FloatPredicate::Oge, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.d, iv);
                let p = b.fmul(x, y);
                let i1 = ofs(b, iv, 1);
                std_(b, ar.c, i1, p);
            },
        );
    });
    // s1161: same with two side effects (multi-block).
    k("s1161", true, |m| {
        kernel_loop_cond(
            m,
            "s1161",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let zero = fc(b, 0.0);
                b.fcmp(rolag_ir::FloatPredicate::Olt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let s = b.fadd(x, y);
                std_(b, ar.a, iv, s);
            },
        );
    });
    // s162: crossing thresholds with an offset guard (single block, the
    // guard folds to a select).
    k("s162", false, |m| {
        kernel_loop(m, "s162", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s171: symbolic stride (here 2)
    k("s171", false, |m| {
        kernel_loop(m, "s171", LEN / 2, |b, ar, iv| {
            let two = b.i64_const(2);
            let si = b.mul(iv, two);
            let x = ldd(b, ar.a, si);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, si, s);
        });
    });
    // s172: non-unit symbolic stride 3 over the first 48 elements
    k("s172", false, |m| {
        kernel_loop(m, "s172", LEN / 4, |b, ar, iv| {
            let three = b.i64_const(3);
            let si = b.mul(iv, three);
            let x = ldd(b, ar.a, si);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, si, s);
        });
    });
    // s173: offset by half the array
    k("s173", false, |m| {
        kernel_loop(m, "s173", LEN / 2, |b, ar, iv| {
            let half = b.i64_const(LEN / 2);
            let hi = b.add(iv, half);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, hi, s);
        });
    });
    // s174: same with explicit bound parameter folded
    k("s174", false, |m| {
        kernel_loop(m, "s174", LEN / 2, |b, ar, iv| {
            let half = b.i64_const(LEN / 2);
            let hi = b.add(iv, half);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.c, hi, s);
        });
    });
    // s175: non-unit stride with forward reference
    k("s175", false, |m| {
        kernel_loop(m, "s175", LEN / 2 - 4, |b, ar, iv| {
            let two = b.i64_const(2);
            let si = b.mul(iv, two);
            let si2 = ofs(b, si, 2);
            let x = ldd(b, ar.a, si2);
            let y = ldd(b, ar.b, si);
            let s = b.fadd(x, y);
            std_(b, ar.a, si, s);
        });
    });
    // s176: convolution-ish: a[i] += b[i+m]*c[m-ish]
    k("s176", false, |m| {
        kernel_loop(m, "s176", LEN / 2, |b, ar, iv| {
            let q = b.i64_const(LEN / 2 - 1);
            let mi = b.sub(q, iv);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, mi);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, iv);
            let s = b.fadd(z, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s1213: statement reordering with a cross pair
    k("s1213", false, |m| {
        kernel_loop(m, "s1213", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.d, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
            let z = ldd(b, ar.a, iv);
            let p = b.fmul(z, y);
            std_(b, ar.c, iv, p);
        });
    });
}
