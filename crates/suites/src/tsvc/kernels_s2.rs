//! TSVC kernels: the `s2xx` family (statement reordering, loop
//! distribution, loop interchange, node splitting, scalar/array expansion,
//! control flow).

use rolag_ir::{FloatPredicate, Module};

use super::helpers::{
    kernel_loop, kernel_loop2, kernel_loop_cond, kernel_reduce, ldd, ofs, std_, LEN,
};
use super::KernelSpec;

fn fc(b: &mut rolag_ir::Builder<'_>, v: f64) -> rolag_ir::ValueId {
    let d = b.types.double();
    b.fconst(d, v)
}

/// Registers the family.
pub fn register(v: &mut Vec<KernelSpec>) {
    let mut k = |name: &'static str, multi_block: bool, build: fn(&mut Module)| {
        v.push(KernelSpec {
            name,
            multi_block,
            build,
        });
    };

    // s211: statement reordering: a[i] = b[i-1]+c[i]; b[i] = b[i+1]-e[i]
    k("s211", false, |m| {
        kernel_loop(m, "s211", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let i2 = ofs(b, iv, 2);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, i1);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
            let z = ldd(b, ar.b, i2);
            let w = ldd(b, ar.e, i1);
            let t = b.fsub(z, w);
            std_(b, ar.b, i1, t);
        });
    });
    // s212: dependency needing temporary
    k("s212", false, |m| {
        kernel_loop(m, "s212", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            std_(b, ar.a, iv, p);
            let z = ldd(b, ar.a, i1);
            let s = b.fadd(z, p);
            std_(b, ar.b, iv, s);
        });
    });
    // s221: loop distribution: a[i] += c[i]*d[i]; b[i] = b[i-1]+a[i]
    k("s221", false, |m| {
        kernel_loop(m, "s221", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.c, i1);
            let y = ldd(b, ar.d, i1);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, i1);
            let s = b.fadd(z, p);
            std_(b, ar.a, i1, s);
            let w = ldd(b, ar.b, iv);
            let t = b.fadd(w, s);
            std_(b, ar.b, i1, t);
        });
    });
    // s222: partial distribution with a recurrence in the middle
    k("s222", false, |m| {
        kernel_loop(m, "s222", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, i1);
            let y = ldd(b, ar.c, i1);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, i1);
            let s = b.fadd(z, p);
            std_(b, ar.a, i1, s);
            let e1 = ldd(b, ar.e, iv);
            let e2 = b.fmul(e1, e1);
            std_(b, ar.e, i1, e2);
            let t = b.fsub(s, p);
            std_(b, ar.a, i1, t);
        });
    });
    // s231: loop interchange over an 8x8 tile (true 2-level nest): the
    // inner loop walks a column, aa[j][i] = aa[j-1][i] + bb[j][i].
    k("s231", false, |m| {
        kernel_loop2(m, "s231", 7, 8, |b, ar, i, j| {
            let eight = b.i64_const(8);
            let row = b.mul(i, eight);
            let idx = b.add(row, j);
            let nxt = ofs(b, idx, 8);
            let x = ldd(b, ar.a, idx);
            let y = ldd(b, ar.b, nxt);
            let s = b.fadd(x, y);
            std_(b, ar.a, nxt, s);
        });
    });
    // s232: interchanged nest with a multiply recurrence along rows.
    k("s232", false, |m| {
        kernel_loop2(m, "s232", 8, 7, |b, ar, i, j| {
            let eight = b.i64_const(8);
            let row = b.mul(i, eight);
            let idx = b.add(row, j);
            let i1 = ofs(b, idx, 1);
            let x = ldd(b, ar.a, idx);
            let y = ldd(b, ar.b, i1);
            let p = b.fmul(x, y);
            std_(b, ar.a, i1, p);
        });
    });
    // s233: nest with both row-wise and column-wise updates per cell.
    k("s233", false, |m| {
        kernel_loop2(m, "s233", 7, 7, |b, ar, i, j| {
            let eight = b.i64_const(8);
            let row = b.mul(i, eight);
            let idx = b.add(row, j);
            let down = ofs(b, idx, 8);
            let right = ofs(b, idx, 1);
            let x = ldd(b, ar.a, idx);
            let y = ldd(b, ar.b, down);
            let s = b.fadd(x, y);
            std_(b, ar.a, down, s);
            let z = ldd(b, ar.c, right);
            let w = ldd(b, ar.b, right);
            let t = b.fadd(z, w);
            std_(b, ar.c, right, t);
        });
    });
    // s2233: nest with two independent walks of the tile per cell.
    k("s2233", false, |m| {
        kernel_loop2(m, "s2233", 7, 8, |b, ar, i, j| {
            let eight = b.i64_const(8);
            let row = b.mul(i, eight);
            let idx = b.add(row, j);
            let down = ofs(b, idx, 8);
            let x = ldd(b, ar.a, idx);
            let y = ldd(b, ar.b, down);
            let s = b.fadd(x, y);
            std_(b, ar.a, down, s);
            let z = ldd(b, ar.c, down);
            let w = ldd(b, ar.b, idx);
            let t = b.fadd(z, w);
            std_(b, ar.c, down, t);
        });
    });
    // s235: nested walk with a per-cell combine and strided write.
    k("s235", false, |m| {
        kernel_loop2(m, "s235", 7, 8, |b, ar, i, j| {
            let eight = b.i64_const(8);
            let row = b.mul(i, eight);
            let idx = b.add(row, j);
            let x = ldd(b, ar.a, idx);
            let y = ldd(b, ar.b, idx);
            let s = b.fadd(x, y);
            std_(b, ar.a, idx, s);
            let down = ofs(b, idx, 8);
            let z = ldd(b, ar.c, down);
            let p = b.fmul(s, z);
            std_(b, ar.c, down, p);
        });
    });
    // s2101: diagonal walk (flattened i*9)
    k("s2101", false, |m| {
        kernel_loop(m, "s2101", LEN / 8, |b, ar, iv| {
            let nine = b.i64_const(9 % LEN);
            let di = b.mul(iv, nine);
            let x = ldd(b, ar.a, di);
            let y = ldd(b, ar.b, di);
            let p = b.fmul(x, y);
            let one = fc(b, 1.0);
            let s = b.fadd(p, one);
            std_(b, ar.a, di, s);
        });
    });
    // s2102: identity-matrix initialization (zero then set diagonal)
    k("s2102", false, |m| {
        kernel_loop(m, "s2102", LEN / 8, |b, ar, iv| {
            let nine = b.i64_const(9 % LEN);
            let di = b.mul(iv, nine);
            let one = fc(b, 1.0);
            std_(b, ar.a, di, one);
        });
    });
    // s2111: wavefront (flattened neighbour sum)
    k("s2111", false, |m| {
        kernel_loop(m, "s2111", LEN - 9, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let i9 = ofs(b, iv, 9);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.a, i1);
            let s = b.fadd(x, y);
            let half = fc(b, 0.5);
            let h = b.fmul(s, half);
            std_(b, ar.a, i9, h);
        });
    });
    // s241: node splitting: a[i] = b[i]*c[i]*d[i]; b[i] = a[i]*a[i+1]*d[i]
    k("s241", false, |m| {
        kernel_loop(m, "s241", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, y);
            let q = b.fmul(p, z);
            std_(b, ar.a, iv, q);
            let w = ldd(b, ar.a, i1);
            let r = b.fmul(q, w);
            let t = b.fmul(r, z);
            std_(b, ar.b, iv, t);
        });
    });
    // s242: two statements with anti-dependence
    k("s242", false, |m| {
        kernel_loop(m, "s242", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, iv);
            let s1 = fc(b, 1.5);
            let s2 = fc(b, 2.5);
            let t1 = b.fadd(x, s1);
            let t2 = b.fadd(t1, s2);
            let y = ldd(b, ar.b, i1);
            let t3 = b.fadd(t2, y);
            std_(b, ar.a, i1, t3);
        });
    });
    // s243: splittable three-statement body
    k("s243", false, |m| {
        kernel_loop(m, "s243", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, iv, s);
            let w = ldd(b, ar.a, i1);
            let t = b.fadd(s, w);
            std_(b, ar.b, iv, t);
        });
    });
    // s244: false dependence chain
    k("s244", false, |m| {
        kernel_loop(m, "s244", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, z);
            std_(b, ar.a, i1, p);
        });
    });
    // s251: scalar expansion of a body temporary
    k("s251", false, |m| {
        kernel_loop(m, "s251", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let s = b.fadd(x, y);
            let p = b.fmul(s, z);
            std_(b, ar.a, iv, p);
        });
    });
    // s2251: expansion across statements
    k("s2251", false, |m| {
        kernel_loop(m, "s2251", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.e, iv, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(s, z);
            std_(b, ar.a, iv, p);
        });
    });
    // s252: loop-carried scalar (sequential)
    k("s252", false, |m| {
        kernel_reduce(m, "s252", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let p = b.fmul(x, y);
            let s = b.fadd(acc, p);
            std_(b, ar.a, iv, s);
            s
        });
    });
    // s253: conditional scalar expansion (multi-block).
    k("s253", true, |m| {
        kernel_loop_cond(
            m,
            "s253",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let y = ldd(b, ar.b, iv);
                b.fcmp(FloatPredicate::Ogt, x, y)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let y = ldd(b, ar.b, iv);
                let s = b.fsub(x, y);
                let z = ldd(b, ar.d, iv);
                let p = b.fmul(s, z);
                std_(b, ar.c, iv, p);
            },
        );
    });
    // s254: carry-around variable
    k("s254", false, |m| {
        kernel_loop(m, "s254", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.b, i1);
            let s = b.fadd(x, y);
            let half = fc(b, 0.5);
            let h = b.fmul(s, half);
            std_(b, ar.a, iv, h);
        });
    });
    // s255: carry-around two deep
    k("s255", false, |m| {
        kernel_loop(m, "s255", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let i2 = ofs(b, iv, 2);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.b, i1);
            let z = ldd(b, ar.b, i2);
            let s = b.fadd(x, y);
            let t = b.fadd(s, z);
            let third = fc(b, 0.333);
            let h = b.fmul(t, third);
            std_(b, ar.a, iv, h);
        });
    });
    // s256: 2D array expansion (flattened)
    k("s256", false, |m| {
        kernel_loop(m, "s256", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let one = fc(b, 1.0);
            let s = b.fsub(one, x);
            std_(b, ar.a, iv, s);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(s, y);
            std_(b, ar.d, iv, p);
        });
    });
    // s257: array expansion crossing rows
    k("s257", false, |m| {
        kernel_loop(m, "s257", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, iv);
            let s = b.fsub(z, p);
            std_(b, ar.a, i1, s);
        });
    });
    // s258: conditional wrap-around (multi-block).
    k("s258", true, |m| {
        kernel_loop_cond(
            m,
            "s258",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let y = ldd(b, ar.b, iv);
                let z = ldd(b, ar.c, iv);
                let p = b.fmul(y, z);
                std_(b, ar.e, iv, p);
            },
        );
    });
    // s261: scalar renaming
    k("s261", false, |m| {
        kernel_loop(m, "s261", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, i1);
            let t1 = b.fadd(x, y);
            std_(b, ar.a, iv, t1);
            let z = ldd(b, ar.d, iv);
            let t2 = b.fmul(t1, z);
            std_(b, ar.c, iv, t2);
        });
    });
    // s271 (Fig. 20a): if (b[i] > 0) a[i] += b[i]*c[i]  (multi-block).
    k("s271", true, |m| {
        kernel_loop_cond(
            m,
            "s271",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
            },
        );
    });
    // s272: two-branch conditional (multi-block).
    k("s272", true, |m| {
        kernel_loop_cond(
            m,
            "s272",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.e, iv);
                let t = fc(b, 0.5);
                b.fcmp(FloatPredicate::Oge, x, t)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let y = ldd(b, ar.d, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
                let w = ldd(b, ar.b, iv);
                let t2 = b.fadd(w, p);
                std_(b, ar.b, iv, t2);
            },
        );
    });
    // s273: conditional on a computed value (multi-block).
    k("s273", true, |m| {
        kernel_loop_cond(
            m,
            "s273",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Olt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.d, iv);
                let y = ldd(b, ar.e, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.b, iv);
                let s = b.fadd(z, p);
                std_(b, ar.b, iv, s);
            },
        );
    });
    // s274: guarded then unconditional update (multi-block).
    k("s274", true, |m| {
        kernel_loop_cond(
            m,
            "s274",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let y = ldd(b, ar.e, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
                std_(b, ar.b, iv, s);
            },
        );
    });
    // s275: guarded inner walk folded to selects (single block).
    k("s275", false, |m| {
        kernel_loop(m, "s275", LEN - 8, |b, ar, iv| {
            let i8v = ofs(b, iv, 8);
            let x = ldd(b, ar.a, iv);
            let zero = fc(b, 0.0);
            let cnd = b.fcmp(FloatPredicate::Ogt, x, zero);
            let y = ldd(b, ar.b, i8v);
            let z = ldd(b, ar.c, i8v);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            let sel = b.select(cnd, s, x);
            std_(b, ar.a, iv, sel);
        });
    });
    // s276: threshold test folded to select (single block).
    k("s276", false, |m| {
        kernel_loop(m, "s276", LEN, |b, ar, iv| {
            let mid = b.i64_const(LEN / 2);
            let cnd = b.icmp(rolag_ir::IntPredicate::Slt, iv, mid);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, iv);
            let s = b.fadd(z, p);
            let sel = b.select(cnd, s, z);
            std_(b, ar.a, iv, sel);
        });
    });
    // s277: dependent conditionals (multi-block).
    k("s277", true, |m| {
        kernel_loop_cond(
            m,
            "s277",
            LEN - 8,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Oge, x, zero)
            },
            |b, ar, iv| {
                let i1 = ofs(b, iv, 1);
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, i1);
                let s = b.fadd(z, p);
                std_(b, ar.b, i1, s);
            },
        );
    });
    // s278: if-then-else both writing (multi-block).
    k("s278", true, |m| {
        kernel_loop_cond(
            m,
            "s278",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let y = ldd(b, ar.d, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.b, iv);
                let s = b.fsub(z, p);
                std_(b, ar.b, iv, s);
            },
        );
    });
    // s279: vector if/goto (multi-block).
    k("s279", true, |m| {
        kernel_loop_cond(
            m,
            "s279",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let t = fc(b, 0.25);
                b.fcmp(FloatPredicate::Ogt, x, t)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let y = ldd(b, ar.d, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
                let e = ldd(b, ar.e, iv);
                let q = b.fmul(e, p);
                std_(b, ar.e, iv, q);
            },
        );
    });
    // s1279: variant of s279 (multi-block).
    k("s1279", true, |m| {
        kernel_loop_cond(
            m,
            "s1279",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let y = ldd(b, ar.b, iv);
                b.fcmp(FloatPredicate::Olt, x, y)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let y = ldd(b, ar.d, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.e, iv);
                let s = b.fadd(z, p);
                std_(b, ar.e, iv, s);
            },
        );
    });
    // s2710: scalar and vector ifs (multi-block).
    k("s2710", true, |m| {
        kernel_loop_cond(
            m,
            "s2710",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let y = ldd(b, ar.b, iv);
                b.fcmp(FloatPredicate::Ogt, x, y)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.c, iv);
                let d = fc(b, 2.0);
                let p = b.fmul(x, d);
                std_(b, ar.a, iv, p);
            },
        );
    });
    // s2711: semantic if removal (multi-block in source form).
    k("s2711", true, |m| {
        kernel_loop_cond(
            m,
            "s2711",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::One, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
            },
        );
    });
    // s2712: if to elemental min (multi-block).
    k("s2712", true, |m| {
        kernel_loop_cond(
            m,
            "s2712",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let y = ldd(b, ar.b, iv);
                b.fcmp(FloatPredicate::Ogt, x, y)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
            },
        );
    });
    // s281: crossing thresholds (reverse read, forward write)
    k("s281", false, |m| {
        kernel_loop(m, "s281", LEN, |b, ar, iv| {
            let last = b.i64_const(LEN - 1);
            let ri = b.sub(last, iv);
            let x = ldd(b, ar.a, ri);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.b, iv, s);
        });
    });
    // s291: loop peeling — wrap-around variable modelled via ip
    k("s291", false, |m| {
        kernel_loop(m, "s291", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.b, i1);
            let s = b.fadd(x, y);
            let half = fc(b, 0.5);
            let h = b.fmul(s, half);
            std_(b, ar.a, iv, h);
        });
    });
    // s292: double wrap-around
    k("s292", false, |m| {
        kernel_loop(m, "s292", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let i2 = ofs(b, iv, 2);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.b, i1);
            let z = ldd(b, ar.b, i2);
            let s = b.fadd(x, y);
            let t = b.fadd(s, z);
            let q = fc(b, 0.25);
            let h = b.fmul(t, q);
            std_(b, ar.a, iv, h);
        });
    });
    // s293: a[i] = a[0] (loop-invariant RHS)
    k("s293", false, |m| {
        kernel_loop(m, "s293", LEN, |b, ar, iv| {
            let zero = b.i64_const(0);
            let x = ldd(b, ar.a, zero);
            std_(b, ar.b, iv, x);
        });
    });
    // s2275: non-interchangeable nest (flattened strided pair)
    k("s2275", false, |m| {
        kernel_loop(m, "s2275", LEN - 8, |b, ar, iv| {
            let i8v = ofs(b, iv, 8);
            let x = ldd(b, ar.a, i8v);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, i8v, s);
            let w = ldd(b, ar.b, i8v);
            let t = b.fadd(w, p);
            std_(b, ar.b, i8v, t);
        });
    });
}
