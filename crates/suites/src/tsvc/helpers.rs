//! Shared scaffolding for TSVC kernels: the global arrays and canonical
//! counted-loop builders.

use rolag_ir::{
    BlockId, Builder, FuncId, Function, GlobalId, IntPredicate, Module, Opcode, TypeId, ValueId,
};

/// Trip count of every kernel loop. Divisible by 8 so the harness can
/// force-unroll by the paper's factor.
pub const LEN: i64 = 64;

/// The suite's global arrays (TSVC's `a,b,c,d,e`, integer arrays, and an
/// index array for indirect-access kernels).
#[derive(Debug, Clone, Copy)]
pub struct Arrays {
    /// `double a[LEN]`
    pub a: GlobalId,
    /// `double b[LEN]`
    pub b: GlobalId,
    /// `double c[LEN]`
    pub c: GlobalId,
    /// `double d[LEN]`
    pub d: GlobalId,
    /// `double e[LEN]`
    pub e: GlobalId,
    /// `int ia[LEN]`
    pub ia: GlobalId,
    /// `int ib[LEN]`
    pub ib: GlobalId,
    /// `int ic[LEN]`
    pub ic: GlobalId,
    /// `long ip[LEN]` — a permutation-ish index array (values in bounds).
    pub ip: GlobalId,
}

/// Alias kept for the public API: the kernel context is the array set.
pub type KernelCx = Arrays;

/// Creates (or finds) the suite arrays in `m`.
pub fn ensure_arrays(m: &mut Module) -> Arrays {
    let get = |m: &mut Module, name: &str, elem: TypeId, init: Option<fn(i64) -> i64>| {
        if let Some(g) = m.global_by_name(name) {
            return g;
        }
        let arr = m.types.array(elem, LEN as u64);
        match init {
            None => m.add_zero_global(name.to_string(), arr),
            Some(f) => m.add_global(rolag_ir::GlobalData {
                name: name.to_string(),
                ty: arr,
                init: rolag_ir::GlobalInit::Ints {
                    elem_ty: elem,
                    values: (0..LEN).map(f).collect(),
                },
                is_const: false,
            }),
        }
    };
    let d64 = m.types.double();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    // Deterministic non-trivial initial data so the interpreter sees real
    // values (doubles are initialized via their own kernels in real TSVC; a
    // zero init plus the integer arrays is enough for behavioural diffing).
    let a = get(m, "a", d64, None);
    let b = get(m, "b", d64, None);
    let c = get(m, "c", d64, None);
    let d = get(m, "d", d64, None);
    let e = get(m, "e", d64, None);
    let ia = get(m, "ia", i32t, Some(|i| (i * 3 + 1) % 100));
    let ib = get(m, "ib", i32t, Some(|i| (i * 7 + 2) % 50));
    let ic = get(m, "ic", i32t, Some(|i| (i * 5 + 3) % 25));
    let ip = get(m, "ip", i64t, Some(|i| (i * 37 + 11) % LEN));
    Arrays {
        a,
        b,
        c,
        d,
        e,
        ia,
        ib,
        ic,
        ip,
    }
}

/// Loads `g[idx]` with element type `elem`.
pub fn ld(b: &mut Builder<'_>, g: GlobalId, elem: TypeId, idx: ValueId) -> ValueId {
    let base = b.global(g);
    let p = b.gep(elem, base, &[idx]);
    b.load(elem, p)
}

/// Stores `v` to `g[idx]` with element type `elem`.
pub fn st(b: &mut Builder<'_>, g: GlobalId, elem: TypeId, idx: ValueId, v: ValueId) {
    let base = b.global(g);
    let p = b.gep(elem, base, &[idx]);
    b.store(v, p);
}

/// Double load `g[idx]`.
pub fn ldd(b: &mut Builder<'_>, g: GlobalId, idx: ValueId) -> ValueId {
    let d = b.types.double();
    ld(b, g, d, idx)
}

/// Double store `g[idx] = v`.
pub fn std_(b: &mut Builder<'_>, g: GlobalId, idx: ValueId, v: ValueId) {
    let d = b.types.double();
    st(b, g, d, idx, v)
}

/// `idx + k` as i64.
pub fn ofs(b: &mut Builder<'_>, idx: ValueId, k: i64) -> ValueId {
    let c = b.i64_const(k);
    b.add(idx, c)
}

/// Builds a canonical counted kernel loop
/// `for (iv = 0; ; iv += step) { body }  while (iv + step < trips*step)`
/// returning `void`. The shape is exactly what the unroller and both
/// rolling passes expect (phi + tests-next compare).
pub fn kernel_loop(
    m: &mut Module,
    name: &str,
    trip: i64,
    body: impl FnOnce(&mut Builder<'_>, &Arrays, ValueId),
) -> FuncId {
    let arrays = ensure_arrays(m);
    let void = m.types.void();
    let i64t = m.types.i64();
    let mut func = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut func, &mut m.types);
        let entry = b.block("entry");
        let loop_bb = b.func.add_block("loop");
        let exit_bb = b.func.add_block("exit");
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let zero = b.iconst(i64t, 0);
        let iv = b.phi(i64t, &[(zero, entry), (zero, loop_bb)]);
        body(&mut b, &arrays, iv);
        let one = b.iconst(i64t, 1);
        let ivn = b.add(iv, one);
        patch_loop_phi(b.func, iv, loop_bb, ivn);
        let bound = b.iconst(i64t, trip);
        let cmp = b.icmp(IntPredicate::Slt, ivn, bound);
        b.cond_br(cmp, loop_bb, exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
    }
    m.add_func(func)
}

/// Builds a reduction kernel
/// `acc = init; for (...) acc = body(acc); return acc` with a `double`
/// accumulator.
pub fn kernel_reduce(
    m: &mut Module,
    name: &str,
    trip: i64,
    init: f64,
    body: impl FnOnce(&mut Builder<'_>, &Arrays, ValueId, ValueId) -> ValueId,
) -> FuncId {
    let arrays = ensure_arrays(m);
    let d64 = m.types.double();
    let i64t = m.types.i64();
    let mut func = Function::new(name, vec![], d64);
    {
        let mut b = Builder::on(&mut func, &mut m.types);
        let entry = b.block("entry");
        let loop_bb = b.func.add_block("loop");
        let exit_bb = b.func.add_block("exit");
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let zero = b.iconst(i64t, 0);
        let iv = b.phi(i64t, &[(zero, entry), (zero, loop_bb)]);
        let init_v = b.fconst(d64, init);
        let acc = b.phi(d64, &[(init_v, entry), (init_v, loop_bb)]);
        let next = body(&mut b, &arrays, iv, acc);
        patch_loop_phi(b.func, acc, loop_bb, next);
        let one = b.iconst(i64t, 1);
        let ivn = b.add(iv, one);
        patch_loop_phi(b.func, iv, loop_bb, ivn);
        let bound = b.iconst(i64t, trip);
        let cmp = b.icmp(IntPredicate::Slt, ivn, bound);
        b.cond_br(cmp, loop_bb, exit_bb);
        b.switch_to(exit_bb);
        b.ret(Some(next));
    }
    m.add_func(func)
}

/// Builds a rectangular two-level nest
/// `for (i = 0; i < outer; i++) for (j = 0; j < inner; j++) body(i, j)`.
/// The inner loop is single-block and canonical, so the harness's ×8
/// unroll applies to it exactly as the paper's source-level unrolling
/// does to TSVC's 2D kernels.
pub fn kernel_loop2(
    m: &mut Module,
    name: &str,
    outer: i64,
    inner: i64,
    body: impl FnOnce(&mut Builder<'_>, &Arrays, ValueId, ValueId),
) -> FuncId {
    let arrays = ensure_arrays(m);
    let void = m.types.void();
    let i64t = m.types.i64();
    let mut func = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut func, &mut m.types);
        let entry = b.block("entry");
        let oh = b.func.add_block("outer");
        let il = b.func.add_block("inner");
        let ol = b.func.add_block("latch");
        let exit_bb = b.func.add_block("exit");
        b.br(oh);
        b.switch_to(oh);
        let zero = b.iconst(i64t, 0);
        let iv_o = b.phi(i64t, &[(zero, entry), (zero, ol)]);
        b.br(il);
        b.switch_to(il);
        let iv_i = b.phi(i64t, &[(zero, oh), (zero, il)]);
        body(&mut b, &arrays, iv_o, iv_i);
        let one = b.iconst(i64t, 1);
        let iv_in = b.add(iv_i, one);
        patch_loop_phi(b.func, iv_i, il, iv_in);
        let ib = b.iconst(i64t, inner);
        let ci = b.icmp(IntPredicate::Slt, iv_in, ib);
        b.cond_br(ci, il, ol);
        b.switch_to(ol);
        let iv_on = b.add(iv_o, one);
        patch_loop_phi(b.func, iv_o, ol, iv_on);
        let ob = b.iconst(i64t, outer);
        let co = b.icmp(IntPredicate::Slt, iv_on, ob);
        b.cond_br(co, oh, exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
    }
    m.add_func(func)
}

/// Builds a conditional kernel: the loop body branches on `cond` and only
/// the `then` side executes `then_body`. This is the multi-basic-block
/// shape that neither LLVM's rerolling nor RoLAG handles (§V-C, Fig. 20a).
pub fn kernel_loop_cond(
    m: &mut Module,
    name: &str,
    trip: i64,
    cond: impl FnOnce(&mut Builder<'_>, &Arrays, ValueId) -> ValueId,
    then_body: impl FnOnce(&mut Builder<'_>, &Arrays, ValueId),
) -> FuncId {
    let arrays = ensure_arrays(m);
    let void = m.types.void();
    let i64t = m.types.i64();
    let mut func = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut func, &mut m.types);
        let entry = b.block("entry");
        let head = b.func.add_block("head");
        let then_bb = b.func.add_block("then");
        let latch = b.func.add_block("latch");
        let exit_bb = b.func.add_block("exit");
        b.br(head);
        b.switch_to(head);
        let zero = b.iconst(i64t, 0);
        let iv = b.phi(i64t, &[(zero, entry), (zero, latch)]);
        let c = cond(&mut b, &arrays, iv);
        b.cond_br(c, then_bb, latch);
        b.switch_to(then_bb);
        then_body(&mut b, &arrays, iv);
        b.br(latch);
        b.switch_to(latch);
        let one = b.iconst(i64t, 1);
        let ivn = b.add(iv, one);
        patch_loop_phi(b.func, iv, latch, ivn);
        let bound = b.iconst(i64t, trip);
        let cmp = b.icmp(IntPredicate::Slt, ivn, bound);
        b.cond_br(cmp, head, exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
    }
    m.add_func(func)
}

/// Replaces the placeholder back-edge operand of a loop phi.
pub fn patch_loop_phi(
    func: &mut Function,
    phi_value: ValueId,
    loop_block: BlockId,
    new_value: ValueId,
) {
    let inst = func
        .value(phi_value)
        .as_inst()
        .expect("phi value is an instruction");
    let data = func.inst_mut(inst);
    debug_assert_eq!(data.opcode, Opcode::Phi);
    if let rolag_ir::InstExtra::Phi { incoming } = &data.extra {
        let arm = incoming
            .iter()
            .position(|&bb| bb == loop_block)
            .expect("phi has a back edge");
        data.operands[arm] = new_value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::{IValue, Interpreter};
    use rolag_ir::verify::verify_module;

    #[test]
    fn kernel_loop_shape_is_canonical() {
        let mut m = Module::new("t");
        kernel_loop(&mut m, "k", LEN, |b, ar, iv| {
            let v = ldd(b, ar.b, iv);
            std_(b, ar.a, iv, v);
        });
        verify_module(&m).expect("verifies");
        // It must be detected as a single-block counted loop.
        let f = m.func(m.func_by_name("k").unwrap());
        let dom = rolag_analysis::DomTree::compute(f);
        let loops = rolag_analysis::find_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        let tc = rolag_analysis::trip_count(&m, f, &loops[0]).unwrap();
        assert_eq!(tc.known_trips, Some(LEN as u64));
    }

    #[test]
    fn reduce_kernel_returns_accumulator() {
        let mut m = Module::new("t");
        // sum of ip[i] (as double via load+convert is overkill; sum b which
        // is zero -> 0.0 + LEN * 1.0 via constant add).
        kernel_reduce(&mut m, "k", LEN, 0.0, |b, _ar, _iv, acc| {
            let one = b.fconst(b.types.double(), 1.0);
            b.fadd(acc, one)
        });
        verify_module(&m).expect("verifies");
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("k", &[]).unwrap().ret, IValue::Float(LEN as f64));
    }

    #[test]
    fn conditional_kernel_is_multi_block() {
        let mut m = Module::new("t");
        kernel_loop_cond(
            &mut m,
            "k",
            LEN,
            |b, ar, iv| {
                let v = ld(b, ar.ia, b.types.i32(), iv);
                let z = b.i32_const(50);
                b.icmp(IntPredicate::Slt, v, z)
            },
            |b, ar, iv| {
                let v = ld(b, ar.ia, b.types.i32(), iv);
                let two = b.i32_const(2);
                let w = b.mul(v, two);
                st(b, ar.ib, b.types.i32(), iv, w);
            },
        );
        verify_module(&m).expect("verifies");
        let f = m.func(m.func_by_name("k").unwrap());
        let dom = rolag_analysis::DomTree::compute(f);
        let loops = rolag_analysis::find_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        assert!(!loops[0].is_single_block());
        let mut i = Interpreter::new(&m);
        i.run("k", &[]).expect("runs");
    }
}
