//! TSVC kernels: the `s3xx` family (reductions, recurrences, search loops,
//! packing, loop rerolling).

use rolag_ir::{FloatPredicate, Module};

use super::helpers::{kernel_loop, kernel_loop_cond, kernel_reduce, ldd, ofs, std_, LEN};
use super::KernelSpec;

fn fc(b: &mut rolag_ir::Builder<'_>, v: f64) -> rolag_ir::ValueId {
    let d = b.types.double();
    b.fconst(d, v)
}

/// Registers the family.
pub fn register(v: &mut Vec<KernelSpec>) {
    let mut k = |name: &'static str, multi_block: bool, build: fn(&mut Module)| {
        v.push(KernelSpec {
            name,
            multi_block,
            build,
        });
    };

    // s311: sum reduction
    k("s311", false, |m| {
        kernel_reduce(m, "s311", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            b.fadd(acc, x)
        });
    });
    // s312: product reduction
    k("s312", false, |m| {
        kernel_reduce(m, "s312", LEN, 1.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let one = fc(b, 1.0);
            let bumped = b.fadd(x, one); // keep the product finite
            b.fmul(acc, bumped)
        });
    });
    // s313: dot product reduction
    k("s313", false, |m| {
        kernel_reduce(m, "s313", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // s314: max reduction via select
    k("s314", false, |m| {
        kernel_reduce(m, "s314", LEN, -1.0e30, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let c = b.fcmp(FloatPredicate::Ogt, x, acc);
            b.select(c, x, acc)
        });
    });
    // s315: max with index (value part only, via select)
    k("s315", false, |m| {
        kernel_reduce(m, "s315", LEN, -1.0e30, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            let c = b.fcmp(FloatPredicate::Ogt, s, acc);
            b.select(c, s, acc)
        });
    });
    // s316: min reduction via select
    k("s316", false, |m| {
        kernel_reduce(m, "s316", LEN, 1.0e30, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let c = b.fcmp(FloatPredicate::Olt, x, acc);
            b.select(c, x, acc)
        });
    });
    // s317: product of scalars (induction-like geometric sequence)
    k("s317", false, |m| {
        kernel_reduce(m, "s317", LEN, 1.0, |b, _ar, _iv, acc| {
            let q = fc(b, 0.99);
            b.fmul(acc, q)
        });
    });
    // s318: max of |a[i]| via selects
    k("s318", false, |m| {
        kernel_reduce(m, "s318", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let zero = fc(b, 0.0);
            let neg = b.fsub(zero, x);
            let cpos = b.fcmp(FloatPredicate::Ogt, x, neg);
            let abs = b.select(cpos, x, neg);
            let c = b.fcmp(FloatPredicate::Ogt, abs, acc);
            b.select(c, abs, acc)
        });
    });
    // s319: sum of two elementwise sums (rollable store + reduction combo)
    k("s319", false, |m| {
        kernel_reduce(m, "s319", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.c, iv);
            let y = ldd(b, ar.d, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
            let z = ldd(b, ar.e, iv);
            let t = b.fadd(s, z);
            std_(b, ar.b, iv, t);
            let u = b.fadd(s, t);
            b.fadd(acc, u)
        });
    });
    // s3110: max over 2D (flattened, select form)
    k("s3110", false, |m| {
        kernel_reduce(m, "s3110", LEN, -1.0e30, |b, ar, iv, acc| {
            let x = ldd(b, ar.b, iv);
            let c = b.fcmp(FloatPredicate::Ogt, x, acc);
            b.select(c, x, acc)
        });
    });
    // s31111: repeated short sums
    k("s31111", false, |m| {
        kernel_reduce(m, "s31111", LEN - 8, 0.0, |b, ar, iv, acc| {
            let i1 = ofs(b, iv, 1);
            let i2 = ofs(b, iv, 2);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.a, i1);
            let z = ldd(b, ar.a, i2);
            let s = b.fadd(x, y);
            let t = b.fadd(s, z);
            b.fadd(acc, t)
        });
    });
    // s3111: conditional sum (multi-block).
    k("s3111", true, |m| {
        kernel_loop_cond(
            m,
            "s3111",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = b.i64_const(0);
                let cur = ldd(b, ar.e, zero);
                let s = b.fadd(cur, x);
                std_(b, ar.e, zero, s);
            },
        );
    });
    // s3112: sum with prefix store (scan)
    k("s3112", false, |m| {
        kernel_reduce(m, "s3112", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let s = b.fadd(acc, x);
            std_(b, ar.b, iv, s);
            s
        });
    });
    // s3113 (Fig. 20b): max of |a[i]| in if-form (multi-block).
    k("s3113", true, |m| {
        kernel_loop_cond(
            m,
            "s3113",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = b.i64_const(0);
                let cur = ldd(b, ar.e, zero);
                b.fcmp(FloatPredicate::Ogt, x, cur)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = b.i64_const(0);
                std_(b, ar.e, zero, x);
            },
        );
    });
    // s321: first-order linear recurrence
    k("s321", false, |m| {
        kernel_loop(m, "s321", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, i1);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
        });
    });
    // s322: second-order linear recurrence
    k("s322", false, |m| {
        kernel_loop(m, "s322", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let i2 = ofs(b, iv, 2);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.a, i1);
            let z = ldd(b, ar.b, i2);
            let p = b.fmul(x, y);
            let s = b.fadd(p, z);
            std_(b, ar.a, i2, s);
        });
    });
    // s323: coupled recurrence
    k("s323", false, |m| {
        kernel_loop(m, "s323", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, i1);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
            let z = ldd(b, ar.a, i1);
            let w = ldd(b, ar.d, i1);
            let p = b.fmul(z, w);
            std_(b, ar.b, i1, p);
        });
    });
    // s3251: mixed recurrence/elementwise
    k("s3251", false, |m| {
        kernel_loop(m, "s3251", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, z);
            std_(b, ar.b, iv, p);
            let w = ldd(b, ar.a, iv);
            let q = b.fmul(w, z);
            std_(b, ar.e, iv, q);
        });
    });
    // s331: search for last negative element (multi-block).
    k("s331", true, |m| {
        kernel_loop_cond(
            m,
            "s331",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Olt, x, zero)
            },
            |b, ar, iv| {
                let zero = b.i64_const(0);
                let d = b.types.double();
                let fi = b.cast(rolag_ir::Opcode::SiToFp, iv, d);
                std_(b, ar.e, zero, fi);
            },
        );
    });
    // s332: first element greater than threshold (multi-block).
    k("s332", true, |m| {
        kernel_loop_cond(
            m,
            "s332",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let t = fc(b, 0.75);
                b.fcmp(FloatPredicate::Ogt, x, t)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let one = b.i64_const(1);
                std_(b, ar.e, one, x);
            },
        );
    });
    // s341: pack positive elements (multi-block).
    k("s341", true, |m| {
        kernel_loop_cond(
            m,
            "s341",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                std_(b, ar.a, iv, x);
            },
        );
    });
    // s342: unpack (multi-block).
    k("s342", true, |m| {
        kernel_loop_cond(
            m,
            "s342",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.a, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                std_(b, ar.a, iv, x);
            },
        );
    });
    // s343: pack 2D (multi-block).
    k("s343", true, |m| {
        kernel_loop_cond(
            m,
            "s343",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                std_(b, ar.a, iv, p);
            },
        );
    });
    // s351: manually unrolled saxpy body (already partially unrolled in
    // TSVC source; here the rolled form).
    k("s351", false, |m| {
        kernel_loop(m, "s351", LEN, |b, ar, iv| {
            let alpha = fc(b, 1.5);
            let x = ldd(b, ar.b, iv);
            let p = b.fmul(alpha, x);
            let y = ldd(b, ar.a, iv);
            let s = b.fadd(y, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s352: unrolled dot product (rolled form)
    k("s352", false, |m| {
        kernel_reduce(m, "s352", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // s353: unrolled sparse saxpy through an index array
    k("s353", false, |m| {
        kernel_loop(m, "s353", LEN, |b, ar, iv| {
            let i64t = b.types.i64();
            let j = super::helpers::ld(b, ar.ip, i64t, iv);
            let alpha = fc(b, 1.5);
            let x = ldd(b, ar.b, j);
            let p = b.fmul(alpha, x);
            let y = ldd(b, ar.a, iv);
            let s = b.fadd(y, p);
            std_(b, ar.a, iv, s);
        });
    });
}
