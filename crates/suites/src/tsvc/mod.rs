//! TSVC — the Test Suite for Vectorizing Compilers (Callahan, Dongarra,
//! Levine), ported to the project IR.
//!
//! The paper evaluates loop (re)rolling on TSVC with every inner loop
//! force-unrolled by 8 (§V-C); the original rolled kernels serve as the
//! oracle of Fig. 18. Each kernel here is built in its *rolled* form; the
//! harness unrolls it with `rolag-transforms` to produce the evaluated
//! input.
//!
//! The ports preserve each kernel's loop structure and memory access
//! pattern (strides, offsets, reductions, recurrences, conditionals,
//! indirection); scalar element types are `double` for floating kernels and
//! `i32`/`i64` for integer/index kernels, as in the original suite.

mod helpers;
mod kernels_s1;
mod kernels_s2;
mod kernels_s3;
mod kernels_s4;
mod kernels_v;

pub use helpers::{ensure_arrays, kernel_loop, patch_loop_phi, KernelCx, LEN};

use rolag_ir::Module;

/// A named TSVC kernel and its builder.
pub struct KernelSpec {
    /// Kernel name (matches the TSVC function name).
    pub name: &'static str,
    /// Whether the kernel's inner loop spans multiple basic blocks
    /// (conditional kernels like s271) — unsupported by both techniques in
    /// the paper.
    pub multi_block: bool,
    /// Builds the kernel function into the module.
    pub build: fn(&mut Module),
}

/// All kernels of the suite, in name order.
pub fn all_kernels() -> Vec<KernelSpec> {
    let mut v = Vec::new();
    kernels_s1::register(&mut v);
    kernels_s2::register(&mut v);
    kernels_s3::register(&mut v);
    kernels_s4::register(&mut v);
    kernels_v::register(&mut v);
    v.sort_by_key(|k| k.name);
    v
}

/// Builds one module per kernel (rolled form), so kernels can be sized and
/// transformed independently like separate object files.
pub fn build_kernel_module(spec: &KernelSpec) -> Module {
    let mut m = Module::new(format!("tsvc.{}", spec.name));
    ensure_arrays(&mut m);
    (spec.build)(&mut m);
    m
}

/// Builds the whole suite into one module (used by the interpreter tests).
pub fn build_suite_module() -> Module {
    let mut m = Module::new("tsvc");
    ensure_arrays(&mut m);
    for spec in all_kernels() {
        (spec.build)(&mut m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::verify::verify_module;

    #[test]
    fn suite_has_151_kernels() {
        let kernels = all_kernels();
        assert_eq!(kernels.len(), 151, "TSVC has 151 loops");
        // Names are unique.
        let mut names: Vec<_> = kernels.iter().map(|k| k.name).collect();
        names.dedup();
        assert_eq!(names.len(), 151);
    }

    #[test]
    fn full_suite_verifies() {
        let m = build_suite_module();
        verify_module(&m).expect("all kernels verify");
    }

    #[test]
    fn paper_reports_26_multi_block_loops() {
        // §V-C: "the most prominent of them are the 26 loops with multiple
        // basic blocks".
        let n = all_kernels().iter().filter(|k| k.multi_block).count();
        assert_eq!(n, 26);
    }

    #[test]
    fn kernels_execute_in_the_interpreter() {
        let m = build_suite_module();
        let mut failures = Vec::new();
        for spec in all_kernels() {
            let mut interp = rolag_ir::interp::Interpreter::new(&m).with_max_steps(2_000_000);
            if let Err(e) = interp.run(spec.name, &[]) {
                failures.push(format!("{}: {e}", spec.name));
            }
        }
        assert!(failures.is_empty(), "kernels faulted: {failures:?}");
    }
}
