//! TSVC kernels: the `v*` control family (basic vector operations) plus
//! `s2244`.

use rolag_ir::{FloatPredicate, Module};

use super::helpers::{kernel_loop, kernel_loop_cond, kernel_reduce, ldd, ofs, std_, LEN};
use super::KernelSpec;

fn fc(b: &mut rolag_ir::Builder<'_>, v: f64) -> rolag_ir::ValueId {
    let d = b.types.double();
    b.fconst(d, v)
}

/// Registers the family.
pub fn register(v: &mut Vec<KernelSpec>) {
    let mut k = |name: &'static str, multi_block: bool, build: fn(&mut Module)| {
        v.push(KernelSpec {
            name,
            multi_block,
            build,
        });
    };

    // va: vector assignment a[i] = b[i]
    k("va", false, |m| {
        kernel_loop(m, "va", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            std_(b, ar.a, iv, x);
        });
    });
    // vag: gather a[i] = b[ip[i]]
    k("vag", false, |m| {
        kernel_loop(m, "vag", LEN, |b, ar, iv| {
            let i64t = b.types.i64();
            let j = super::helpers::ld(b, ar.ip, i64t, iv);
            let x = ldd(b, ar.b, j);
            std_(b, ar.a, iv, x);
        });
    });
    // vas: scatter a[ip[i]] = b[i]
    k("vas", false, |m| {
        kernel_loop(m, "vas", LEN, |b, ar, iv| {
            let i64t = b.types.i64();
            let j = super::helpers::ld(b, ar.ip, i64t, iv);
            let x = ldd(b, ar.b, iv);
            std_(b, ar.a, j, x);
        });
    });
    // vbor: long expression chain per element
    k("vbor", false, |m| {
        kernel_loop(m, "vbor", LEN, |b, ar, iv| {
            let a = ldd(b, ar.a, iv);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let w = ldd(b, ar.e, iv);
            let t1 = b.fmul(a, x);
            let t2 = b.fmul(t1, y);
            let t3 = b.fadd(t2, z);
            let t4 = b.fmul(t3, w);
            let t5 = b.fadd(t4, t1);
            std_(b, ar.b, iv, t5);
        });
    });
    // vdotr: dot product reduction
    k("vdotr", false, |m| {
        kernel_reduce(m, "vdotr", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // vif: vector if (multi-block).
    k("vif", true, |m| {
        kernel_loop_cond(
            m,
            "vif",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ogt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                std_(b, ar.a, iv, x);
            },
        );
    });
    // vpv: a[i] += b[i]
    k("vpv", false, |m| {
        kernel_loop(m, "vpv", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // vpvpv: a[i] += b[i] + c[i]
    k("vpvpv", false, |m| {
        kernel_loop(m, "vpvpv", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let s = b.fadd(y, z);
            let t = b.fadd(x, s);
            std_(b, ar.a, iv, t);
        });
    });
    // vpvts: a[i] += b[i] * scalar
    k("vpvts", false, |m| {
        kernel_loop(m, "vpvts", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = fc(b, 1.75);
            let p = b.fmul(y, s);
            let t = b.fadd(x, p);
            std_(b, ar.a, iv, t);
        });
    });
    // vpvtv: a[i] += b[i] * c[i]
    k("vpvtv", false, |m| {
        kernel_loop(m, "vpvtv", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let t = b.fadd(x, p);
            std_(b, ar.a, iv, t);
        });
    });
    // vsumr: sum reduction
    k("vsumr", false, |m| {
        kernel_reduce(m, "vsumr", LEN, 0.0, |b, ar, iv, acc| {
            let x = ldd(b, ar.a, iv);
            b.fadd(acc, x)
        });
    });
    // vtv: a[i] *= b[i]
    k("vtv", false, |m| {
        kernel_loop(m, "vtv", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            std_(b, ar.a, iv, p);
        });
    });
    // vtvtv: a[i] = a[i] * b[i] * c[i]
    k("vtvtv", false, |m| {
        kernel_loop(m, "vtvtv", LEN, |b, ar, iv| {
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(x, y);
            let q = b.fmul(p, z);
            std_(b, ar.a, iv, q);
        });
    });
    // s2244: node splitting with cross-iteration pair
    k("s2244", false, |m| {
        kernel_loop(m, "s2244", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, i1, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, z);
            std_(b, ar.a, iv, p);
        });
    });
}
