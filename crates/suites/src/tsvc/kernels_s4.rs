//! TSVC kernels: the `s4xx` family (indirect addressing, statement
//! functions, vector semantics, searching).

use rolag_ir::{FloatPredicate, Module};

use super::helpers::{kernel_loop, kernel_loop_cond, kernel_reduce, ld, ldd, ofs, std_, LEN};
use super::KernelSpec;

fn fc(b: &mut rolag_ir::Builder<'_>, v: f64) -> rolag_ir::ValueId {
    let d = b.types.double();
    b.fconst(d, v)
}

fn ldip(
    b: &mut rolag_ir::Builder<'_>,
    ar: &super::helpers::Arrays,
    iv: rolag_ir::ValueId,
) -> rolag_ir::ValueId {
    let i64t = b.types.i64();
    ld(b, ar.ip, i64t, iv)
}

/// Registers the family.
pub fn register(v: &mut Vec<KernelSpec>) {
    let mut k = |name: &'static str, multi_block: bool, build: fn(&mut Module)| {
        v.push(KernelSpec {
            name,
            multi_block,
            build,
        });
    };

    // s4112: indirect gather: a[i] += b[ip[i]] * s
    k("s4112", false, |m| {
        kernel_loop(m, "s4112", LEN, |b, ar, iv| {
            let j = ldip(b, ar, iv);
            let x = ldd(b, ar.b, j);
            let s = fc(b, 1.5);
            let p = b.fmul(x, s);
            let y = ldd(b, ar.a, iv);
            let t = b.fadd(y, p);
            std_(b, ar.a, iv, t);
        });
    });
    // s4113: indirect scatter: a[ip[i]] = b[ip[i]] + c[i]
    k("s4113", false, |m| {
        kernel_loop(m, "s4113", LEN, |b, ar, iv| {
            let j = ldip(b, ar, iv);
            let x = ldd(b, ar.b, j);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, j, s);
        });
    });
    // s4114: mixed direct/indirect
    k("s4114", false, |m| {
        kernel_loop(m, "s4114", LEN, |b, ar, iv| {
            let j = ldip(b, ar, iv);
            let x = ldd(b, ar.b, j);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s4115: indirect dot product
    k("s4115", false, |m| {
        kernel_reduce(m, "s4115", LEN, 0.0, |b, ar, iv, acc| {
            let j = ldip(b, ar, iv);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, j);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // s4116: indirect with stride in the index array
    k("s4116", false, |m| {
        kernel_reduce(m, "s4116", LEN / 2, 0.0, |b, ar, iv, acc| {
            let two = b.i64_const(2);
            let si = b.mul(iv, two);
            let j = ldip(b, ar, si);
            let x = ldd(b, ar.a, j);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(x, y);
            b.fadd(acc, p)
        });
    });
    // s4117: strength-reduced index expressions (produces bitwise-or
    // patterns after strength reduction in the paper's discussion).
    k("s4117", false, |m| {
        kernel_loop(m, "s4117", LEN - 8, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let i1 = ofs(b, iv, 1);
            let y = ldd(b, ar.c, i1);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s4121: statement function (inlined arithmetic helper)
    k("s4121", false, |m| {
        kernel_loop(m, "s4121", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let p = b.fmul(x, y);
            let z = ldd(b, ar.a, iv);
            let s = b.fadd(z, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s421: storage association via shifted alias
    k("s421", false, |m| {
        kernel_loop(m, "s421", LEN - 8, |b, ar, iv| {
            let i1 = ofs(b, iv, 1);
            let x = ldd(b, ar.a, i1);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s422: association with an offset window
    k("s422", false, |m| {
        kernel_loop(m, "s422", LEN - 8, |b, ar, iv| {
            let i4 = ofs(b, iv, 4);
            let x = ldd(b, ar.a, i4);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s423: overlapping windows, forward
    k("s423", false, |m| {
        kernel_loop(m, "s423", LEN - 8, |b, ar, iv| {
            let i3 = ofs(b, iv, 3);
            let x = ldd(b, ar.a, iv);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, i3, s);
        });
    });
    // s424: overlapping windows, backward
    k("s424", false, |m| {
        kernel_loop(m, "s424", LEN - 8, |b, ar, iv| {
            let i3 = ofs(b, iv, 3);
            let x = ldd(b, ar.a, i3);
            let y = ldd(b, ar.b, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
        });
    });
    // s431: loop with a redundant recomputed scalar
    k("s431", false, |m| {
        kernel_loop(m, "s431", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let c = fc(b, 3.0);
            let s = b.fadd(x, c);
            std_(b, ar.a, iv, s);
        });
    });
    // s441: three-way if-arithmetic (multi-block).
    k("s441", true, |m| {
        kernel_loop_cond(
            m,
            "s441",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.d, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Olt, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                let z = ldd(b, ar.a, iv);
                let s = b.fadd(z, p);
                std_(b, ar.a, iv, s);
            },
        );
    });
    // s442: computed-goto-style dispatch (multi-block).
    k("s442", true, |m| {
        kernel_loop_cond(
            m,
            "s442",
            LEN,
            |b, ar, iv| {
                let x = ld(b, ar.ia, b.types.i32(), iv);
                let t = b.i32_const(50);
                b.icmp(rolag_ir::IntPredicate::Slt, x, t)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let p = b.fmul(x, y);
                std_(b, ar.a, iv, p);
            },
        );
    });
    // s443: two-arm arithmetic if (multi-block).
    k("s443", true, |m| {
        kernel_loop_cond(
            m,
            "s443",
            LEN,
            |b, ar, iv| {
                let x = ldd(b, ar.d, iv);
                let zero = fc(b, 0.0);
                b.fcmp(FloatPredicate::Ole, x, zero)
            },
            |b, ar, iv| {
                let x = ldd(b, ar.b, iv);
                let y = ldd(b, ar.c, iv);
                let s = b.fadd(x, y);
                let z = ldd(b, ar.a, iv);
                let t = b.fadd(z, s);
                std_(b, ar.a, iv, t);
            },
        );
    });
    // s451: interleaved stores of two expressions
    k("s451", false, |m| {
        kernel_loop(m, "s451", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, z);
            std_(b, ar.e, iv, p);
        });
    });
    // s452: induction in the data: a[i] = b[i] + c * (i+1)
    k("s452", false, |m| {
        kernel_loop(m, "s452", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let d = b.types.double();
            let i1 = ofs(b, iv, 1);
            let fi = b.cast(rolag_ir::Opcode::SiToFp, i1, d);
            let c = fc(b, 0.01);
            let p = b.fmul(fi, c);
            let s = b.fadd(x, p);
            std_(b, ar.a, iv, s);
        });
    });
    // s453: scaled induction: s += 2; a[i] = s * b[i]
    k("s453", false, |m| {
        kernel_loop(m, "s453", LEN, |b, ar, iv| {
            let d = b.types.double();
            let fi = b.cast(rolag_ir::Opcode::SiToFp, iv, d);
            let two = fc(b, 2.0);
            let s = b.fmul(fi, two);
            let x = ldd(b, ar.b, iv);
            let p = b.fmul(s, x);
            std_(b, ar.a, iv, p);
        });
    });
    // s471: call in the loop (side-effecting statement call)
    k("s471", false, |m| {
        // Declare the callee once.
        if m.func_by_name("s471s").is_none() {
            let void = m.types.void();
            m.declare_func("s471s", vec![], void, rolag_ir::Effects::ReadNone);
        }
        kernel_loop(m, "s471", LEN, |b, ar, iv| {
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let s = b.fadd(x, y);
            std_(b, ar.a, iv, s);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(x, z);
            std_(b, ar.e, iv, p);
        });
    });
    // s481: non-local goto-like early exit guard (multi-block in source;
    // folded here to a select to keep a single block, matching -Os
    // if-conversion).
    k("s481", false, |m| {
        kernel_loop(m, "s481", LEN, |b, ar, iv| {
            let x = ldd(b, ar.d, iv);
            let zero = fc(b, 0.0);
            let c = b.fcmp(FloatPredicate::Oge, x, zero);
            let y = ldd(b, ar.b, iv);
            let z = ldd(b, ar.c, iv);
            let p = b.fmul(y, z);
            let w = ldd(b, ar.a, iv);
            let s = b.fadd(w, p);
            let sel = b.select(c, s, w);
            std_(b, ar.a, iv, sel);
        });
    });
    // s482: early-exit on threshold folded to select
    k("s482", false, |m| {
        kernel_loop(m, "s482", LEN, |b, ar, iv| {
            let x = ldd(b, ar.c, iv);
            let t = fc(b, 0.9);
            let c = b.fcmp(FloatPredicate::Olt, x, t);
            let y = ldd(b, ar.b, iv);
            let p = b.fmul(y, x);
            let w = ldd(b, ar.a, iv);
            let s = b.fadd(w, p);
            let sel = b.select(c, s, w);
            std_(b, ar.a, iv, sel);
        });
    });
    // s491: indirect scatter with computed values
    k("s491", false, |m| {
        kernel_loop(m, "s491", LEN, |b, ar, iv| {
            let j = ldip(b, ar, iv);
            let x = ldd(b, ar.b, iv);
            let y = ldd(b, ar.c, iv);
            let z = ldd(b, ar.d, iv);
            let p = b.fmul(y, z);
            let s = b.fadd(x, p);
            std_(b, ar.a, j, s);
        });
    });
}
