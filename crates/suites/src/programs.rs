//! Synthetic whole programs standing in for MiBench and SPEC CPU 2017
//! (Table I of the paper).
//!
//! Table I only needs, per program: the binary size, the size reduction
//! RoLAG achieves, and the number of rolled loops. Each synthetic program
//! is a population of *filler* functions (realistic straight-line and loop
//! code with no rollable repetition) sized to the paper's binary size,
//! plus a number of *rollable* functions matching the paper's rolled-loop
//! count. Programs with near-zero or negative paper reductions get
//! marginal/irregular patterns whose estimated profit is small enough for
//! cost-model error to flip the sign, as the paper observes (§V-A).

use rolag_analysis::cost::{function_size_estimate, X86SizeModel};
use rolag_ir::{Builder, Function, Module};
use rolag_prng::ChaCha8Rng;
use rolag_prng::{Rng, SeedableRng};

use crate::angha::{build_pattern, PatternKind};

/// One Table I row's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProgramSpec {
    /// Benchmark suite ("MiBench" or "SPEC'17").
    pub suite: &'static str,
    /// Program name as printed in Table I.
    pub name: &'static str,
    /// Binary size in KB reported by the paper.
    pub size_kb: f64,
    /// Rolled-loop count reported by the paper.
    pub rolled_loops: usize,
    /// Fraction of rollable functions drawn from *marginal* patterns
    /// (irregular constants, tiny groups) rather than clear wins.
    pub marginal: f64,
}

/// The 21 programs of Table I.
pub const TABLE1: &[ProgramSpec] = &[
    ProgramSpec {
        suite: "MiBench",
        name: "typeset",
        size_kb: 534.4,
        rolled_loops: 8,
        marginal: 1.0,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "sha",
        size_kb: 3.3,
        rolled_loops: 3,
        marginal: 1.0,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "pgp",
        size_kb: 179.2,
        rolled_loops: 5,
        marginal: 0.8,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "gsm",
        size_kb: 48.6,
        rolled_loops: 1,
        marginal: 0.5,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "jpeg_d",
        size_kb: 116.7,
        rolled_loops: 12,
        marginal: 0.6,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "jpeg_c",
        size_kb: 121.1,
        rolled_loops: 12,
        marginal: 0.5,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "ghostscript",
        size_kb: 908.8,
        rolled_loops: 68,
        marginal: 0.7,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "tiff2bw",
        size_kb: 240.1,
        rolled_loops: 25,
        marginal: 0.1,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "tiff2dither",
        size_kb: 239.5,
        rolled_loops: 24,
        marginal: 0.1,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "tiff2median",
        size_kb: 239.6,
        rolled_loops: 25,
        marginal: 0.1,
    },
    ProgramSpec {
        suite: "MiBench",
        name: "tiff2rgba",
        size_kb: 243.8,
        rolled_loops: 27,
        marginal: 0.1,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "657.xz_s",
        size_kb: 158.2,
        rolled_loops: 8,
        marginal: 1.0,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "620.omnetpp_s",
        size_kb: 1512.2,
        rolled_loops: 20,
        marginal: 0.9,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "605.mcf_s",
        size_kb: 17.8,
        rolled_loops: 1,
        marginal: 1.0,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "644.nab_s",
        size_kb: 149.9,
        rolled_loops: 15,
        marginal: 0.9,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "631.deepsjeng_s",
        size_kb: 68.8,
        rolled_loops: 7,
        marginal: 0.5,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "619.lbm_s",
        size_kb: 15.4,
        rolled_loops: 3,
        marginal: 0.2,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "625.x264_s",
        size_kb: 392.2,
        rolled_loops: 86,
        marginal: 0.6,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "638.imagick_s",
        size_kb: 1574.9,
        rolled_loops: 73,
        marginal: 0.6,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "511.povray_r",
        size_kb: 790.8,
        rolled_loops: 480,
        marginal: 0.15,
    },
    ProgramSpec {
        suite: "SPEC'17",
        name: "526.blender_r",
        size_kb: 8508.5,
        rolled_loops: 2580,
        marginal: 0.3,
    },
];

/// Builds one synthetic program at the given scale (1.0 = the paper's full
/// binary size; smaller scales shrink filler and roll counts
/// proportionally, floor 1).
pub fn build_program(spec: &ProgramSpec, seed: u64, scale: f64) -> Module {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ hash_name(spec.name));
    let mut m = Module::new(spec.name);

    let target_bytes = (spec.size_kb * 1024.0 * scale) as u64;
    let rollables = ((spec.rolled_loops as f64 * scale).round() as usize).max(1);

    // Rollable functions first (they are part of the size budget too).
    let mut total: u64 = 0;
    for i in 0..rollables {
        let kind = if rng.gen_bool(spec.marginal) {
            // Marginal: irregular constants or very short store runs.
            PatternKind::IrregularConstants
        } else {
            // Field copies save hundreds of bytes per roll; real programs'
            // per-roll savings are modest (~35-45 B in Table I), so they
            // are rare here.
            match rng.gen_range(0..8) {
                0..=2 => PatternKind::StoreSequence,
                3..=5 => PatternKind::CallSequence,
                6 => PatternKind::ReductionTree,
                _ => PatternKind::FieldCopy,
            }
        };
        let name = build_pattern(&mut m, &mut rng, kind, i);
        let f = m.func(m.func_by_name(&name).expect("just added"));
        total += function_size_estimate(&X86SizeModel, &m, f) as u64;
    }

    // Filler until the size target is reached.
    let mut k = 0usize;
    while total < target_bytes {
        let name = format!("fill{k:06}");
        build_filler(&mut m, &mut rng, &name);
        let f = m.func(m.func_by_name(&name).expect("just added"));
        total += function_size_estimate(&X86SizeModel, &m, f) as u64;
        k += 1;
    }
    m
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A filler function: straight-line arithmetic, the occasional small loop,
/// and scattered memory traffic — but no rollable repetition.
fn build_filler(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let ptr = m.types.ptr();
    let with_loop = rng.gen_bool(0.3);
    let n_ops = rng.gen_range(10..60);
    let mut f = Function::new(name, vec![i32t, i32t, ptr], i32t);
    let x = f.param(0);
    let y = f.param(1);
    let p = f.param(2);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        let entry = b.block("entry");
        let mut acc = x;
        let mut aux = y;
        for k in 0..n_ops {
            let c = b.iconst(i32t, rng.gen_range(1..5000));
            match rng.gen_range(0..8) {
                0 => acc = b.add(acc, c),
                1 => acc = b.sub(acc, aux),
                2 => acc = b.mul(acc, c),
                3 => acc = b.xor(acc, aux),
                4 => aux = b.add(aux, acc),
                5 => {
                    let sh = b.iconst(i32t, rng.gen_range(1..8));
                    acc = b.shl(acc, sh);
                }
                6 => {
                    // An isolated store (different offsets each time, so no
                    // rollable group forms).
                    let off = b.i64_const(rng.gen_range(0i64..16) * 4 + k);
                    let i8t = b.types.i8();
                    let slot = b.gep(i8t, p, &[off]);
                    b.store(acc, slot);
                }
                _ => {
                    let off = b.i64_const(rng.gen_range(0..8));
                    let slot = b.gep(i32t, p, &[off]);
                    let v = b.load(i32t, slot);
                    acc = b.add(acc, v);
                }
            }
        }
        if with_loop {
            let loop_bb = b.func.add_block("loop");
            let exit_bb = b.func.add_block("exit");
            let trips = b.iconst(i64t, rng.gen_range(4i64..32) * 8);
            b.br(loop_bb);
            b.switch_to(loop_bb);
            let zero = b.iconst(i64t, 0);
            let iv = b.phi(i64t, &[(zero, entry), (zero, loop_bb)]);
            let accp = b.phi(i32t, &[(acc, entry), (acc, loop_bb)]);
            let ivt = b.trunc(iv, i32t);
            let step = b.add(accp, ivt);
            let one = b.iconst(i64t, 1);
            let ivn = b.add(iv, one);
            crate::tsvc::patch_loop_phi(b.func, iv, loop_bb, ivn);
            crate::tsvc::patch_loop_phi(b.func, accp, loop_bb, step);
            let cmp = b.icmp(rolag_ir::IntPredicate::Slt, ivn, trips);
            b.cond_br(cmp, loop_bb, exit_bb);
            b.switch_to(exit_bb);
            b.ret(Some(step));
        } else {
            b.ret(Some(acc));
        }
    }
    m.add_func(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::verify::verify_module;

    #[test]
    fn table1_has_21_programs() {
        assert_eq!(TABLE1.len(), 21);
        assert!(TABLE1.iter().any(|p| p.name == "526.blender_r"));
    }

    #[test]
    fn small_program_builds_to_target_size() {
        let spec = ProgramSpec {
            suite: "test",
            name: "mini",
            size_kb: 8.0,
            rolled_loops: 3,
            marginal: 0.0,
        };
        let m = build_program(&spec, 1, 1.0);
        verify_module(&m).expect("verifies");
        let est = rolag_analysis::cost::module_text_estimate(&X86SizeModel, &m);
        assert!(est >= 8 * 1024, "reached the size target");
        assert!(est < 12 * 1024, "did not wildly overshoot");
    }

    #[test]
    fn scaled_build_shrinks() {
        let spec = &TABLE1[3]; // gsm, 48.6 KB
        let m = build_program(spec, 1, 0.1);
        let est = rolag_analysis::cost::module_text_estimate(&X86SizeModel, &m);
        assert!(est < 10 * 1024);
    }

    #[test]
    fn build_is_deterministic() {
        let spec = ProgramSpec {
            suite: "test",
            name: "det",
            size_kb: 4.0,
            rolled_loops: 2,
            marginal: 0.5,
        };
        let a = rolag_ir::printer::print_module(&build_program(&spec, 9, 1.0));
        let b = rolag_ir::printer::print_module(&build_program(&spec, 9, 1.0));
        assert_eq!(a, b);
    }
}
