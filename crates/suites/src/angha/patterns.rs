//! Code-pattern templates observed in real-world repositories.
//!
//! These reproduce the shapes §V-A of the paper reports finding in
//! AnghaBench: sequences of similar calls (the aegis128 pattern, Fig. 3),
//! store runs, struct-field copy blocks (the KVM highlight), chained calls
//! (the HDMI pattern, Fig. 4), reduction trees, alternating groups, plus
//! near-miss variants that defeat the scheduler or the profitability
//! analysis.

use rolag_ir::{
    Builder, Effects, FuncId, Function, GlobalData, GlobalInit, Module, TypeId, ValueId,
};
use rolag_prng::Rng;

/// The pattern families the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// n calls to the same callee with regular operands (Fig. 3).
    CallSequence,
    /// n stores with sequence/constant values.
    StoreSequence,
    /// Struct-to-struct field copies (the KVM 72-copy function).
    FieldCopy,
    /// Chained calls threading a value (Fig. 4).
    ChainedCalls,
    /// A reduction tree (Fig. 11).
    ReductionTree,
    /// Alternating store/call groups (Fig. 12).
    JointGroups,
    /// A store run broken by a may-alias store (defeats scheduling).
    InterleavedConflict,
    /// A store run with irregular constants (stresses mismatch arrays and
    /// the profitability margin).
    IrregularConstants,
    /// Straight-line code with no repetition (unaffected filler).
    ColdStraightLine,
    /// A store run living in the taken arm of a branch: exercises rolling
    /// inside non-entry blocks of multi-block functions.
    GuardedStores,
    /// A counted loop partially unrolled by hand (factor 2 or 4) — the rare
    /// real-world shape LLVM's rerolling *can* handle (the paper observes
    /// fewer than 50 such functions in all of AnghaBench).
    UnrolledLoop,
}

impl PatternKind {
    /// All families.
    pub fn all() -> [PatternKind; 11] {
        [
            PatternKind::CallSequence,
            PatternKind::StoreSequence,
            PatternKind::FieldCopy,
            PatternKind::ChainedCalls,
            PatternKind::ReductionTree,
            PatternKind::JointGroups,
            PatternKind::InterleavedConflict,
            PatternKind::IrregularConstants,
            PatternKind::ColdStraightLine,
            PatternKind::GuardedStores,
            PatternKind::UnrolledLoop,
        ]
    }

    /// Short label used in generated function names.
    pub fn label(self) -> &'static str {
        match self {
            PatternKind::CallSequence => "calls",
            PatternKind::StoreSequence => "stores",
            PatternKind::FieldCopy => "copy",
            PatternKind::ChainedCalls => "chain",
            PatternKind::ReductionTree => "reduce",
            PatternKind::JointGroups => "joint",
            PatternKind::InterleavedConflict => "conflict",
            PatternKind::IrregularConstants => "irregular",
            PatternKind::ColdStraightLine => "cold",
            PatternKind::GuardedStores => "guarded",
            PatternKind::UnrolledLoop => "unrolled",
        }
    }
}

/// Shared external declarations used by generated functions.
pub struct Externals {
    /// `void sink(ptr, i64)` — a store-like external.
    pub sink: FuncId,
    /// `i32 mix(i32, i32, i32)` — a pure combiner.
    pub mix: FuncId,
    /// `void touch()` — clobbers memory.
    pub touch: FuncId,
}

/// Declares (or finds) the shared externals.
pub fn ensure_externals(m: &mut Module) -> Externals {
    let ptr = m.types.ptr();
    let i64t = m.types.i64();
    let i32t = m.types.i32();
    let void = m.types.void();
    let get = |m: &mut Module, name: &str, params: Vec<TypeId>, ret: TypeId, eff: Effects| {
        m.func_by_name(name)
            .unwrap_or_else(|| m.declare_func(name.to_string(), params, ret, eff))
    };
    Externals {
        sink: get(m, "ext_sink", vec![ptr, i64t], void, Effects::ReadWrite),
        mix: get(
            m,
            "ext_mix",
            vec![i32t, i32t, i32t],
            i32t,
            Effects::ReadNone,
        ),
        touch: get(m, "ext_touch", vec![], void, Effects::ReadWrite),
    }
}

/// Emits `ops` instructions of cold (non-repetitive) code reading and
/// writing a scratch global. Real-world functions are mostly code like
/// this around their rollable pattern; it dilutes the per-function
/// reduction to the levels the paper reports (mean 9.12%, Fig. 15).
fn emit_cold(b: &mut Builder<'_>, rng: &mut impl Rng, scratch: rolag_ir::GlobalId, ops: usize) {
    if ops == 0 {
        return;
    }
    let i32t = b.types.i32();
    let i64t = b.types.i64();
    let gs = b.global(scratch);
    let idx0 = b.iconst(i64t, 0);
    let p0 = b.gep(i32t, gs, &[idx0]);
    let mut acc = b.load(i32t, p0);
    for k in 0..ops {
        let c = b.iconst(i32t, rng.gen_range(1..10000));
        acc = match rng.gen_range(0..6) {
            0 => b.add(acc, c),
            1 => b.sub(acc, c),
            2 => b.mul(acc, c),
            3 => b.xor(acc, c),
            4 => {
                let sh = b.iconst(i32t, rng.gen_range(1..8));
                b.shl(acc, sh)
            }
            _ => {
                let off = b.iconst(i64t, rng.gen_range(1..15));
                let q = b.gep(i32t, gs, &[off]);
                let v = b.load(i32t, q);
                b.add(acc, v)
            }
        };
        let _ = k;
    }
    let out = b.iconst(i64t, 15);
    let q = b.gep(i32t, gs, &[out]);
    b.store(acc, q);
}

/// Draws the amount of cold padding around a pattern: a skewed mix from
/// nearly-pure pattern functions (the KVM-style 90% reductions) to heavily
/// diluted ones (the long tail of small reductions).
fn dilution(rng: &mut impl Rng) -> (usize, usize) {
    let roll = rng.gen_range(0..100);
    let total = if roll < 5 {
        0
    } else if roll < 25 {
        rng.gen_range(8..40)
    } else {
        rng.gen_range(40..800)
    };
    let before = total / 2;
    (before, total - before)
}

fn fresh_array(
    m: &mut Module,
    prefix: &str,
    elem: TypeId,
    len: u64,
    init_stride: Option<i64>,
) -> rolag_ir::GlobalId {
    let name = m.fresh_global_name(prefix);
    let arr = m.types.array(elem, len);
    match init_stride {
        None => m.add_zero_global(name, arr),
        Some(s) => m.add_global(GlobalData {
            name,
            ty: arr,
            init: GlobalInit::Ints {
                elem_ty: elem,
                values: (0..len as i64).map(|i| i * s + 1).collect(),
            },
            is_const: false,
        }),
    }
}

/// Builds one function of the given pattern. Returns its name.
pub fn build_pattern(
    m: &mut Module,
    rng: &mut impl Rng,
    kind: PatternKind,
    index: usize,
) -> String {
    let name = format!("f{index:05}_{}", kind.label());
    let ext = ensure_externals(m);
    match kind {
        PatternKind::CallSequence => call_sequence(m, rng, &name, ext),
        PatternKind::StoreSequence => store_sequence(m, rng, &name, false, false),
        PatternKind::FieldCopy => field_copy(m, rng, &name),
        PatternKind::ChainedCalls => chained_calls(m, rng, &name, ext),
        PatternKind::ReductionTree => reduction_tree(m, rng, &name),
        PatternKind::JointGroups => joint_groups(m, rng, &name, ext),
        PatternKind::InterleavedConflict => store_sequence(m, rng, &name, true, false),
        PatternKind::IrregularConstants => store_sequence(m, rng, &name, false, true),
        PatternKind::ColdStraightLine => cold_straight_line(m, rng, &name),
        PatternKind::GuardedStores => guarded_stores(m, rng, &name),
        PatternKind::UnrolledLoop => unrolled_loop(m, rng, &name),
    }
    name
}

/// A simple array-initialization loop, partially unrolled by a factor of 2
/// or 4 — the hand-unrolled code the classic rerolling pass was built for.
fn unrolled_loop(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let factor = if rng.gen_bool(0.5) { 2u32 } else { 4 };
    let trips = rng.gen_range(2i64..=8) * 8;
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let void = m.types.void();
    let dst = fresh_array(m, "g.ul", i32t, trips as u64, None);
    let mul_k = rng.gen_range(1..8);
    let mut f = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        let entry = b.block("entry");
        let loop_bb = b.func.add_block("loop");
        let exit_bb = b.func.add_block("exit");
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let zero = b.iconst(i64t, 0);
        let iv = b.phi(i64t, &[(zero, entry), (zero, loop_bb)]);
        let gd = b.global(dst);
        let slot = b.gep(i32t, gd, &[iv]);
        let t = b.trunc(iv, i32t);
        let k = b.iconst(i32t, mul_k);
        let v = b.mul(t, k);
        b.store(v, slot);
        let one = b.iconst(i64t, 1);
        let ivn = b.add(iv, one);
        // Patch the phi's back edge.
        let phi_inst = b.func.value(iv).as_inst().expect("phi");
        if let rolag_ir::InstExtra::Phi { incoming } = &b.func.inst(phi_inst).extra.clone() {
            let arm = incoming.iter().position(|&x| x == loop_bb).expect("arm");
            b.func.inst_mut(phi_inst).operands[arm] = ivn;
        }
        let bound = b.iconst(i64t, trips);
        let c = b.icmp(rolag_ir::IntPredicate::Slt, ivn, bound);
        b.cond_br(c, loop_bb, exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
    }
    let snapshot = m.clone();
    rolag_transforms::unroll::unroll_loops_in_function(&mut m.types, &snapshot, &mut f, factor);
    // The unroller leaves dead per-copy step clones behind; sweep them like
    // the surrounding pipeline would.
    loop {
        let mut changed = rolag_ir::fold::simplify_function(&mut f, &mut m.types);
        changed += rolag_ir::dce::run_dce_with(&mut f, &m.types, &|_| rolag_ir::Effects::ReadWrite);
        if changed == 0 {
            break;
        }
    }
    m.add_func(f);
}

/// `if (x > 0) { a[0..n] = seq; }` — the rollable run sits in a non-entry
/// block behind a branch.
fn guarded_stores(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let n = rng.gen_range(6..=12);
    let i32t = m.types.i32();
    let void = m.types.void();
    let dst = fresh_array(m, "g.guard", i32t, n as u64, None);
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![i32t], void);
    let x = f.param(0);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        let entry = b.block("entry");
        let then_bb = b.func.add_block("then");
        let exit_bb = b.func.add_block("exit");
        b.switch_to(entry);
        emit_cold(&mut b, rng, scratch, pad_pre);
        let zero = b.iconst(i32t, 0);
        let c = b.icmp(rolag_ir::IntPredicate::Sgt, x, zero);
        b.cond_br(c, then_bb, exit_bb);
        b.switch_to(then_bb);
        let gd = b.global(dst);
        for k in 0..n {
            let idx = b.i64_const(k);
            let slot = b.gep(i32t, gd, &[idx]);
            let v = b.iconst(i32t, k * 9 + 2);
            b.store(v, slot);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.br(exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
        let _ = entry;
    }
    m.add_func(f);
}

fn call_sequence(m: &mut Module, rng: &mut impl Rng, name: &str, ext: Externals) {
    let n = rng.gen_range(3..=12);
    let stride = [4i64, 8, 16][rng.gen_range(0usize..3)];
    let ptr = m.types.ptr();
    let void = m.types.void();
    let i64t = m.types.i64();
    let i32t = m.types.i32();
    let src = fresh_array(m, "g.src", i64t, 16, Some(7));
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![ptr], void);
    let p = f.param(0);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let i8t = b.types.i8();
        for k in 0..n {
            let dst = if k == 0 {
                p
            } else {
                let off = b.i64_const(k * stride);
                b.gep(i8t, p, &[off])
            };
            let idx = b.iconst(i64t, k % 16);
            let gsrc = b.global(src);
            let sp = b.gep(i64t, gsrc, &[idx]);
            let v = b.load(i64t, sp);
            b.call(ext.sink, void, &[dst, v]);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(None);
    }
    m.add_func(f);
}

fn store_sequence(
    m: &mut Module,
    rng: &mut impl Rng,
    name: &str,
    inject_conflict: bool,
    irregular: bool,
) {
    // Irregular runs sit in the profitability margin: lane counts 10..18
    // commit under the TTI estimate but measure slightly *negative* — the
    // paper's false positives (§V-A).
    let n = if irregular {
        rng.gen_range(10..=17)
    } else {
        rng.gen_range(3..=16)
    };
    let computed = irregular && rng.gen_bool(0.25);
    // Sometimes the stored values are `x + k*c` with one bare `x` lane —
    // the neutral-element binop case of §IV-C3.
    let neutral = !irregular && rng.gen_bool(0.35);
    let i32t = m.types.i32();
    let void = m.types.void();
    let ptr = m.types.ptr();
    let dst = fresh_array(m, "g.dst", i32t, n as u64 + 1, None);
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    // Irregular functions stay small, like the paper's worst cases: a bad
    // roll on a tiny function is a large *percentage* regression.
    let (pad_pre, pad_post) = if irregular {
        (0, rng.gen_range(0..6))
    } else {
        dilution(rng)
    };
    let mut f = Function::new(name, vec![ptr], void);
    let p = f.param(0);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let seed_v = {
            let pi = b.cast(rolag_ir::Opcode::PtrToInt, p, b.types.i64());
            b.trunc(pi, b.types.i32())
        };
        let gdst = b.global(dst);
        let conflict_at = n / 2;
        for k in 0..n {
            if inject_conflict && k == conflict_at {
                // May-alias store through the parameter pointer.
                let v = b.iconst(i32t, 999);
                b.store(v, p);
            }
            let idx = b.i64_const(k);
            let slot = b.gep(i32t, gdst, &[idx]);
            let value = if neutral {
                if k == n / 2 {
                    seed_v
                } else {
                    let c = b.iconst(i32t, k * 5);
                    b.add(seed_v, c)
                }
            } else if irregular {
                if computed {
                    // Distinct computed values: the mismatch array must be
                    // a stack array filled in the preheader — the costly
                    // case the cost model underprices (§V-A).
                    let c = b.iconst(i32t, rng.gen_range(-1000..1000));
                    let x = b.xor(seed_v, c);
                    let sh = b.iconst(i32t, k % 7 + 1);
                    b.shl(x, sh)
                } else {
                    // imm8-sized constants keep the original stores cheap,
                    // putting the roll in the loss-making margin.
                    b.iconst(i32t, rng.gen_range(-120..120))
                }
            } else {
                b.iconst(i32t, k * 3 + 1)
            };
            b.store(value, slot);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(None);
    }
    m.add_func(f);
}

fn field_copy(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let n = rng.gen_range(8..=72);
    let i64t = m.types.i64();
    let void = m.types.void();
    let src = fresh_array(m, "g.copysrc", i64t, n as u64, Some(13));
    let dst = fresh_array(m, "g.copydst", i64t, n as u64, None);
    let i32t = m.types.i32();
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let gs = b.global(src);
        let gd = b.global(dst);
        for k in 0..n {
            let idx = b.i64_const(k);
            let sp = b.gep(i64t, gs, &[idx]);
            let v = b.load(i64t, sp);
            let dp = b.gep(i64t, gd, &[idx]);
            b.store(v, dp);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(None);
    }
    m.add_func(f);
}

fn chained_calls(m: &mut Module, rng: &mut impl Rng, name: &str, ext: Externals) {
    let n = rng.gen_range(4..=8);
    let i32t = m.types.i32();
    let src = fresh_array(m, "g.fields", i32t, n as u64, Some(3));
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![i32t], i32t);
    let r0 = f.param(0);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let gs = b.global(src);
        let mut r = r0;
        for k in (0..n).rev() {
            let idx = b.i64_const(k);
            let sp = b.gep(i32t, gs, &[idx]);
            let v = b.load(i32t, sp);
            let kk = b.iconst(i32t, k);
            r = b.call(ext.mix, i32t, &[r, v, kk]);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(Some(r));
    }
    m.add_func(f);
}

fn reduction_tree(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let n = rng.gen_range(4..=16);
    let i32t = m.types.i32();
    let a = fresh_array(m, "g.ra", i32t, n as u64, Some(5));
    let bg = fresh_array(m, "g.rb", i32t, n as u64, Some(9));
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![], i32t);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let ga = b.global(a);
        let gb = b.global(bg);
        let mut terms: Vec<ValueId> = Vec::new();
        for k in 0..n {
            let idx = b.i64_const(k);
            let pa = b.gep(i32t, ga, &[idx]);
            let va = b.load(i32t, pa);
            let pb = b.gep(i32t, gb, &[idx]);
            let vb = b.load(i32t, pb);
            terms.push(b.mul(va, vb));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = b.add(acc, t);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(Some(acc));
    }
    m.add_func(f);
}

fn joint_groups(m: &mut Module, rng: &mut impl Rng, name: &str, ext: Externals) {
    let n = rng.gen_range(3..=8);
    let i32t = m.types.i32();
    let void = m.types.void();
    let dst = fresh_array(m, "g.jdst", i32t, n as u64, None);
    let scratch = fresh_array(m, "g.cold", i32t, 16, Some(3));
    let (pad_pre, pad_post) = dilution(rng);
    let mut f = Function::new(name, vec![], void);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        emit_cold(&mut b, rng, scratch, pad_pre);
        let gd = b.global(dst);
        let i64t = b.types.i64();
        for k in 0..n {
            let idx = b.i64_const(k);
            let slot = b.gep(i32t, gd, &[idx]);
            let v = b.iconst(i32t, 10 * k);
            b.store(v, slot);
            let arg = b.iconst(i64t, k);
            b.call(ext.sink, void, &[gd, arg]);
        }
        emit_cold(&mut b, rng, scratch, pad_post);
        b.ret(None);
    }
    m.add_func(f);
}

fn cold_straight_line(m: &mut Module, rng: &mut impl Rng, name: &str) {
    let n = rng.gen_range(4..=20);
    let i32t = m.types.i32();
    let mut f = Function::new(name, vec![i32t, i32t], i32t);
    let x = f.param(0);
    let y = f.param(1);
    {
        let mut b = Builder::on(&mut f, &mut m.types);
        b.block("entry");
        let mut acc = x;
        for k in 0..n {
            let c = b.iconst(i32t, rng.gen_range(1..100));
            acc = match k % 4 {
                0 => b.add(acc, c),
                1 => b.xor(acc, y),
                2 => b.mul(acc, c),
                _ => b.sub(acc, y),
            };
        }
        b.ret(Some(acc));
    }
    m.add_func(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::verify::verify_module;
    use rolag_prng::ChaCha8Rng;
    use rolag_prng::SeedableRng;

    #[test]
    fn every_pattern_builds_and_verifies() {
        let mut m = Module::new("patterns");
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for (i, kind) in PatternKind::all().into_iter().enumerate() {
            build_pattern(&mut m, &mut rng, kind, i);
        }
        verify_module(&m).expect("all patterns verify");
        assert_eq!(m.num_funcs(), 11 + 3, "11 patterns + 3 externals");
    }

    #[test]
    fn patterns_are_deterministic_per_seed() {
        let build = |seed| {
            let mut m = Module::new("p");
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for (i, kind) in PatternKind::all().into_iter().enumerate() {
                build_pattern(&mut m, &mut rng, kind, i);
            }
            rolag_ir::printer::print_module(&m)
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
