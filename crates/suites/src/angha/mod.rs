//! AnghaBench-like function corpus (§V-A).
//!
//! The real AnghaBench is one million compilable C functions extracted from
//! popular GitHub repositories; the paper's Fig. 15/16 only concern the
//! ~3500 functions *affected* by a rolling technique. This generator
//! reproduces that affected population from the pattern families the paper
//! describes, seeded and deterministic.

mod patterns;

pub use patterns::{build_pattern, ensure_externals, Externals, PatternKind};

use rolag_ir::Module;
use rolag_prng::ChaCha8Rng;
use rolag_prng::{Rng, SeedableRng};

/// Corpus configuration.
#[derive(Debug, Clone)]
pub struct AnghaConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of functions to generate.
    pub functions: usize,
}

impl Default for AnghaConfig {
    fn default() -> Self {
        AnghaConfig {
            seed: 0x0a17_4a90,
            functions: 3500,
        }
    }
}

/// A generated corpus: one module per function (functions are sized and
/// transformed independently, like separate translation units).
pub struct AnghaCorpus {
    /// `(function name, pattern, module)` triples.
    pub entries: Vec<(String, PatternKind, Module)>,
}

/// Pattern mix approximating the population of affected AnghaBench
/// functions: weights per family.
fn pick_kind(rng: &mut impl Rng) -> PatternKind {
    let roll = rng.gen_range(0..100);
    match roll {
        0..=21 => PatternKind::StoreSequence,
        22..=39 => PatternKind::CallSequence,
        40..=53 => PatternKind::FieldCopy,
        54..=63 => PatternKind::ChainedCalls,
        64..=75 => PatternKind::ReductionTree,
        76..=83 => PatternKind::JointGroups,
        84..=89 => PatternKind::InterleavedConflict,
        90..=93 => PatternKind::IrregularConstants,
        94..=96 => PatternKind::GuardedStores,
        97 => PatternKind::UnrolledLoop,
        _ => PatternKind::ColdStraightLine,
    }
}

/// Streaming corpus generator: yields `(name, kind, module)` one
/// function at a time without materializing the whole corpus, so
/// million-function corpora can be produced under a fixed memory
/// budget. Identical sequence to [`generate`] for the same config.
pub struct AnghaStream {
    rng: ChaCha8Rng,
    next: usize,
    total: usize,
}

impl Iterator for AnghaStream {
    type Item = (String, PatternKind, Module);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let kind = pick_kind(&mut self.rng);
        let mut m = Module::new(format!("angha.{i}"));
        let name = build_pattern(&mut m, &mut self.rng, kind, i);
        Some((name, kind, m))
    }
}

impl ExactSizeIterator for AnghaStream {
    fn len(&self) -> usize {
        self.total - self.next
    }
}

/// Streams the corpus lazily (see [`AnghaStream`]).
pub fn stream(config: &AnghaConfig) -> AnghaStream {
    AnghaStream {
        rng: ChaCha8Rng::seed_from_u64(config.seed),
        next: 0,
        total: config.functions,
    }
}

/// Generates the corpus eagerly.
pub fn generate(config: &AnghaConfig) -> AnghaCorpus {
    AnghaCorpus {
        entries: stream(config).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::verify::verify_module;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = AnghaConfig {
            seed: 1,
            functions: 20,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.entries.len(), 20);
        for ((na, ka, ma), (nb, kb, mb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(na, nb);
            assert_eq!(ka, kb);
            assert_eq!(
                rolag_ir::printer::print_module(ma),
                rolag_ir::printer::print_module(mb)
            );
        }
    }

    #[test]
    fn corpus_modules_verify() {
        let cfg = AnghaConfig {
            seed: 2,
            functions: 50,
        };
        for (name, _, m) in &generate(&cfg).entries {
            verify_module(m).unwrap_or_else(|e| panic!("{name} failed: {e:?}"));
        }
    }

    #[test]
    fn stream_matches_generate_and_is_lazy() {
        let cfg = AnghaConfig {
            seed: 7,
            functions: 30,
        };
        let eager = generate(&cfg);
        let mut s = stream(&cfg);
        assert_eq!(s.len(), 30);
        for (i, (name, kind, m)) in eager.entries.iter().enumerate() {
            let (sn, sk, sm) = s.next().unwrap();
            assert_eq!(&sn, name, "entry {i}");
            assert_eq!(&sk, kind);
            assert_eq!(
                rolag_ir::printer::print_module(&sm),
                rolag_ir::printer::print_module(m)
            );
        }
        assert!(s.next().is_none());
    }

    #[test]
    fn mix_covers_all_families() {
        let cfg = AnghaConfig {
            seed: 3,
            functions: 300,
        };
        let corpus = generate(&cfg);
        let mut seen: std::collections::HashSet<PatternKind> = std::collections::HashSet::new();
        for (_, k, _) in &corpus.entries {
            seen.insert(*k);
        }
        assert_eq!(seen.len(), PatternKind::all().len());
    }
}
