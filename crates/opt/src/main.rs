//! `rolag-opt` — a pass driver over textual IR, in the spirit of LLVM's
//! `opt`.
//!
//! ```text
//! rolag-opt [PASS...] [OPTIONS] <input.rir | ->
//! ```
//!
//! Passes come from the `rolag-passes` registry, either as legacy `-name`
//! flags (`-rolag -unroll=4 -cse ...`, applied in flag order) or as one
//! `--passes` pipeline spec (`--passes "unroll<4>,cleanup,rolag"`). The
//! two spellings desugar to the same pipeline and produce byte-identical
//! output; `--list-passes` prints the registry. The full pass table in
//! `--help` is generated from the registry, so it cannot drift from the
//! implementation.
//!
//! Options:
//!
//! ```text
//!   --passes <spec>            run a textual pipeline, e.g. "unroll<4>,cleanup,rolag"
//!   --list-passes              print the registered passes and exit
//!   --target <x86-64|thumb2>   cost-model target for profitability
//!   --measure                  print measured section sizes before/after
//!   --stats                    print pass statistics (per-stage timings,
//!                              fixpoint cache counters, driver cache
//!                              counters, and analysis-cache hit rates)
//!   --jobs <N>                 run rolag through the parallel memoizing
//!                              driver with N workers (0 = all cores)
//!   --serve <socket>           client mode: submit the module to a running
//!                              rolag-serve daemon instead of rolling
//!                              locally, and print the returned module
//!   --serve-options <preset>   options preset for --serve (default,
//!                              extended, no-special, validated, measured)
//!   --validate-rewrites        prove every rolling rewrite with the
//!                              rolag-tv translation validator before the
//!                              cost model may commit it
//!   --time-passes              print per-pass wall time
//!   --print-changed            dump the IR after every pass that changed it
//!   --verify-each              verify between passes (on by default; flag
//!                              kept for symmetry with rolag-verify)
//!   --interp <func>            interpret <func>() after the passes
//!   --check                    interpret before AND after, compare outcomes
//!   --quiet                    do not print the final module
//!   --verify-only              parse + verify, print diagnostics, exit
//!   --dump-align               print each candidate's alignment graph in
//!                              Graphviz dot syntax instead of transforming
//! ```
//!
//! Exit status: 0 on success, 1 on usage/parse/verify errors, 2 when
//! `--check` detects a behaviour change (a miscompile).

use std::io::Read;
use std::process::ExitCode;

use rolag::RolagOptions;
use rolag_analysis::cost::TargetKind;
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;
use rolag_lower::measure_module;
use rolag_passes::{
    AnalysisManager, PassContext, PassManager, PassManagerOptions, PassOutcome, PassRegistry,
};

#[derive(Debug, Default)]
struct Cli {
    /// Pipeline elements desugared from legacy `-name` flags, in order.
    legacy: Vec<String>,
    /// The `--passes` spec, verbatim.
    spec: Option<String>,
    input: Option<String>,
    target: TargetKind,
    jobs: Option<usize>,
    serve: Option<String>,
    serve_options: Option<String>,
    validate_rewrites: bool,
    measure: bool,
    stats: bool,
    time_passes: bool,
    print_changed: bool,
    list_passes: bool,
    interp: Option<String>,
    check: bool,
    quiet: bool,
    verify_only: bool,
    dump_align: bool,
}

fn usage() -> String {
    format!(
        "usage: rolag-opt [PASS...] [OPTIONS] <input.rir | ->\n\
         passes (as -name flags applied in order, or one --passes spec):\n\
         {passes}\
         options: --passes <spec> --list-passes --target <x86-64|thumb2> \
         --jobs <N> --serve <socket> --serve-options <preset> \
         --validate-rewrites --measure --stats --time-passes \
         --print-changed --verify-each --interp <func> --check --quiet \
         --verify-only\n\
         (run with a .rir file, or `-` to read IR text from stdin)",
        passes = PassRegistry::builtin().help_passes()
    )
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--passes" => {
                let spec = it.next().ok_or("--passes needs a pipeline spec")?;
                if cli.spec.replace(spec.clone()).is_some() {
                    return Err("more than one --passes spec".into());
                }
            }
            "--list-passes" => cli.list_passes = true,
            "--target" => {
                let t = it.next().ok_or("--target needs a value")?;
                cli.target = match t.as_str() {
                    "x86-64" | "x86_64" => TargetKind::X86_64,
                    "thumb2" | "thumb" => TargetKind::Thumb2,
                    other => return Err(format!("unknown target {other}")),
                };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = Some(v.parse().map_err(|_| format!("bad job count {v}"))?);
            }
            "--serve" => {
                cli.serve = Some(it.next().ok_or("--serve needs a socket path")?.clone());
            }
            "--serve-options" => {
                let preset = it.next().ok_or("--serve-options needs a preset")?;
                if rolag_serve::proto::options_preset(preset).is_none() {
                    return Err(format!("unknown options preset {preset}"));
                }
                cli.serve_options = Some(preset.clone());
            }
            "--validate-rewrites" => cli.validate_rewrites = true,
            "--measure" => cli.measure = true,
            "--stats" => cli.stats = true,
            "--time-passes" => cli.time_passes = true,
            "--print-changed" => cli.print_changed = true,
            // Verification between passes is always on (the legacy
            // behaviour); accepted so scripts can say it explicitly.
            "--verify-each" => {}
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--verify-only" => cli.verify_only = true,
            "--dump-align" => cli.dump_align = true,
            "--interp" => {
                cli.interp = Some(it.next().ok_or("--interp needs a function")?.clone());
            }
            "-h" | "--help" => return Err(usage()),
            s if s.starts_with("-unroll=") => {
                // Validated here so legacy spellings keep legacy errors.
                let raw = &s["-unroll=".len()..];
                let n: u32 = raw
                    .parse()
                    .map_err(|_| format!("bad unroll factor in {s}"))?;
                if n < 2 {
                    return Err("unroll factor must be >= 2".into());
                }
                cli.legacy.push(format!("unroll<{n}>"));
            }
            s if s.len() > 1
                && s.starts_with('-')
                && !s.starts_with("--")
                && PassRegistry::builtin().find(&s[1..]).is_some() =>
            {
                cli.legacy.push(s[1..].to_string());
            }
            s if !s.starts_with('-') || s == "-" => {
                if cli.input.replace(s.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if cli.spec.is_some() && !cli.legacy.is_empty() {
        return Err(format!(
            "cannot mix --passes with legacy pass flags (-{} ...)",
            cli.legacy[0]
        ));
    }
    if cli.serve.is_some() && (cli.spec.is_some() || !cli.legacy.is_empty()) {
        return Err("--serve submits to the daemon's rolag pipeline; \
                    it cannot be combined with local passes"
            .into());
    }
    if cli.serve_options.is_some() && cli.serve.is_none() {
        return Err("--serve-options needs --serve".into());
    }
    if cli.input.is_none() && !cli.list_passes {
        return Err(usage());
    }
    Ok(cli)
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// Client mode: submit the module text to a running `rolag-serve` daemon
/// over its unix socket and return the rolled module text plus the
/// request's stat line.
fn serve_client(socket: &str, text: &str, options: &str) -> Result<(String, String), String> {
    use std::io::{BufRead, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    let mut stream =
        UnixStream::connect(socket).map_err(|e| format!("connecting {socket}: {e}"))?;
    let request = rolag_serve::proto::Request::Roll {
        id: "rolag-opt".into(),
        module: text.to_string(),
        options: options.to_string(),
        client: Some("rolag-opt".into()),
    };
    stream
        .write_all(format!("{}\n", request.render()).as_bytes())
        .map_err(|e| format!("writing request: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("reading response: {e}"))?;
    let reply = rolag_serve::proto::parse_reply(&line)?;
    if !reply.ok {
        return Err(reply.error.unwrap_or_else(|| "request failed".into()));
    }
    let module = reply.module.ok_or("response has no module")?;
    let stats = format!(
        "serve: {} functions, {} store hits, {} misses, rolled {}, {:.2} ms \
         (cumulative hit rate {:.1}%)",
        reply.functions,
        reply.store_hits,
        reply.store_misses,
        reply.rolled,
        reply.wall_ns as f64 / 1e6,
        100.0 * reply.cumulative_hit_rate
    );
    Ok((module, stats))
}

/// Builds and prints the alignment graph of every rolling candidate in the
/// module, as Graphviz `dot`.
fn dump_alignment_graphs(module: &Module) {
    let opts = RolagOptions::with_extensions();
    for id in module.func_ids() {
        let func = module.func(id);
        if func.is_declaration {
            continue;
        }
        let candidates = rolag::collect_candidates(module, func, &opts);
        for (k, cand) in candidates.iter().enumerate() {
            let mut attempt = func.clone();
            let lanes = cand.lanes();
            let mut builder =
                rolag::GraphBuilder::new(module, &mut attempt, cand.block(), &opts, lanes);
            let built = match cand {
                rolag::Candidate::Seeds { groups, .. } => {
                    groups.iter().all(|g| builder.build_seed_root(g).is_some())
                }
                rolag::Candidate::Reduction {
                    opcode,
                    internal,
                    leaves,
                    carry,
                    ty,
                    ..
                } => builder
                    .build_reduction_root(*opcode, internal.clone(), leaves, *carry, *ty)
                    .is_some(),
            };
            if !built {
                continue;
            }
            let graph = builder.finish();
            println!("// @{} candidate {k} ({lanes} lanes)", func.name);
            print!("{}", graph.to_dot());
        }
    }
}

/// Synthesizes deterministic arguments for an entry point: integers get
/// 37, floats 1.5, and pointers the address of the module's first global
/// (or a scratch address when there is none).
fn default_args(module: &Module, entry: &str) -> Vec<IValue> {
    let Some(id) = module.func_by_name(entry) else {
        return Vec::new();
    };
    let func = module.func(id);
    func.param_tys()
        .iter()
        .map(|&ty| {
            if module.types.is_ptr(ty) {
                let interp = Interpreter::new(module);
                match module.global_ids().next() {
                    Some(g) => IValue::Ptr(interp.global_addr(g)),
                    None => IValue::Ptr(64),
                }
            } else if module.types.is_float(ty) {
                IValue::Float(1.5)
            } else {
                IValue::Int(37)
            }
        })
        .collect()
}

/// Prints one pass's recorded stat lines (the exact text the legacy
/// single-purpose drivers emitted).
fn print_outcome_stats(outcome: &PassOutcome) {
    for line in &outcome.lines {
        eprintln!("{line}");
    }
}

fn print_changed_ir(outcome: &PassOutcome, index: usize) {
    match (&outcome.changed, &outcome.ir_after) {
        (Some(true), Some(ir)) => {
            eprintln!("*** IR after pass {index} `{}` ***", outcome.name);
            eprint!("{ir}");
        }
        (Some(false), _) => {
            eprintln!("*** pass {index} `{}` made no changes ***", outcome.name);
        }
        _ => {}
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    if cli.list_passes {
        print!("{}", PassRegistry::builtin().help_passes());
        return ExitCode::SUCCESS;
    }

    // Resolve the pipeline before touching the input so spec errors are
    // reported even for a missing file.
    let spec_text = match &cli.spec {
        Some(s) => s.clone(),
        None => cli.legacy.join(","),
    };
    let pipeline = if spec_text.is_empty() {
        Vec::new()
    } else {
        match PassRegistry::builtin().parse_pipeline(&spec_text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}", e.render("<passes>", &spec_text));
                return ExitCode::from(1);
            }
        }
    };

    let input = cli.input.as_deref().expect("validated");
    let text = match read_input(input) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(1);
        }
    };
    let display_path = if input == "-" { "<stdin>" } else { input };
    let mut module = match parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{display_path}:{}:{}: error: {}", e.line, e.col, e.message);
            return ExitCode::from(1);
        }
    };
    if let Err(errors) = verify_module(&module) {
        for e in &errors {
            eprintln!("verify: {e}");
        }
        return ExitCode::from(1);
    }
    if cli.verify_only {
        eprintln!("ok: module verifies");
        return ExitCode::SUCCESS;
    }
    if cli.dump_align {
        dump_alignment_graphs(&module);
        return ExitCode::SUCCESS;
    }

    if let Some(socket) = &cli.serve {
        let preset = cli.serve_options.as_deref().unwrap_or("default");
        match serve_client(socket, &text, preset) {
            Ok((rolled, stats)) => {
                if cli.stats {
                    eprintln!("{stats}");
                }
                if !cli.quiet {
                    print!("{rolled}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("serve: error: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let original = module.clone();
    let before = measure_module(&module);

    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each: true,
        print_changed: cli.print_changed,
    });
    pm.add_all(pipeline);
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(cli.target);
    cx.jobs = cli.jobs;
    cx.validate_rewrites = cli.validate_rewrites;

    let report = match pm.run(&mut module, &mut am, &mut cx) {
        Ok(report) => report,
        Err(err) => {
            // Stat lines of the passes that did run, then the verifier's
            // diagnostics for the offending one.
            if cli.stats {
                for outcome in &err.completed {
                    print_outcome_stats(outcome);
                }
            }
            for e in &err.errors {
                eprintln!("verify after {}: {e}", err.pass);
            }
            return ExitCode::from(1);
        }
    };

    if cli.stats {
        for outcome in &report.outcomes {
            print_outcome_stats(outcome);
        }
        eprintln!("analysis: {}", report.cache);
        for (counter, n) in report.cache.rows() {
            eprintln!("  analysis {counter:<17} {n:>10}");
        }
    }
    if cli.print_changed {
        for (i, outcome) in report.outcomes.iter().enumerate() {
            print_changed_ir(outcome, i);
        }
    }
    if cli.time_passes {
        let total: u128 = report.outcomes.iter().map(|o| o.wall_ns).sum();
        eprintln!("time-passes:");
        for outcome in &report.outcomes {
            eprintln!(
                "  {name:<12} {ms:>10.3} ms",
                name = outcome.name,
                ms = outcome.wall_ns as f64 / 1e6
            );
        }
        eprintln!(
            "  {name:<12} {ms:>10.3} ms",
            name = "total",
            ms = total as f64 / 1e6
        );
    }

    if cli.measure {
        let after = measure_module(&module);
        eprintln!(
            "measure: text {} -> {} B, rodata {} -> {} B, data {} -> {} B (footprint {} -> {})",
            before.text,
            after.text,
            before.rodata,
            after.rodata,
            before.data,
            after.data,
            before.code_footprint(),
            after.code_footprint()
        );
    }

    if let Some(entry) = &cli.interp {
        let args = default_args(&module, entry);
        if cli.check {
            match check_equivalence(&original, &module, entry, &args) {
                Ok(()) => eprintln!("check: behaviour preserved"),
                Err(msg) => {
                    eprintln!("check: MISCOMPILE: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        let mut interp = Interpreter::new(&module);
        match interp.run(entry, &args) {
            Ok(out) => eprintln!(
                "interp: @{entry}() = {:?} after {} dynamic instructions",
                out.ret, out.steps
            ),
            Err(e) => {
                eprintln!("interp: fault: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if !cli.quiet {
        print!("{}", print_module(&module));
    }
    ExitCode::SUCCESS
}
