//! `rolag-opt` — a pass driver over textual IR, in the spirit of LLVM's
//! `opt`.
//!
//! ```text
//! rolag-opt [PASS...] [OPTIONS] <input.rir | ->
//!
//! Passes (applied in order):
//!   -rolag             loop rolling (the paper's technique)
//!   -rolag-ext         loop rolling with the future-work extensions
//!   -no-special        loop rolling with special nodes disabled
//!   -reroll            LLVM-style loop rerolling (the baseline)
//!   -unroll=<N>        partially unroll counted loops by N
//!   -cse               local common-subexpression elimination
//!   -simplify          constant folding + algebraic identities
//!   -dce               dead code elimination
//!   -flatten           flatten RoLAG's nested loops
//!
//! Options:
//!   --target <x86-64|thumb2>   cost-model target for profitability
//!   --measure                  print measured section sizes before/after
//!   --stats                    print pass statistics (with per-stage
//!                              timings, fixpoint cache counters, and
//!                              driver cache counters)
//!   --jobs <N>                 run -rolag through the parallel memoizing
//!                              driver with N workers (0 = all cores)
//!   --interp <func>            interpret <func>() after the passes
//!   --check                    interpret before AND after, compare outcomes
//!   --quiet                    do not print the final module
//!   --verify-only              parse + verify, print diagnostics, exit
//!   --dump-align               print each candidate's alignment graph in
//!                              Graphviz dot syntax instead of transforming
//! ```
//!
//! Exit status: 0 on success, 1 on usage/parse/verify errors, 2 when
//! `--check` detects a behaviour change (a miscompile).

use std::io::Read;
use std::process::ExitCode;

use rolag::{roll_module, roll_module_par, DriverOptions, RolagOptions};
use rolag_analysis::cost::TargetKind;
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_transforms::{cleanup_module, cse_module, flatten_module, unroll_module};

#[derive(Debug, Clone)]
enum Pass {
    Rolag(RolagOptions),
    Reroll,
    Unroll(u32),
    Cse,
    Simplify,
    Dce,
    Flatten,
}

#[derive(Debug, Default)]
struct Cli {
    passes: Vec<Pass>,
    input: Option<String>,
    target: TargetKind,
    jobs: Option<usize>,
    measure: bool,
    stats: bool,
    interp: Option<String>,
    check: bool,
    quiet: bool,
    verify_only: bool,
    dump_align: bool,
}

fn usage() -> &'static str {
    "usage: rolag-opt [PASS...] [OPTIONS] <input.rir | ->\n\
     passes: -rolag -rolag-ext -no-special -reroll -unroll=<N> -cse \
     -simplify -dce -flatten\n\
     options: --target <x86-64|thumb2> --jobs <N> --measure --stats \
     --interp <func> --check --quiet --verify-only\n\
     (run with a .rir file, or `-` to read IR text from stdin)"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-rolag" => cli.passes.push(Pass::Rolag(RolagOptions::default())),
            "-rolag-ext" => cli
                .passes
                .push(Pass::Rolag(RolagOptions::with_extensions())),
            "-no-special" => cli
                .passes
                .push(Pass::Rolag(RolagOptions::no_special_nodes())),
            "-reroll" => cli.passes.push(Pass::Reroll),
            "-cse" => cli.passes.push(Pass::Cse),
            "-simplify" => cli.passes.push(Pass::Simplify),
            "-dce" => cli.passes.push(Pass::Dce),
            "-flatten" => cli.passes.push(Pass::Flatten),
            s if s.starts_with("-unroll=") => {
                let n: u32 = s["-unroll=".len()..]
                    .parse()
                    .map_err(|_| format!("bad unroll factor in {s}"))?;
                if n < 2 {
                    return Err("unroll factor must be >= 2".into());
                }
                cli.passes.push(Pass::Unroll(n));
            }
            "--target" => {
                let t = it.next().ok_or("--target needs a value")?;
                cli.target = match t.as_str() {
                    "x86-64" | "x86_64" => TargetKind::X86_64,
                    "thumb2" | "thumb" => TargetKind::Thumb2,
                    other => return Err(format!("unknown target {other}")),
                };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = Some(v.parse().map_err(|_| format!("bad job count {v}"))?);
            }
            "--measure" => cli.measure = true,
            "--stats" => cli.stats = true,
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--verify-only" => cli.verify_only = true,
            "--dump-align" => cli.dump_align = true,
            "--interp" => {
                cli.interp = Some(it.next().ok_or("--interp needs a function")?.clone());
            }
            "-h" | "--help" => return Err(usage().to_string()),
            s if !s.starts_with('-') || s == "-" => {
                if cli.input.replace(s.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if cli.input.is_none() {
        return Err(usage().to_string());
    }
    Ok(cli)
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn run_pass(
    module: &mut Module,
    pass: &Pass,
    target: TargetKind,
    jobs: Option<usize>,
    stats: bool,
) {
    match pass {
        Pass::Rolag(opts) => {
            let opts = RolagOptions {
                target,
                ..opts.clone()
            };
            let s = match jobs {
                Some(n) => {
                    let report = roll_module_par(
                        module,
                        &opts,
                        &DriverOptions {
                            jobs: n,
                            memoize: true,
                        },
                    );
                    if stats {
                        eprintln!(
                            "driver: {} functions, {} unique, {} cache hits ({:.1}%), {} workers, {:.2} ms wall",
                            report.functions,
                            report.unique,
                            report.cache_hits,
                            100.0 * report.cache_hit_rate(),
                            report.jobs,
                            report.wall_ns as f64 / 1e6
                        );
                    }
                    report.stats
                }
                None => roll_module(module, &opts),
            };
            if stats {
                eprintln!("rolag: {s}");
                for (stage, ns) in s.timings.rows() {
                    eprintln!("  stage {stage:<9} {ns:>12} ns");
                }
                for (counter, n) in s.cache.rows() {
                    eprintln!("  cache {counter:<20} {n:>10}");
                }
            }
        }
        Pass::Reroll => {
            let s = reroll_module(module);
            if stats {
                eprintln!(
                    "reroll: {} of {} single-block loops rerolled",
                    s.rerolled, s.examined
                );
            }
        }
        Pass::Unroll(n) => {
            let outcomes = unroll_module(module, *n);
            if stats {
                let done = outcomes
                    .iter()
                    .filter(|o| matches!(o, rolag_transforms::UnrollOutcome::Unrolled { .. }))
                    .count();
                eprintln!("unroll: {done} of {} loops unrolled by {n}", outcomes.len());
            }
        }
        Pass::Cse => {
            let n = cse_module(module);
            if stats {
                eprintln!("cse: {n} instructions removed");
            }
        }
        Pass::Simplify | Pass::Dce => {
            let n = cleanup_module(module);
            if stats {
                eprintln!("cleanup: {n} instructions simplified/removed");
            }
        }
        Pass::Flatten => {
            let n = flatten_module(module);
            if stats {
                eprintln!("flatten: {n} nests flattened");
            }
        }
    }
}

/// Builds and prints the alignment graph of every rolling candidate in the
/// module, as Graphviz `dot`.
fn dump_alignment_graphs(module: &Module) {
    let opts = RolagOptions::with_extensions();
    for id in module.func_ids() {
        let func = module.func(id);
        if func.is_declaration {
            continue;
        }
        let candidates = rolag::collect_candidates(module, func, &opts);
        for (k, cand) in candidates.iter().enumerate() {
            let mut attempt = func.clone();
            let lanes = cand.lanes();
            let mut builder =
                rolag::GraphBuilder::new(module, &mut attempt, cand.block(), &opts, lanes);
            let built = match cand {
                rolag::Candidate::Seeds { groups, .. } => {
                    groups.iter().all(|g| builder.build_seed_root(g).is_some())
                }
                rolag::Candidate::Reduction {
                    opcode,
                    internal,
                    leaves,
                    carry,
                    ty,
                    ..
                } => builder
                    .build_reduction_root(*opcode, internal.clone(), leaves, *carry, *ty)
                    .is_some(),
            };
            if !built {
                continue;
            }
            let graph = builder.finish();
            println!("// @{} candidate {k} ({lanes} lanes)", func.name);
            print!("{}", graph.to_dot());
        }
    }
}

/// Synthesizes deterministic arguments for an entry point: integers get
/// 37, floats 1.5, and pointers the address of the module's first global
/// (or a scratch address when there is none).
fn default_args(module: &Module, entry: &str) -> Vec<IValue> {
    let Some(id) = module.func_by_name(entry) else {
        return Vec::new();
    };
    let func = module.func(id);
    func.param_tys()
        .iter()
        .map(|&ty| {
            if module.types.is_ptr(ty) {
                let interp = Interpreter::new(module);
                match module.global_ids().next() {
                    Some(g) => IValue::Ptr(interp.global_addr(g)),
                    None => IValue::Ptr(64),
                }
            } else if module.types.is_float(ty) {
                IValue::Float(1.5)
            } else {
                IValue::Int(37)
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    let input = cli.input.as_deref().expect("validated");
    let text = match read_input(input) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(1);
        }
    };
    let display_path = if input == "-" { "<stdin>" } else { input };
    let mut module = match parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{display_path}:{}:{}: error: {}", e.line, e.col, e.message);
            return ExitCode::from(1);
        }
    };
    if let Err(errors) = verify_module(&module) {
        for e in &errors {
            eprintln!("verify: {e}");
        }
        return ExitCode::from(1);
    }
    if cli.verify_only {
        eprintln!("ok: module verifies");
        return ExitCode::SUCCESS;
    }
    if cli.dump_align {
        dump_alignment_graphs(&module);
        return ExitCode::SUCCESS;
    }

    let original = module.clone();
    let before = measure_module(&module);

    for pass in &cli.passes {
        run_pass(&mut module, pass, cli.target, cli.jobs, cli.stats);
        if let Err(errors) = verify_module(&module) {
            for e in &errors {
                eprintln!("verify after {pass:?}: {e}");
            }
            return ExitCode::from(1);
        }
    }

    if cli.measure {
        let after = measure_module(&module);
        eprintln!(
            "measure: text {} -> {} B, rodata {} -> {} B, data {} -> {} B (footprint {} -> {})",
            before.text,
            after.text,
            before.rodata,
            after.rodata,
            before.data,
            after.data,
            before.code_footprint(),
            after.code_footprint()
        );
    }

    if let Some(entry) = &cli.interp {
        let args = default_args(&module, entry);
        if cli.check {
            match check_equivalence(&original, &module, entry, &args) {
                Ok(()) => eprintln!("check: behaviour preserved"),
                Err(msg) => {
                    eprintln!("check: MISCOMPILE: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        let mut interp = Interpreter::new(&module);
        match interp.run(entry, &args) {
            Ok(out) => eprintln!(
                "interp: @{entry}() = {:?} after {} dynamic instructions",
                out.ret, out.steps
            ),
            Err(e) => {
                eprintln!("interp: fault: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if !cli.quiet {
        print!("{}", print_module(&module));
    }
    ExitCode::SUCCESS
}
