//! `rolag-opt` — a pass driver over textual IR, in the spirit of LLVM's
//! `opt`.
//!
//! ```text
//! rolag-opt [PASS...] [OPTIONS] <input.rir | ->
//! ```
//!
//! Passes come from the `rolag-passes` registry, either as legacy `-name`
//! flags (`-rolag -unroll=4 -cse ...`, applied in flag order) or as one
//! `--passes` pipeline spec (`--passes "unroll<4>,cleanup,rolag"`). The
//! two spellings desugar to the same pipeline and produce byte-identical
//! output; `--list-passes` prints the registry. The full pass table in
//! `--help` is generated from the registry, so it cannot drift from the
//! implementation.
//!
//! Input may be native `.rir` text, `.rlir` binary (recognised by its
//! `RLIR` magic bytes, whatever the extension), or a supported subset of
//! LLVM textual IR (`--frontend=llvm`, or auto-detected). LLVM functions
//! outside the subset are skipped per function with a reason code, never
//! a module-fatal error. `--corpus` switches to streaming-corpus mode:
//! the input is a directory, concatenated corpus file, `RLCP` container,
//! or NDJSON manifest, rolled in bounded batches under `--mem-budget`.
//!
//! Options:
//!
//! ```text
//!   --passes <spec>            run a textual pipeline, e.g. "unroll<4>,cleanup,rolag"
//!   --list-passes              print the registered passes and exit
//!   --frontend <auto|rir|llvm> input format (default auto: magic bytes,
//!                              extension, then content heuristics)
//!   --emit <text|binary|llvm>  output format (default text)
//!   -o <path>                  write output to <path> instead of stdout
//!   --corpus <path>            roll a streaming corpus in bounded batches
//!   --mem-budget <N[K|M|G]>    corpus-mode peak-memory budget (default 1G)
//!   --target <x86-64|thumb2>   cost-model target for profitability
//!   --measure                  print measured section sizes before/after
//!   --stats                    print pass statistics (per-stage timings,
//!                              fixpoint cache counters, driver cache
//!                              counters, and analysis-cache hit rates)
//!   --jobs <N>                 run rolag through the parallel memoizing
//!                              driver with N workers (0 = all cores)
//!   --search <strategy>        alignment search strategy for every rolag
//!                              pass: greedy (default), beam:<k>, or
//!                              beam:<k>:<d> (beam width k, rollout depth d)
//!   --serve <socket>           client mode: submit the module to a running
//!                              rolag-serve daemon instead of rolling
//!                              locally, and print the returned module
//!   --serve-options <preset>   options preset for --serve (default,
//!                              extended, no-special, validated, measured)
//!   --validate-rewrites        prove every rolling rewrite with the
//!                              rolag-tv translation validator before the
//!                              cost model may commit it
//!   --time-passes              print per-pass wall time
//!   --print-changed            dump the IR after every pass that changed it
//!   --verify-each              verify between passes (on by default; flag
//!                              kept for symmetry with rolag-verify)
//!   --interp <func>            interpret <func>() after the passes
//!   --check                    interpret before AND after, compare outcomes
//!   --quiet                    do not print the final module
//!   --verify-only              parse + verify, print diagnostics, exit
//!   --dump-align               print each candidate's alignment graph in
//!                              Graphviz dot syntax instead of transforming
//! ```
//!
//! Exit status: 0 on success, 1 on usage/parse/verify errors, 2 when
//! `--check` detects a behaviour change (a miscompile).

use std::io::{Read, Write};
use std::process::ExitCode;

use rolag::{RolagOptions, SearchConfig};
use rolag_analysis::cost::TargetKind;
use rolag_frontend::corpus::{open_corpus, roll_corpus, ContainerWriter, CorpusOptions};
use rolag_frontend::{emit::emit_llvm, FrontendKind, Skip};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::{encode_module, Module};
use rolag_lower::measure_module;
use rolag_passes::{
    AnalysisManager, PassContext, PassManager, PassManagerOptions, PassOutcome, PassRegistry,
};

#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum EmitKind {
    #[default]
    Text,
    Binary,
    Llvm,
}

#[derive(Debug, Default)]
struct Cli {
    frontend: FrontendKind,
    emit: EmitKind,
    output: Option<String>,
    corpus: Option<String>,
    mem_budget: Option<u64>,
    /// Pipeline elements desugared from legacy `-name` flags, in order.
    legacy: Vec<String>,
    /// The `--passes` spec, verbatim.
    spec: Option<String>,
    input: Option<String>,
    target: TargetKind,
    jobs: Option<usize>,
    search: Option<SearchConfig>,
    serve: Option<String>,
    serve_options: Option<String>,
    validate_rewrites: bool,
    measure: bool,
    stats: bool,
    time_passes: bool,
    print_changed: bool,
    list_passes: bool,
    interp: Option<String>,
    check: bool,
    quiet: bool,
    verify_only: bool,
    dump_align: bool,
}

fn usage() -> String {
    format!(
        "usage: rolag-opt [PASS...] [OPTIONS] <input.rir | ->\n\
         passes (as -name flags applied in order, or one --passes spec):\n\
         {passes}\
         options: --passes <spec> --list-passes --frontend <auto|rir|llvm> \
         --emit <text|binary|llvm> -o <path> --corpus <path> \
         --mem-budget <N[K|M|G]> --target <x86-64|thumb2> \
         --jobs <N> --search <greedy|beam:k[:d]> \
         --serve <socket> --serve-options <preset> \
         --validate-rewrites --measure --stats --time-passes \
         --print-changed --verify-each --interp <func> --check --quiet \
         --verify-only\n\
         (run with a .rir/.rlir/.ll file, or `-` to read from stdin)",
        passes = PassRegistry::builtin().help_passes()
    )
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--passes" => {
                let spec = it.next().ok_or("--passes needs a pipeline spec")?;
                if cli.spec.replace(spec.clone()).is_some() {
                    return Err("more than one --passes spec".into());
                }
            }
            "--list-passes" => cli.list_passes = true,
            "--frontend" => {
                let f = it.next().ok_or("--frontend needs a value")?;
                cli.frontend = FrontendKind::from_flag(f)
                    .ok_or_else(|| format!("unknown frontend {f} (auto, rir, llvm)"))?;
            }
            "--emit" => {
                let e = it.next().ok_or("--emit needs a value")?;
                cli.emit = match e.as_str() {
                    "text" | "rir" => EmitKind::Text,
                    "binary" | "rlir" => EmitKind::Binary,
                    "llvm" | "ll" => EmitKind::Llvm,
                    other => return Err(format!("unknown emit format {other}")),
                };
            }
            "-o" | "--output" => {
                let p = it.next().ok_or("-o needs a path")?;
                if cli.output.replace(p.clone()).is_some() {
                    return Err("more than one -o".into());
                }
            }
            "--corpus" => {
                let p = it.next().ok_or("--corpus needs a path")?;
                if cli.corpus.replace(p.clone()).is_some() {
                    return Err("more than one --corpus".into());
                }
            }
            "--mem-budget" => {
                let v = it.next().ok_or("--mem-budget needs a value")?;
                cli.mem_budget = Some(parse_mem_budget(v)?);
            }
            "--target" => {
                let t = it.next().ok_or("--target needs a value")?;
                cli.target = match t.as_str() {
                    "x86-64" | "x86_64" => TargetKind::X86_64,
                    "thumb2" | "thumb" => TargetKind::Thumb2,
                    other => return Err(format!("unknown target {other}")),
                };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = Some(v.parse().map_err(|_| format!("bad job count {v}"))?);
            }
            "--search" => {
                let v = it
                    .next()
                    .ok_or("--search needs a strategy (greedy, beam:<k>, beam:<k>:<d>)")?;
                cli.search = Some(SearchConfig::parse(v)?);
            }
            "--serve" => {
                cli.serve = Some(it.next().ok_or("--serve needs a socket path")?.clone());
            }
            "--serve-options" => {
                let preset = it.next().ok_or("--serve-options needs a preset")?;
                if rolag_serve::proto::options_preset(preset).is_none() {
                    return Err(format!("unknown options preset {preset}"));
                }
                cli.serve_options = Some(preset.clone());
            }
            "--validate-rewrites" => cli.validate_rewrites = true,
            "--measure" => cli.measure = true,
            "--stats" => cli.stats = true,
            "--time-passes" => cli.time_passes = true,
            "--print-changed" => cli.print_changed = true,
            // Verification between passes is always on (the legacy
            // behaviour); accepted so scripts can say it explicitly.
            "--verify-each" => {}
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--verify-only" => cli.verify_only = true,
            "--dump-align" => cli.dump_align = true,
            "--interp" => {
                cli.interp = Some(it.next().ok_or("--interp needs a function")?.clone());
            }
            "-h" | "--help" => return Err(usage()),
            s if s.starts_with("-unroll=") => {
                // Validated here so legacy spellings keep legacy errors.
                let raw = &s["-unroll=".len()..];
                let n: u32 = raw
                    .parse()
                    .map_err(|_| format!("bad unroll factor in {s}"))?;
                if n < 2 {
                    return Err("unroll factor must be >= 2".into());
                }
                cli.legacy.push(format!("unroll<{n}>"));
            }
            s if s.len() > 1
                && s.starts_with('-')
                && !s.starts_with("--")
                && PassRegistry::builtin().find(&s[1..]).is_some() =>
            {
                cli.legacy.push(s[1..].to_string());
            }
            s if !s.starts_with('-') || s == "-" => {
                if cli.input.replace(s.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if cli.spec.is_some() && !cli.legacy.is_empty() {
        return Err(format!(
            "cannot mix --passes with legacy pass flags (-{} ...)",
            cli.legacy[0]
        ));
    }
    if cli.serve.is_some() && (cli.spec.is_some() || !cli.legacy.is_empty()) {
        return Err("--serve submits to the daemon's rolag pipeline; \
                    it cannot be combined with local passes"
            .into());
    }
    if cli.serve_options.is_some() && cli.serve.is_none() {
        return Err("--serve-options needs --serve".into());
    }
    if cli.corpus.is_some() {
        if cli.spec.is_some() || !cli.legacy.is_empty() {
            return Err("--corpus rolls batches through the parallel driver; \
                        it cannot be combined with a pass pipeline"
                .into());
        }
        if cli.serve.is_some() {
            return Err("--corpus cannot be combined with --serve".into());
        }
        if cli.input.is_some() {
            return Err("--corpus replaces the positional input".into());
        }
    } else if cli.mem_budget.is_some() {
        return Err("--mem-budget needs --corpus".into());
    }
    if cli.input.is_none() && !cli.list_passes && cli.corpus.is_none() {
        return Err(usage());
    }
    Ok(cli)
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix.
fn parse_mem_budget(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad memory budget {s}"))?;
    n.checked_mul(mult)
        .filter(|&b| b > 0)
        .ok_or_else(|| format!("bad memory budget {s}"))
}

fn read_input(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// Renders a frontend diagnostic with its source caret when the input is
/// text.
fn render_diag(d: &rolag_frontend::Diagnostic, bytes: &[u8]) -> String {
    match std::str::from_utf8(bytes) {
        Ok(text) => d.render(text),
        Err(_) => d.to_string(),
    }
}

/// One warning line per skipped function, with file:line:col spans.
fn report_skips(origin: &str, skips: &[Skip]) {
    for s in skips {
        if s.line == 0 {
            eprintln!(
                "{origin}: warning: skipped @{} [{}]: {}",
                s.symbol,
                s.code.code(),
                s.detail
            );
        } else {
            eprintln!(
                "{origin}:{}:{}: warning: skipped @{} [{}]: {}",
                s.line,
                s.col,
                s.symbol,
                s.code.code(),
                s.detail
            );
        }
    }
}

/// Serializes the module per `--emit` and writes it to `-o` (or stdout).
fn write_module(module: &Module, emit: EmitKind, dest: Option<&str>) -> Result<(), String> {
    let bytes = match emit {
        EmitKind::Text => print_module(module).into_bytes(),
        EmitKind::Binary => encode_module(module),
        EmitKind::Llvm => emit_llvm(module).into_bytes(),
    };
    match dest {
        None | Some("-") => std::io::stdout()
            .write_all(&bytes)
            .map_err(|e| format!("writing stdout: {e}")),
        Some(path) => std::fs::write(path, bytes).map_err(|e| format!("writing {path}: {e}")),
    }
}

/// Client mode: submit the module text to a running `rolag-serve` daemon
/// over its unix socket and return the rolled module text plus the
/// request's stat line.
fn serve_client(socket: &str, text: &str, options: &str) -> Result<(String, String), String> {
    use std::io::{BufRead, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    let mut stream =
        UnixStream::connect(socket).map_err(|e| format!("connecting {socket}: {e}"))?;
    let request = rolag_serve::proto::Request::Roll {
        id: "rolag-opt".into(),
        module: text.to_string(),
        options: options.to_string(),
        client: Some("rolag-opt".into()),
    };
    stream
        .write_all(format!("{}\n", request.render()).as_bytes())
        .map_err(|e| format!("writing request: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("reading response: {e}"))?;
    let reply = rolag_serve::proto::parse_reply(&line)?;
    if !reply.ok {
        return Err(reply.error.unwrap_or_else(|| "request failed".into()));
    }
    let module = reply.module.ok_or("response has no module")?;
    let stats = format!(
        "serve: {} functions, {} store hits, {} misses, rolled {}, {:.2} ms \
         (cumulative hit rate {:.1}%)",
        reply.functions,
        reply.store_hits,
        reply.store_misses,
        reply.rolled,
        reply.wall_ns as f64 / 1e6,
        100.0 * reply.cumulative_hit_rate
    );
    Ok((module, stats))
}

/// Builds and prints the alignment graph of every rolling candidate in the
/// module, as Graphviz `dot`.
fn dump_alignment_graphs(module: &Module) {
    let opts = RolagOptions::with_extensions();
    for id in module.func_ids() {
        let func = module.func(id);
        if func.is_declaration {
            continue;
        }
        let candidates = rolag::collect_candidates(module, func, &opts);
        for (k, cand) in candidates.iter().enumerate() {
            let mut attempt = func.clone();
            let lanes = cand.lanes();
            let mut builder =
                rolag::GraphBuilder::new(module, &mut attempt, cand.block(), &opts, lanes);
            let built = match cand {
                rolag::Candidate::Seeds { groups, .. } => {
                    groups.iter().all(|g| builder.build_seed_root(g).is_some())
                }
                rolag::Candidate::Reduction {
                    opcode,
                    internal,
                    leaves,
                    carry,
                    ty,
                    ..
                } => builder
                    .build_reduction_root(*opcode, internal.clone(), leaves, *carry, *ty)
                    .is_some(),
            };
            if !built {
                continue;
            }
            let graph = builder.finish();
            println!("// @{} candidate {k} ({lanes} lanes)", func.name);
            print!("{}", graph.to_dot());
        }
    }
}

/// Synthesizes deterministic arguments for an entry point: integers get
/// 37, floats 1.5, and pointers the address of the module's first global
/// (or a scratch address when there is none).
fn default_args(module: &Module, entry: &str) -> Vec<IValue> {
    let Some(id) = module.func_by_name(entry) else {
        return Vec::new();
    };
    let func = module.func(id);
    func.param_tys()
        .iter()
        .map(|&ty| {
            if module.types.is_ptr(ty) {
                let interp = Interpreter::new(module);
                match module.global_ids().next() {
                    Some(g) => IValue::Ptr(interp.global_addr(g)),
                    None => IValue::Ptr(64),
                }
            } else if module.types.is_float(ty) {
                IValue::Float(1.5)
            } else {
                IValue::Int(37)
            }
        })
        .collect()
}

/// Prints one pass's recorded stat lines (the exact text the legacy
/// single-purpose drivers emitted).
fn print_outcome_stats(outcome: &PassOutcome) {
    for line in &outcome.lines {
        eprintln!("{line}");
    }
}

fn print_changed_ir(outcome: &PassOutcome, index: usize) {
    match (&outcome.changed, &outcome.ir_after) {
        (Some(true), Some(ir)) => {
            eprintln!("*** IR after pass {index} `{}` ***", outcome.name);
            eprint!("{ir}");
        }
        (Some(false), _) => {
            eprintln!("*** pass {index} `{}` made no changes ***", outcome.name);
        }
        _ => {}
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    if cli.list_passes {
        print!("{}", PassRegistry::builtin().help_passes());
        return ExitCode::SUCCESS;
    }

    if let Some(corpus_path) = cli.corpus.clone() {
        return run_corpus(&cli, &corpus_path);
    }

    // Resolve the pipeline before touching the input so spec errors are
    // reported even for a missing file.
    let spec_text = match &cli.spec {
        Some(s) => s.clone(),
        None => cli.legacy.join(","),
    };
    let pipeline = if spec_text.is_empty() {
        Vec::new()
    } else {
        match PassRegistry::builtin().parse_pipeline(&spec_text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}", e.render("<passes>", &spec_text));
                return ExitCode::from(1);
            }
        }
    };

    let input = cli.input.as_deref().expect("validated");
    let bytes = match read_input(input) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(1);
        }
    };
    let display_path = if input == "-" { "<stdin>" } else { input };
    let frontend = cli.frontend.frontend_for(display_path, &bytes);
    let parsed = match frontend.parse(&bytes, display_path) {
        Ok(r) => r,
        Err(d) => {
            eprintln!("{}", render_diag(&d, &bytes));
            return ExitCode::from(1);
        }
    };
    report_skips(display_path, &parsed.skips);
    let skips = parsed.skips;
    let mut module = parsed.module;
    if let Err(errors) = verify_module(&module) {
        for e in &errors {
            eprintln!("verify: {e}");
        }
        return ExitCode::from(1);
    }
    if cli.verify_only {
        eprintln!("ok: module verifies");
        return ExitCode::SUCCESS;
    }
    if cli.dump_align {
        dump_alignment_graphs(&module);
        return ExitCode::SUCCESS;
    }

    if let Some(socket) = &cli.serve {
        let preset = cli.serve_options.as_deref().unwrap_or("default");
        // The daemon speaks native text; render whatever frontend parsed.
        let text = print_module(&module);
        match serve_client(socket, &text, preset) {
            Ok((rolled, stats)) => {
                if cli.stats {
                    eprintln!("{stats}");
                }
                if !cli.quiet {
                    print!("{rolled}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("serve: error: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let original = module.clone();
    let before = measure_module(&module);

    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each: true,
        print_changed: cli.print_changed,
    });
    pm.add_all(pipeline);
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(cli.target);
    cx.jobs = cli.jobs;
    cx.validate_rewrites = cli.validate_rewrites;
    cx.search = cli.search;

    let report = match pm.run(&mut module, &mut am, &mut cx) {
        Ok(report) => report,
        Err(err) => {
            // Stat lines of the passes that did run, then the verifier's
            // diagnostics for the offending one.
            if cli.stats {
                for outcome in &err.completed {
                    print_outcome_stats(outcome);
                }
            }
            for e in &err.errors {
                eprintln!("verify after {}: {e}", err.pass);
            }
            return ExitCode::from(1);
        }
    };

    if cli.stats {
        for outcome in &report.outcomes {
            print_outcome_stats(outcome);
        }
        eprintln!("analysis: {}", report.cache);
        for (counter, n) in report.cache.rows() {
            eprintln!("  analysis {counter:<17} {n:>10}");
        }
        eprintln!("  frontend skipped        {:>10}", skips.len());
        let mut reasons: std::collections::BTreeMap<&str, u64> = Default::default();
        for s in &skips {
            *reasons.entry(s.code.code()).or_insert(0) += 1;
        }
        for (code, n) in reasons {
            eprintln!("  skip {code:<21} {n:>10}");
        }
    }
    if cli.print_changed {
        for (i, outcome) in report.outcomes.iter().enumerate() {
            print_changed_ir(outcome, i);
        }
    }
    if cli.time_passes {
        let total: u128 = report.outcomes.iter().map(|o| o.wall_ns).sum();
        eprintln!("time-passes:");
        for outcome in &report.outcomes {
            eprintln!(
                "  {name:<12} {ms:>10.3} ms",
                name = outcome.name,
                ms = outcome.wall_ns as f64 / 1e6
            );
        }
        eprintln!(
            "  {name:<12} {ms:>10.3} ms",
            name = "total",
            ms = total as f64 / 1e6
        );
    }

    if cli.measure {
        let after = measure_module(&module);
        eprintln!(
            "measure: text {} -> {} B, rodata {} -> {} B, data {} -> {} B (footprint {} -> {})",
            before.text,
            after.text,
            before.rodata,
            after.rodata,
            before.data,
            after.data,
            before.code_footprint(),
            after.code_footprint()
        );
    }

    if let Some(entry) = &cli.interp {
        let args = default_args(&module, entry);
        if cli.check {
            match check_equivalence(&original, &module, entry, &args) {
                Ok(()) => eprintln!("check: behaviour preserved"),
                Err(msg) => {
                    eprintln!("check: MISCOMPILE: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        let mut interp = Interpreter::new(&module);
        match interp.run(entry, &args) {
            Ok(out) => eprintln!(
                "interp: @{entry}() = {:?} after {} dynamic instructions",
                out.ret, out.steps
            ),
            Err(e) => {
                eprintln!("interp: fault: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if cli.output.is_some() || !cli.quiet {
        if let Err(msg) = write_module(&module, cli.emit, cli.output.as_deref()) {
            eprintln!("error: {msg}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// Streaming-corpus mode: roll every module under `--corpus` in bounded
/// batches and print a whole-corpus summary.
fn run_corpus(cli: &Cli, path: &str) -> ExitCode {
    let opts = RolagOptions {
        validate: cli.validate_rewrites,
        target: cli.target,
        search: cli.search.unwrap_or_default(),
        ..Default::default()
    };
    let copts = CorpusOptions {
        mem_budget: cli.mem_budget.unwrap_or(1 << 30),
        jobs: cli.jobs.unwrap_or(0),
        memoize: true,
        frontend: cli.frontend,
    };
    let items = match open_corpus(std::path::Path::new(path)) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: opening corpus {path}: {e}");
            return ExitCode::from(1);
        }
    };

    enum Sink {
        None,
        Text(Box<dyn Write>, EmitKind),
        Container(ContainerWriter<Box<dyn Write>>),
    }
    let mut sink = match &cli.output {
        None => Sink::None,
        Some(dest) => {
            let w: Box<dyn Write> = if dest == "-" {
                Box::new(std::io::stdout())
            } else {
                match std::fs::File::create(dest) {
                    Ok(f) => Box::new(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!("error: creating {dest}: {e}");
                        return ExitCode::from(1);
                    }
                }
            };
            match cli.emit {
                EmitKind::Binary => match ContainerWriter::new(w) {
                    Ok(c) => Sink::Container(c),
                    Err(e) => {
                        eprintln!("error: writing container header: {e}");
                        return ExitCode::from(1);
                    }
                },
                kind => Sink::Text(w, kind),
            }
        }
    };
    let mut sink_err: Option<std::io::Error> = None;
    let report = roll_corpus(items, &opts, &copts, |m, _dr| {
        let res = match &mut sink {
            Sink::None => Ok(()),
            Sink::Text(w, kind) => {
                let text = match kind {
                    EmitKind::Llvm => emit_llvm(m),
                    _ => print_module(m),
                };
                w.write_all(text.as_bytes())
            }
            Sink::Container(c) => c.append(&encode_module(m)),
        };
        if let (Err(e), None) = (res, sink_err.as_ref()) {
            sink_err = Some(e);
        }
    });
    if let Sink::Container(c) = sink {
        if let (Err(e), None) = (c.finish().map(|_| ()), sink_err.as_ref()) {
            sink_err = Some(e);
        }
    }
    if let Some(e) = sink_err {
        eprintln!("error: writing output: {e}");
        return ExitCode::from(1);
    }
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: reading corpus: {e}");
            return ExitCode::from(1);
        }
    };
    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    eprintln!(
        "corpus: {} modules ({} parse failures), {} functions ({} changed, {} skipped), {} batches",
        report.items,
        report.parse_failures,
        report.functions,
        report.changed,
        report.skipped,
        report.batches
    );
    eprintln!(
        "corpus: {} bytes saved ({} -> {}), {:.1} funcs/s, peak RSS {:.1} MiB",
        report.bytes_saved(),
        report.stats.size_before,
        report.stats.size_after,
        report.funcs_per_sec(),
        report.peak_rss_bytes as f64 / (1 << 20) as f64
    );
    if cli.stats {
        eprintln!(
            "corpus: rolled {} loops, attempted {}, tv rejected {}, cache hits {}, store hits {}",
            report.stats.rolled,
            report.stats.attempted,
            report.stats.tv_rejected,
            report.cache_hits,
            report.store_hits
        );
        for (code, n) in &report.skip_reasons {
            eprintln!("  skip {code:<21} {n:>10}");
        }
    }
    ExitCode::SUCCESS
}
