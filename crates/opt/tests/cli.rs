//! End-to-end tests of the `rolag-opt` driver binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SAMPLE: &str = r#"
module "cli"
global @a : [8 x i32] = zero
func @fill() -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 7, %g1
  %g2 = gep i32, @a, i64 2
  store i32 14, %g2
  %g3 = gep i32, @a, i64 3
  store i32 21, %g3
  %g4 = gep i32, @a, i64 4
  store i32 28, %g4
  %g5 = gep i32, @a, i64 5
  store i32 35, %g5
  %g6 = gep i32, @a, i64 6
  store i32 42, %g6
  %g7 = gep i32, @a, i64 7
  store i32 49, %g7
  ret
}
"#;

fn run(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rolag-opt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rolag-opt");
    // Ignore EPIPE: on flag/spec errors the binary exits without
    // reading stdin.
    let _ = child.stdin.as_mut().unwrap().write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn rolls_from_stdin_and_prints_the_loop() {
    let (stdout, stderr, code) = run(
        &["-rolag", "--stats", "--check", "--interp", "fill", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("rolag.loop"), "no loop in:\n{stdout}");
    assert!(stderr.contains("rolled 1"), "stats missing: {stderr}");
    assert!(stderr.contains("behaviour preserved"), "{stderr}");
}

#[test]
fn measure_reports_shrinkage() {
    let (_, stderr, code) = run(&["-rolag", "--measure", "--quiet", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    let line = stderr
        .lines()
        .find(|l| l.starts_with("measure:"))
        .expect("measure line");
    // "text A -> B" with B < A.
    let nums: Vec<u64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(nums[1] < nums[0], "text did not shrink: {line}");
}

#[test]
fn verify_only_accepts_good_ir_and_rejects_bad() {
    let (_, stderr, code) = run(&["--verify-only", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    assert!(stderr.contains("module verifies"));

    let bad = "module \"b\"\nfunc @f() -> void {\nentry:\n  %1 = add i32 %2, i32 1\n  ret\n}\n";
    let (_, stderr, code) = run(&["--verify-only", "-"], bad);
    assert_eq!(code, Some(1));
    assert!(!stderr.is_empty());
}

#[test]
fn unroll_then_reroll_round_trips() {
    let loop_ir = r#"
module "rt"
global @a : [32 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %q = gep i32, @a, %iv
  %t = trunc i32 %iv
  store %t, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 32
  condbr %c, loop, exit
exit:
  ret
}
"#;
    let (stdout, stderr, code) = run(
        &[
            "-unroll=4",
            "-cse",
            "-dce",
            "-reroll",
            "-dce",
            "--stats",
            "--check",
            "--interp",
            "f",
            "-",
        ],
        loop_ir,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("1 of 1 loops unrolled by 4"), "{stderr}");
    assert!(stderr.contains("1 of"), "{stderr}");
    assert!(stderr.contains("behaviour preserved"), "{stderr}");
    // The rerolled loop is back to a handful of instructions.
    let loop_lines = stdout
        .lines()
        .skip_while(|l| !l.starts_with("loop:"))
        .take_while(|l| !l.starts_with("exit:"))
        .count();
    assert!(loop_lines <= 9, "loop did not reroll:\n{stdout}");
}

#[test]
fn unknown_flags_and_missing_input_fail_cleanly() {
    let (_, stderr, code) = run(&["--bogus"], "");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unknown flag"));

    let (_, stderr, code) = run(&["-rolag"], "");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("usage:"));
}

#[test]
fn thumb_target_is_accepted() {
    let (_, stderr, code) = run(
        &["-rolag", "--target", "thumb2", "--stats", "--quiet", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("rolag:"));
}

/// Strips the nondeterministic timing numbers from `--stats` output so
/// two runs can be compared byte-for-byte.
fn normalize_timings(stderr: &str) -> String {
    stderr
        .lines()
        .map(|l| {
            if let Some(stage) = l.strip_prefix("  stage ") {
                let name = stage.split_whitespace().next().unwrap_or("");
                format!("  stage {name} NS")
            } else if let Some(i) = l.find(" ms wall") {
                let head = l[..i].rfind(' ').map(|j| &l[..j]).unwrap_or("");
                format!("{head} X ms wall")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn passes_spelling_matches_legacy_flags_byte_for_byte() {
    let legacy = &[
        "-unroll=4",
        "-cse",
        "-rolag",
        "-flatten",
        "-dce",
        "--stats",
        "-",
    ];
    let spec = &[
        "--passes",
        "unroll<4>,cse,rolag,flatten,dce",
        "--stats",
        "-",
    ];
    let (out_a, err_a, code_a) = run(legacy, SAMPLE);
    let (out_b, err_b, code_b) = run(spec, SAMPLE);
    assert_eq!(code_a, Some(0), "legacy: {err_a}");
    assert_eq!(code_b, Some(0), "spec: {err_b}");
    assert_eq!(out_a, out_b, "stdout diverged between spellings");
    assert_eq!(
        normalize_timings(&err_a),
        normalize_timings(&err_b),
        "stats diverged between spellings"
    );
}

#[test]
fn bad_pipeline_specs_fail_with_a_caret_diagnostic() {
    let (_, stderr, code) = run(&["--passes", "rolag,flattn", "-"], SAMPLE);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("<passes>:1:7: error:"), "{stderr}");
    assert!(stderr.contains("unknown pass `flattn`"), "{stderr}");
    assert!(stderr.contains("did you mean `flatten`"), "{stderr}");
    assert!(stderr.contains('^'), "no caret: {stderr}");

    for (spec, needle) in [
        ("rolag,", "trailing comma"),
        ("unroll<0>", "at least 2"),
        ("unroll<x>", "expected an integer"),
        ("unroll", "needs a factor"),
    ] {
        let (_, stderr, code) = run(&["--passes", spec, "-"], SAMPLE);
        assert_eq!(code, Some(1), "`{spec}` should be rejected");
        assert!(stderr.contains(needle), "`{spec}` gave: {stderr}");
    }

    // Mixing the two spellings is ambiguous and refused.
    let (_, stderr, code) = run(&["-rolag", "--passes", "cse", "-"], SAMPLE);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("--passes"), "{stderr}");
}

#[test]
fn list_passes_prints_the_registry_table() {
    let (stdout, _, code) = run(&["--list-passes"], "");
    assert_eq!(code, Some(0));
    for name in ["rolag", "unroll<N>", "cse", "cleanup", "flatten", "reroll"] {
        assert!(stdout.contains(name), "`{name}` missing:\n{stdout}");
    }
}

#[test]
fn stats_reports_analysis_cache_counters() {
    let (_, stderr, code) = run(
        &["--passes", "cleanup,cse,cleanup", "--stats", "--quiet", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("analysis:"), "{stderr}");
    assert!(stderr.contains("effects_hits"), "{stderr}");
}

#[test]
fn time_passes_prints_per_pass_wall_times() {
    let (_, stderr, code) = run(
        &["--passes", "rolag,cleanup", "--time-passes", "--quiet", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("rolag"), "{stderr}");
    assert!(stderr.contains("ms"), "{stderr}");
}

#[test]
fn dump_align_prints_dot_graphs() {
    let (stdout, _, code) = run(&["--dump-align", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph align"));
    assert!(stdout.contains("match:store"));
    assert!(stdout.contains("seq "));
}
