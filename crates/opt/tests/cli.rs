//! End-to-end tests of the `rolag-opt` driver binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SAMPLE: &str = r#"
module "cli"
global @a : [8 x i32] = zero
func @fill() -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 7, %g1
  %g2 = gep i32, @a, i64 2
  store i32 14, %g2
  %g3 = gep i32, @a, i64 3
  store i32 21, %g3
  %g4 = gep i32, @a, i64 4
  store i32 28, %g4
  %g5 = gep i32, @a, i64 5
  store i32 35, %g5
  %g6 = gep i32, @a, i64 6
  store i32 42, %g6
  %g7 = gep i32, @a, i64 7
  store i32 49, %g7
  ret
}
"#;

fn run(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rolag-opt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rolag-opt");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn rolls_from_stdin_and_prints_the_loop() {
    let (stdout, stderr, code) = run(
        &["-rolag", "--stats", "--check", "--interp", "fill", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("rolag.loop"), "no loop in:\n{stdout}");
    assert!(stderr.contains("rolled 1"), "stats missing: {stderr}");
    assert!(stderr.contains("behaviour preserved"), "{stderr}");
}

#[test]
fn measure_reports_shrinkage() {
    let (_, stderr, code) = run(&["-rolag", "--measure", "--quiet", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    let line = stderr
        .lines()
        .find(|l| l.starts_with("measure:"))
        .expect("measure line");
    // "text A -> B" with B < A.
    let nums: Vec<u64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(nums[1] < nums[0], "text did not shrink: {line}");
}

#[test]
fn verify_only_accepts_good_ir_and_rejects_bad() {
    let (_, stderr, code) = run(&["--verify-only", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    assert!(stderr.contains("module verifies"));

    let bad = "module \"b\"\nfunc @f() -> void {\nentry:\n  %1 = add i32 %2, i32 1\n  ret\n}\n";
    let (_, stderr, code) = run(&["--verify-only", "-"], bad);
    assert_eq!(code, Some(1));
    assert!(!stderr.is_empty());
}

#[test]
fn unroll_then_reroll_round_trips() {
    let loop_ir = r#"
module "rt"
global @a : [32 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %q = gep i32, @a, %iv
  %t = trunc i32 %iv
  store %t, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 32
  condbr %c, loop, exit
exit:
  ret
}
"#;
    let (stdout, stderr, code) = run(
        &[
            "-unroll=4",
            "-cse",
            "-dce",
            "-reroll",
            "-dce",
            "--stats",
            "--check",
            "--interp",
            "f",
            "-",
        ],
        loop_ir,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("1 of 1 loops unrolled by 4"), "{stderr}");
    assert!(stderr.contains("1 of"), "{stderr}");
    assert!(stderr.contains("behaviour preserved"), "{stderr}");
    // The rerolled loop is back to a handful of instructions.
    let loop_lines = stdout
        .lines()
        .skip_while(|l| !l.starts_with("loop:"))
        .take_while(|l| !l.starts_with("exit:"))
        .count();
    assert!(loop_lines <= 9, "loop did not reroll:\n{stdout}");
}

#[test]
fn unknown_flags_and_missing_input_fail_cleanly() {
    let (_, stderr, code) = run(&["--bogus"], "");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unknown flag"));

    let (_, stderr, code) = run(&["-rolag"], "");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("usage:"));
}

#[test]
fn thumb_target_is_accepted() {
    let (_, stderr, code) = run(
        &["-rolag", "--target", "thumb2", "--stats", "--quiet", "-"],
        SAMPLE,
    );
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("rolag:"));
}

#[test]
fn dump_align_prints_dot_graphs() {
    let (stdout, _, code) = run(&["--dump-align", "-"], SAMPLE);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph align"));
    assert!(stdout.contains("match:store"));
    assert!(stdout.contains("seq "));
}
