//! Additional lowering-simulator tests: addressing-mode sizes, spill
//! behaviour under loop pressure, and section accounting.

use rolag_ir::parser::parse_module;
use rolag_lower::{measure_function, measure_module, select_function};

#[test]
fn global_addressing_is_pricier_than_register_addressing() {
    let via_global = parse_module(
        r#"
module "g"
global @g : [8 x i32] = zero
func @f() -> i32 {
entry:
  %v = load i32, @g
  ret %v
}
"#,
    )
    .unwrap();
    let via_param = parse_module(
        r#"
module "p"
func @f(ptr %p0) -> i32 {
entry:
  %v = load i32, %p0
  ret %v
}
"#,
    )
    .unwrap();
    let a = measure_function(
        &via_global,
        via_global.func(via_global.func_by_name("f").unwrap()),
    );
    let b = measure_function(
        &via_param,
        via_param.func(via_param.func_by_name("f").unwrap()),
    );
    assert!(a > b, "RIP-relative {a} should cost more than [reg] {b}");
}

#[test]
fn folded_gep_with_large_constant_offset_pays_disp32() {
    let near = parse_module(
        r#"
module "n"
global @g : [100000 x i8] = zero
func @f() -> i8 {
entry:
  %p = gep i8, @g, i64 4
  %v = load i8, %p
  ret %v
}
"#,
    )
    .unwrap();
    let far = parse_module(
        r#"
module "f"
global @g : [100000 x i8] = zero
func @f() -> i8 {
entry:
  %p = gep i8, @g, i64 90000
  %v = load i8, %p
  ret %v
}
"#,
    )
    .unwrap();
    let a = measure_function(&near, near.func(near.func_by_name("f").unwrap()));
    let b = measure_function(&far, far.func(far.func_by_name("f").unwrap()));
    assert!(b > a, "disp32 ({b}) should exceed disp8 ({a})");
}

#[test]
fn loop_carried_values_extend_liveness_without_panic() {
    // Values used by phis across the back edge appear used "before" their
    // defs in layout order; the allocator must handle them.
    let m = parse_module(
        r#"
module "l"
func @f(i64 %p0) -> i64 {
entry:
  br loop
loop:
  %a = phi i64 [ i64 0, entry ], [ %na, loop ]
  %b = phi i64 [ i64 1, entry ], [ %nb, loop ]
  %na = add i64 %a, %b
  %nb = add i64 %b, i64 1
  %c = icmp slt %nb, %p0
  condbr %c, loop, exit
exit:
  ret %na
}
"#,
    )
    .unwrap();
    let f = m.func(m.func_by_name("f").unwrap());
    let mf = select_function(&m, f);
    let alloc = rolag_lower::allocate(&mf);
    assert_eq!(alloc.spills, 0, "four live values fit easily");
    assert!(measure_function(&m, f) > 0);
}

#[test]
fn sections_account_every_global_once() {
    let m = parse_module(
        r#"
module "s"
const @c1 : [4 x i32] = ints i32 [1,2,3,4]
const @c2 : [2 x i64] = ints i64 [5,6]
global @d1 : [8 x i8] = bytes [1,2,3,4,5,6,7,8]
global @d2 : i32 = zero
func @f() -> void {
entry:
  ret
}
"#,
    )
    .unwrap();
    let sizes = measure_module(&m);
    assert_eq!(sizes.rodata, 16 + 16);
    assert_eq!(sizes.data, 8 + 4);
    assert!(sizes.text >= 1);
}

#[test]
fn measurement_is_monotonic_under_unrolling() {
    // Unrolling duplicates code: the measured text must grow roughly
    // linearly with the factor.
    let text = r#"
module "m"
global @a : [64 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %q = gep i32, @a, %iv
  %t = trunc i32 %iv
  store %t, %q
  %ivn = add i64 %iv, i64 1
  %c = icmp slt %ivn, i64 64
  condbr %c, loop, exit
exit:
  ret
}
"#;
    let base = parse_module(text).unwrap();
    let size1 = measure_module(&base).text;
    let mut by4 = base.clone();
    rolag_transforms::unroll_module(&mut by4, 4);
    rolag_transforms::cleanup_module(&mut by4);
    let size4 = measure_module(&by4).text;
    let mut by8 = base.clone();
    rolag_transforms::unroll_module(&mut by8, 8);
    rolag_transforms::cleanup_module(&mut by8);
    let size8 = measure_module(&by8).text;
    assert!(size4 > 2 * size1, "x4 unroll should more than double");
    assert!(size8 > size4, "x8 bigger than x4");
    assert!(size8 < 4 * size4, "but not absurdly so");
}
