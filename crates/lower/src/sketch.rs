//! Persistent per-block lowering sketch: incremental [`measure_function`].
//!
//! [`measure_function`] re-runs instruction selection and the linear-scan
//! spill sizing over the whole function on every call. The RoLAG fixpoint
//! wants that number after every speculative rewrite, where a rewrite only
//! touches a small neighbourhood of blocks — so re-selecting the unchanged
//! blocks is pure waste. The [`SizeSketch`] keeps a per-block summary of
//! everything the measurement needs:
//!
//! * the block's encoded code bytes,
//! * whether it forces a stack frame (allocas),
//! * a compressed *pressure fragment* per value touched in the block —
//!   enough to rebuild the value's live interval without replaying the
//!   machine instruction stream.
//!
//! [`SizeSketch::measure`] re-selects only blocks with no summary (new or
//! invalidated), then recombines the fragments into the exact interval list
//! [`allocate`](crate::regalloc::allocate) would have built and runs the
//! same spill scan — the result is bit-equal to a fresh
//! [`measure_function`], enforced by tests here and by the rolag test
//! suite's measured-mode equivalence gates.
//!
//! Like `BlockSizeCache` on the estimate side, the sketch records the
//! [`Function::revision`] it describes: a lookup against a mutated function
//! that bypassed [`invalidate`](SizeSketch::invalidate) drops all summaries
//! instead of silently recombining stale ones, and
//! [`carry_to`](SizeSketch::carry_to) re-keys surviving summaries after a
//! caller has invalidated a commit's dirty neighbourhood.
//!
//! Two cross-block caveats, mirrored from the selector:
//!
//! * gep addressing-mode folding couples a block to its one-hop def-use
//!   neighbours *in both directions* (the gep's block charges 0 bytes when
//!   its users fold it; the users' load/store sizes embed the gep's
//!   displacement) — callers must invalidate that neighbourhood;
//! * jump sizes depend on block layout positions, which are append-only
//!   stable, so cached branch bytes survive new blocks.
//!
//! [`measure_function`]: crate::measure::measure_function

use std::collections::HashMap;
use std::sync::Arc;

use rolag_ir::{BlockId, Function, Module, ValueDef, ValueId};

use crate::isel::{select_block, select_context, MachineBlock, RegClass};
use crate::regalloc::{spill_scan, Interval};

/// One value's liveness contribution within a single block, relative to the
/// block's first instruction.
#[derive(Debug, Clone)]
struct Fragment {
    value: ValueId,
    class: RegClass,
    /// Instruction offset of the value's first event in this block.
    first_rel: usize,
    /// Whether that first event is the value's definition (else a use,
    /// which — if globally first — pins the interval to function entry).
    first_is_def: bool,
    /// Offset of the last *use* event, if the block uses the value.
    last_use_rel: Option<usize>,
    /// Number of use events in this block (spill reloads are priced per use).
    use_count: u32,
}

/// Everything [`SizeSketch::measure`] needs from one selected block.
#[derive(Debug, Clone)]
pub struct BlockSummary {
    code_bytes: u32,
    needs_frame: bool,
    inst_count: usize,
    frags: Vec<Fragment>,
}

/// The register class `allocate` would look up for `v`: instruction results
/// are classified by type; anything else (params) falls back to GPR, exactly
/// like the allocator's missing-entry default.
fn class_of(module: &Module, func: &Function, v: ValueId) -> RegClass {
    match func.value(v) {
        ValueDef::Inst(_) => {
            if module.types.is_float(func.value_ty(v, &module.types)) {
                RegClass::Xmm
            } else {
                RegClass::Gpr
            }
        }
        _ => RegClass::Gpr,
    }
}

/// Compresses a selected block into its measurement summary.
fn summarize(
    module: &Module,
    func: &Function,
    mb: &MachineBlock,
    needs_frame: bool,
) -> BlockSummary {
    let mut code_bytes = 0u32;
    let mut frags: Vec<Fragment> = Vec::new();
    let mut index: HashMap<ValueId, usize> = HashMap::new();
    let touch = |v: ValueId,
                 rel: usize,
                 is_def: bool,
                 frags: &mut Vec<Fragment>,
                 index: &mut HashMap<ValueId, usize>| {
        match index.get(&v) {
            Some(&slot) => {
                if !is_def {
                    frags[slot].last_use_rel = Some(rel);
                    frags[slot].use_count += 1;
                }
            }
            None => {
                index.insert(v, frags.len());
                frags.push(Fragment {
                    value: v,
                    class: class_of(module, func, v),
                    first_rel: rel,
                    first_is_def: is_def,
                    last_use_rel: if is_def { None } else { Some(rel) },
                    use_count: u32::from(!is_def),
                });
            }
        }
    };
    for (rel, inst) in mb.insts.iter().enumerate() {
        code_bytes += inst.size;
        if let Some(def) = inst.def {
            touch(def, rel, true, &mut frags, &mut index);
        }
        for &u in &inst.uses {
            touch(u, rel, false, &mut frags, &mut index);
        }
    }
    BlockSummary {
        code_bytes,
        needs_frame,
        inst_count: mb.insts.len(),
        frags,
    }
}

/// Revision-aware per-block store of [`BlockSummary`]s with an incremental,
/// bit-exact [`measure`](SizeSketch::measure).
/// Summaries are [`Arc`]-shared: cloning a sketch to trial a speculative
/// rewrite copies one pointer per block, so the fixpoint can fork a trial
/// sketch per candidate and adopt the winner's on commit without ever
/// duplicating fragment vectors. `invalidate` replaces the slot wholesale,
/// so shared summaries are never mutated in place.
#[derive(Debug, Clone, Default)]
pub struct SizeSketch {
    revision: Option<u64>,
    blocks: Vec<Option<Arc<BlockSummary>>>,
    /// Blocks whose summary was served from the sketch.
    pub hits: u64,
    /// Blocks that were (re-)selected and summarized.
    pub misses: u64,
}

impl SizeSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every summary if `func`'s revision does not match the recorded
    /// one, then binds the sketch to `func`'s revision.
    fn sync(&mut self, func: &Function) {
        if self.revision != Some(func.revision()) {
            self.blocks.clear();
            self.revision = Some(func.revision());
        }
    }

    /// Drops the summary of `block`.
    pub fn invalidate(&mut self, block: BlockId) {
        let i = block.index();
        if i < self.blocks.len() {
            self.blocks[i] = None;
        }
    }

    /// Re-keys the surviving summaries to `revision`, asserting the caller
    /// has already invalidated every block whose selection inputs changed —
    /// the changed blocks themselves plus their one-hop def-use
    /// neighbourhood (gep folding couples both directions).
    pub fn carry_to(&mut self, revision: u64) {
        self.revision = Some(revision);
    }

    /// Measured byte size of `func`: bit-equal to
    /// [`measure_function`](crate::measure::measure_function), re-selecting
    /// only blocks without a cached summary.
    pub fn measure(&mut self, module: &Module, func: &Function) -> u32 {
        if func.is_declaration {
            return 0;
        }
        self.sync(func);
        let n = func.num_blocks();
        if self.blocks.len() < n {
            self.blocks.resize(n, None);
        }

        // Re-select missing blocks, sharing one cross-block context.
        let missing: Vec<(usize, BlockId)> = func
            .block_ids()
            .enumerate()
            .filter(|&(i, _)| self.blocks[i].is_none())
            .collect();
        self.hits += (n - missing.len()) as u64;
        self.misses += missing.len() as u64;
        if !missing.is_empty() {
            let cx = select_context(module, func);
            let mut scratch_classes = HashMap::new();
            for (bpos, b) in missing {
                let (mb, frame) = select_block(module, func, &cx, bpos, b, &mut scratch_classes);
                self.blocks[bpos] = Some(Arc::new(summarize(module, func, &mb, frame)));
            }
        }

        // Recombine: merge per-block fragments into the flat interval list
        // `allocate` would build (same first-event order, so the spill
        // scan's tie-breaking agrees), then price frame and alignment like
        // `measure_function`.
        let mut index: HashMap<ValueId, usize> = HashMap::new();
        let mut ivs: Vec<Interval> = Vec::new();
        let mut base = 0usize;
        let mut code_bytes = 0u32;
        let mut needs_frame = false;
        for i in 0..n {
            let s = self.blocks[i].as_ref().expect("summary just populated");
            code_bytes += s.code_bytes;
            needs_frame |= s.needs_frame;
            for fr in &s.frags {
                match index.get(&fr.value) {
                    Some(&slot) => {
                        if let Some(r) = fr.last_use_rel {
                            ivs[slot].end = base + r;
                        }
                        ivs[slot].uses += fr.use_count;
                    }
                    None => {
                        index.insert(fr.value, ivs.len());
                        ivs.push(Interval {
                            start: if fr.first_is_def {
                                base + fr.first_rel
                            } else {
                                0
                            },
                            end: base + fr.last_use_rel.unwrap_or(fr.first_rel),
                            uses: fr.use_count,
                            class: fr.class,
                        });
                    }
                }
            }
            base += s.inst_count;
        }
        let alloc = spill_scan(ivs);
        let frame = if needs_frame || alloc.forces_frame {
            8
        } else {
            0
        };
        code_bytes + alloc.spill_bytes + frame + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_function;
    use rolag_ir::parser::parse_module;

    fn check(text: &str) {
        let m = parse_module(text).unwrap();
        for id in m.func_ids() {
            let f = m.func(id);
            let mut sketch = SizeSketch::new();
            assert_eq!(
                sketch.measure(&m, f),
                measure_function(&m, f),
                "cold sketch differs for @{}",
                f.name
            );
            // A second measure is served entirely from summaries.
            let misses = sketch.misses;
            assert_eq!(sketch.measure(&m, f), measure_function(&m, f));
            assert_eq!(sketch.misses, misses);
        }
    }

    #[test]
    fn matches_measure_function_on_varied_shapes() {
        check(
            r#"
module "t"
global @a : [16 x i32] = zero
func @f(i32 %p0) -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %2 = add i32 %1, i32 1
  %q = gep i32, @a, %1
  store %2, %q
  %3 = icmp slt %2, %p0
  condbr %3, loop, exit
exit:
  ret %2
}
func @g(double %p0) -> double {
entry:
  %a = fmul double %p0, double 2.0
  %b = fadd double %a, %p0
  ret %b
}
"#,
        );
    }

    #[test]
    fn matches_under_register_pressure() {
        // 20 simultaneously live sums force spills; the recombined interval
        // order must agree with `allocate` or spill choices diverge.
        let mut text = String::from("module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n");
        for i in 0..20 {
            text.push_str(&format!("  %v{i} = add i32 %p0, i32 {}\n", i + 1000));
        }
        text.push_str("  %s0 = add i32 %v0, %v1\n");
        for i in 1..19 {
            text.push_str(&format!("  %s{i} = add i32 %s{}, %v{}\n", i - 1, i + 1));
        }
        text.push_str("  ret %s18\n}\n");
        check(&text);
    }

    #[test]
    fn stale_revision_drops_summaries() {
        let mut m = parse_module(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, %p0
  %2 = mul i32 %1, %1
  ret %2
}
"#,
        )
        .unwrap();
        let id = m.func_by_name("f").unwrap();
        let mut sketch = SizeSketch::new();
        let before = sketch.measure(&m, m.func(id));
        // Mutate without invalidating: the revision check must recompute.
        let entry = rolag_ir::BlockId::from_index(0);
        let mul = m.func(id).block(entry).insts[1];
        m.func_mut(id).remove_inst(mul);
        let after = sketch.measure(&m, m.func(id));
        assert_eq!(after, measure_function(&m, m.func(id)));
        assert!(after < before);
    }

    #[test]
    fn invalidate_and_carry_reuse_clean_blocks() {
        let mut m = parse_module(
            r#"
module "t"
global @a : [8 x i32] = zero
global @b : [8 x i32] = zero
func @f(i32 %p0) -> void {
entry:
  %q = gep i32, @a, i64 0
  store %p0, %q
  br next
next:
  %r = gep i32, @b, i64 1
  store %p0, %r
  ret
}
"#,
        )
        .unwrap();
        let id = m.func_by_name("f").unwrap();
        let mut sketch = SizeSketch::new();
        sketch.measure(&m, m.func(id));
        // Drop the store in `next`; entry is disconnected from it except
        // through %p0 (a param, classless), so only `next` needs re-selection.
        let next = rolag_ir::BlockId::from_index(1);
        let store = m.func(id).block(next).insts[1];
        m.func_mut(id).remove_inst(store);
        sketch.invalidate(next);
        sketch.carry_to(m.func(id).revision());
        let misses = sketch.misses;
        assert_eq!(
            sketch.measure(&m, m.func(id)),
            measure_function(&m, m.func(id))
        );
        assert_eq!(sketch.misses, misses + 1, "only the dirty block re-selects");
    }
}
