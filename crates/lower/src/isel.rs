//! Instruction selection: IR → abstract x86-64 machine instructions with
//! byte sizes.
//!
//! The selector models the size-relevant behaviours of an `-Os` x86-64
//! backend:
//!
//! * `gep`s whose only users are loads/stores fold into addressing modes;
//! * multiplications by powers of two become shifts;
//! * `icmp` feeding a `condbr` fuses into `cmp` + `jcc`;
//! * immediates pick short encodings when they fit in 8 bits;
//! * backward (loop) jumps use the short `rel8` form, forward jumps the
//!   near `rel32` form.
//!
//! It intentionally disagrees in detail with the cheap TTI-style estimate in
//! `rolag-analysis` — the same gap a real backend has against LLVM's cost
//! model, which the paper identifies as the source of profitability false
//! positives (§V-A).

use std::collections::{HashMap, HashSet};

use rolag_ir::{BlockId, Function, InstExtra, InstId, Module, Opcode, TypeKind, ValueDef, ValueId};

/// Register class of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// General-purpose (integers, pointers).
    Gpr,
    /// SSE vector registers (floats).
    Xmm,
}

/// One selected machine instruction (we only track what sizing and register
/// allocation need).
#[derive(Debug, Clone)]
pub struct MachineInst {
    /// Encoded size in bytes.
    pub size: u32,
    /// Value defined, if any.
    pub def: Option<ValueId>,
    /// Values read.
    pub uses: Vec<ValueId>,
    /// Short mnemonic (debugging / tests).
    pub mnemonic: &'static str,
}

/// Machine code for one block.
#[derive(Debug, Clone)]
pub struct MachineBlock {
    /// Source IR block.
    pub block: BlockId,
    /// Selected instructions in order.
    pub insts: Vec<MachineInst>,
}

/// Machine code for one function, pre-register-allocation.
#[derive(Debug, Clone)]
pub struct MachineFunction {
    /// Blocks in layout order.
    pub blocks: Vec<MachineBlock>,
    /// Whether a stack frame is required (allocas present).
    pub needs_frame: bool,
    /// Register class per value (values that live in registers).
    pub reg_class: HashMap<ValueId, RegClass>,
}

impl MachineFunction {
    /// Sum of encoded instruction bytes (before spill code).
    pub fn code_bytes(&self) -> u32 {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .map(|i| i.size)
            .sum()
    }
}

fn const_int(func: &Function, v: ValueId) -> Option<i64> {
    func.value(v).as_const_int()
}

fn imm_size(value: i64) -> u32 {
    if (-128..=127).contains(&value) {
        1
    } else {
        4
    }
}

/// Which geps fold entirely into their users' addressing modes.
fn folded_geps(module: &Module, func: &Function) -> HashSet<InstId> {
    let uses = func.compute_uses();
    let mut folded = HashSet::new();
    for inst in func.live_insts() {
        let data = func.inst(inst);
        if data.opcode != Opcode::Gep {
            continue;
        }
        let InstExtra::Gep { elem_ty } = data.extra else {
            continue;
        };
        if data.operands.len() > 2 {
            continue;
        }
        let scale = module.types.size_of(elem_ty);
        if !matches!(scale, 1 | 2 | 4 | 8) {
            continue;
        }
        let users = uses.of(func.inst_result(inst));
        let all_mem = !users.is_empty()
            && users.iter().all(|&(u, idx)| {
                let ud = func.inst(u);
                (ud.opcode == Opcode::Load && idx == 0) || (ud.opcode == Opcode::Store && idx == 1)
            });
        if all_mem {
            folded.insert(inst);
        }
    }
    folded
}

/// Size of a memory operand (`modrm` + optional SIB + displacement),
/// given the address expression.
fn address_bytes(module: &Module, func: &Function, ptr: ValueId, folded: &HashSet<InstId>) -> u32 {
    match func.value(ptr) {
        // RIP-relative global: modrm + disp32.
        ValueDef::GlobalAddr(_) => 5,
        ValueDef::Inst(i) if folded.contains(i) => {
            let data = func.inst(*i);
            // base + index*scale (+disp): modrm + SIB, plus disp when the
            // index is a constant.
            match const_int(func, data.operands[1]) {
                Some(c) => {
                    let InstExtra::Gep { elem_ty } = data.extra else {
                        return 2;
                    };
                    let disp = c * module.types.size_of(elem_ty) as i64;
                    if disp == 0 {
                        2
                    } else {
                        1 + imm_size(disp)
                    }
                }
                None => 2,
            }
        }
        _ => 1,
    }
}

/// Function-wide context instruction selection needs beyond one block's
/// content: the set of folded geps and the layout position of every block
/// (for jump sizing). Both are derivable from the function alone, so a
/// caller re-selecting a single block (see [`crate::sketch`]) can rebuild
/// this without re-selecting the rest.
pub(crate) struct SelectCx {
    pub(crate) folded: HashSet<InstId>,
    pub(crate) block_pos: HashMap<BlockId, usize>,
}

/// Builds the cross-block selection context for `func`.
pub(crate) fn select_context(module: &Module, func: &Function) -> SelectCx {
    SelectCx {
        folded: folded_geps(module, func),
        block_pos: func.block_ids().enumerate().map(|(i, b)| (b, i)).collect(),
    }
}

/// Selects machine instructions for one block at layout position `bpos`.
/// Returns the selected block and whether it forces a stack frame (allocas).
/// Defined values are classified into `reg_class` as a side effect.
pub(crate) fn select_block(
    module: &Module,
    func: &Function,
    cx: &SelectCx,
    bpos: usize,
    b: BlockId,
    reg_class: &mut HashMap<ValueId, RegClass>,
) -> (MachineBlock, bool) {
    let folded = &cx.folded;
    let block_pos = &cx.block_pos;
    let classify = |func: &Function, v: ValueId| {
        let ty = func.value_ty(v, &module.types);
        let class = if module.types.is_float(ty) {
            RegClass::Xmm
        } else {
            RegClass::Gpr
        };
        (ty, class)
    };

    let mut needs_frame = false;
    let mut insts: Vec<MachineInst> = Vec::new();
    {
        let ir_insts = &func.block(b).insts;
        for (pos, &i) in ir_insts.iter().enumerate() {
            let data = func.inst(i);
            let result = func.inst_result(i);
            let mut reg_uses: Vec<ValueId> = data
                .operands
                .iter()
                .copied()
                .filter(|&v| matches!(func.value(v), ValueDef::Inst(_) | ValueDef::Param { .. }))
                .collect();
            let mut def = None;
            if !matches!(module.types.kind(data.ty), TypeKind::Void) {
                let (_, class) = classify(func, result);
                reg_class.insert(result, class);
                def = Some(result);
            }

            let mut push = |size: u32, mnemonic: &'static str, insts: &mut Vec<MachineInst>| {
                insts.push(MachineInst {
                    size,
                    def,
                    uses: std::mem::take(&mut reg_uses),
                    mnemonic,
                });
            };

            match data.opcode {
                Opcode::Add | Opcode::Sub | Opcode::And | Opcode::Or | Opcode::Xor => {
                    let size = match data.operands.iter().find_map(|&v| const_int(func, v)) {
                        Some(c) => 2 + imm_size(c),
                        None => 3,
                    };
                    push(size, "alu", &mut insts);
                }
                Opcode::Mul => {
                    let size = match data.operands.iter().find_map(|&v| const_int(func, v)) {
                        Some(c) if c > 0 && (c as u64).is_power_of_two() => 4, // shl
                        Some(c) => 3 + imm_size(c),                            // imul r, r, imm
                        None => 4,                                             // imul r, r
                    };
                    push(size, "mul", &mut insts);
                }
                Opcode::SDiv | Opcode::SRem => push(7, "idiv", &mut insts), // cqo + idiv
                Opcode::UDiv | Opcode::URem => push(6, "div", &mut insts),  // xor edx + div
                Opcode::Shl | Opcode::LShr | Opcode::AShr => {
                    let size = match const_int(func, data.operands[1]) {
                        Some(_) => 4,
                        None => 6, // mov cl + shift
                    };
                    push(size, "shift", &mut insts);
                }
                Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                    push(4, "sse", &mut insts);
                }
                Opcode::Icmp => {
                    let size = match data.operands.iter().find_map(|&v| const_int(func, v)) {
                        Some(c) => 2 + imm_size(c),
                        None => 3,
                    };
                    // Fuses with a consuming condbr; the jcc is charged
                    // there.
                    push(size, "cmp", &mut insts);
                }
                Opcode::Fcmp => push(4, "ucomis", &mut insts),
                Opcode::Select => push(9, "cmov", &mut insts), // test + cmov + mov
                Opcode::ZExt => push(3, "movzx", &mut insts),
                Opcode::SExt => push(4, "movsx", &mut insts),
                Opcode::Trunc | Opcode::Bitcast | Opcode::PtrToInt | Opcode::IntToPtr => {
                    push(0, "nop", &mut insts)
                }
                Opcode::FpToSi | Opcode::SiToFp => push(5, "cvt", &mut insts),
                Opcode::FpExt | Opcode::FpTrunc => push(4, "cvtss", &mut insts),
                Opcode::Alloca => {
                    needs_frame = true;
                    // Static slot: a lea to take its address.
                    push(4, "lea", &mut insts);
                }
                Opcode::Load => {
                    let addr = address_bytes(module, func, data.operands[0], folded);
                    push(2 + addr, "mov.load", &mut insts);
                }
                Opcode::Store => {
                    let addr = address_bytes(module, func, data.operands[1], folded);
                    let size = match const_int(func, data.operands[0]) {
                        Some(c) => 2 + addr + imm_size(c).max(1),
                        None => 2 + addr,
                    };
                    push(size, "mov.store", &mut insts);
                }
                Opcode::Gep => {
                    if folded.contains(&i) {
                        push(0, "fold", &mut insts);
                    } else {
                        // lea with base+index*scale or an add for byte
                        // arithmetic.
                        push(4, "lea", &mut insts);
                    }
                }
                Opcode::Call => push(5, "call", &mut insts),
                Opcode::Phi => {
                    // Lowered as a move on each incoming edge; charge one
                    // move here (the other typically coalesces away).
                    push(3, "phi.mov", &mut insts);
                }
                Opcode::Br => {
                    let InstExtra::Br { dest } = data.extra else {
                        unreachable!()
                    };
                    let backward = block_pos[&dest] <= bpos;
                    // Fallthrough to the next block costs nothing.
                    let size = if block_pos[&dest] == bpos + 1 {
                        0
                    } else if backward {
                        2
                    } else {
                        5
                    };
                    push(size, "jmp", &mut insts);
                }
                Opcode::CondBr => {
                    let InstExtra::CondBr { then_dest, .. } = data.extra else {
                        unreachable!()
                    };
                    let backward = block_pos[&then_dest] <= bpos;
                    let size = if backward { 2 } else { 6 };
                    push(size, "jcc", &mut insts);
                }
                Opcode::Ret => push(1, "ret", &mut insts),
                Opcode::Unreachable => push(1, "ud2", &mut insts),
            }
            let _ = pos;
        }
    }
    (MachineBlock { block: b, insts }, needs_frame)
}

/// Selects machine instructions for `func`.
pub fn select_function(module: &Module, func: &Function) -> MachineFunction {
    let cx = select_context(module, func);
    let mut reg_class: HashMap<ValueId, RegClass> = HashMap::new();
    let mut needs_frame = false;
    let mut blocks = Vec::new();
    for (bpos, b) in func.block_ids().enumerate() {
        let (mb, frame) = select_block(module, func, &cx, bpos, b, &mut reg_class);
        needs_frame |= frame;
        blocks.push(mb);
    }
    MachineFunction {
        blocks,
        needs_frame,
        reg_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn select(text: &str) -> (Module, MachineFunction) {
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let mf = select_function(&m, f);
        (m.clone(), mf)
    }

    #[test]
    fn folded_gep_has_no_code() {
        let (_m, mf) = select(
            r#"
module "t"
global @g : [8 x i32] = zero
func @f(i64 %p0) -> i32 {
entry:
  %p = gep i32, @g, %p0
  %v = load i32, %p
  ret %v
}
"#,
        );
        let sizes: Vec<(&str, u32)> = mf.blocks[0]
            .insts
            .iter()
            .map(|i| (i.mnemonic, i.size))
            .collect();
        assert_eq!(sizes[0], ("fold", 0));
        assert_eq!(sizes[1].0, "mov.load");
        assert!(sizes[1].1 >= 4);
    }

    #[test]
    fn short_vs_long_immediates() {
        let (_m, mf) = select(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %a = add i32 %p0, i32 5
  %b = add i32 %a, i32 100000
  ret %b
}
"#,
        );
        let alu: Vec<u32> = mf.blocks[0]
            .insts
            .iter()
            .filter(|i| i.mnemonic == "alu")
            .map(|i| i.size)
            .collect();
        assert_eq!(alu, vec![3, 6]);
    }

    #[test]
    fn power_of_two_mul_is_a_shift() {
        let (_m, mf) = select(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %a = mul i32 %p0, i32 8
  %b = mul i32 %a, i32 100
  ret %b
}
"#,
        );
        let muls: Vec<u32> = mf.blocks[0]
            .insts
            .iter()
            .filter(|i| i.mnemonic == "mul")
            .map(|i| i.size)
            .collect();
        assert_eq!(muls[0], 4);
        assert!(muls[1] >= 4);
    }

    #[test]
    fn backward_jumps_are_short() {
        let (_m, mf) = select(
            r#"
module "t"
func @f(i32 %p0) -> void {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, %p0
  condbr %3, loop, exit
exit:
  ret
}
"#,
        );
        // entry's br falls through; loop's jcc is backward -> 2 bytes.
        let entry_br = mf.blocks[0].insts.last().unwrap();
        assert_eq!(entry_br.size, 0);
        let jcc = mf.blocks[1]
            .insts
            .iter()
            .find(|i| i.mnemonic == "jcc")
            .unwrap();
        assert_eq!(jcc.size, 2);
    }

    #[test]
    fn allocas_force_a_frame() {
        let (_m, mf) =
            select("module \"t\"\nfunc @f() -> ptr {\nentry:\n  %a = alloca i64\n  ret %a\n}\n");
        assert!(mf.needs_frame);
    }

    #[test]
    fn float_values_use_xmm_class() {
        let (_m, mf) = select(
            r#"
module "t"
func @f(double %p0) -> double {
entry:
  %a = fmul double %p0, double 2.0
  ret %a
}
"#,
        );
        assert!(mf.reg_class.values().any(|&c| c == RegClass::Xmm));
    }
}
