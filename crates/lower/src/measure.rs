//! Object-size measurement: the project's substitute for `size(1)` on a
//! real `.o` file. Every table and figure of the evaluation reports these
//! numbers.

use rolag_ir::{FuncId, Module};

use crate::isel::select_function;
use crate::regalloc::allocate;

/// Section sizes of a lowered module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectSizes {
    /// Executable code bytes.
    pub text: u64,
    /// Read-only data (constant globals).
    pub rodata: u64,
    /// Mutable data / bss (non-constant globals).
    pub data: u64,
}

impl ObjectSizes {
    /// `text + rodata` — the footprint loop rolling trades against (rolled
    /// code may shrink text while adding constant arrays to rodata).
    pub fn code_footprint(&self) -> u64 {
        self.text + self.rodata
    }
}

/// Measured byte size of one function: selected code + spill code +
/// prologue/epilogue.
pub fn measure_function(module: &Module, func: &rolag_ir::Function) -> u32 {
    if func.is_declaration {
        return 0;
    }
    let mf = select_function(module, func);
    let alloc = allocate(&mf);
    let frame = if mf.needs_frame || alloc.forces_frame {
        8 // push rbp; mov rbp,rsp; sub rsp; leave
    } else {
        0
    };
    mf.code_bytes() + alloc.spill_bytes + frame + 1 // +1 alignment slack
}

/// Measured byte size of the function with the given id.
pub fn measure_function_id(module: &Module, id: FuncId) -> u32 {
    measure_function(module, module.func(id))
}

/// Measures all sections of the module.
pub fn measure_module(module: &Module) -> ObjectSizes {
    let mut sizes = ObjectSizes::default();
    for f in module.func_ids() {
        sizes.text += measure_function(module, module.func(f)) as u64;
    }
    for g in module.global_ids() {
        let bytes = module.global_size(g);
        if module.global(g).is_const {
            sizes.rodata += bytes;
        } else {
            sizes.data += bytes;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    #[test]
    fn measure_is_deterministic_and_positive() {
        let text = r#"
module "t"
const @tab : [4 x i32] = ints i32 [1,2,3,4]
global @buf : [16 x i32] = zero
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 1
  ret %1
}
"#;
        let m = parse_module(text).unwrap();
        let a = measure_module(&m);
        let b = measure_module(&m);
        assert_eq!(a, b);
        assert!(a.text > 0);
        assert_eq!(a.rodata, 16);
        assert_eq!(a.data, 64);
        assert_eq!(a.code_footprint(), a.text + 16);
    }

    #[test]
    fn more_code_measures_bigger() {
        let small = parse_module("module \"t\"\nfunc @f() -> void {\nentry:\n  ret\n}\n").unwrap();
        let mut big_text = String::from(
            "module \"t\"\nglobal @g : [64 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..32 {
            big_text.push_str(&format!("  %q{i} = gep i32, @g, i64 {i}\n"));
            big_text.push_str(&format!("  store i32 {i}, %q{i}\n"));
        }
        big_text.push_str("  ret\n}\n");
        let big = parse_module(&big_text).unwrap();
        assert!(measure_module(&big).text > 10 * measure_module(&small).text);
    }

    #[test]
    fn measured_and_estimated_sizes_differ_in_detail() {
        // The TTI estimate and the lowering measurement must broadly agree
        // but not be identical — their divergence drives the paper's
        // profitability false positives.
        let text = r#"
module "t"
global @g : [16 x i64] = zero
func @f(i64 %p0) -> i64 {
entry:
  %a = mul i64 %p0, i64 8
  %b = add i64 %a, i64 1000000
  %q = gep i64, @g, %b
  %v = load i64, %q
  ret %v
}
"#;
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let measured = measure_function(&m, f);
        let estimated =
            rolag_analysis::cost::function_size_estimate(&rolag_analysis::X86SizeModel, &m, f);
        assert!(measured > 0 && estimated > 0);
        // Same ballpark (within 3x), but not equal by construction here.
        assert!((measured as f64) < 3.0 * estimated as f64);
        assert!((estimated as f64) < 3.0 * measured as f64);
        assert_ne!(measured, estimated);
    }
}
