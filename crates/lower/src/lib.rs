//! # rolag-lower
//!
//! A binary lowering *simulator* for x86-64: instruction selection with
//! addressing-mode folding ([`isel`]), linear-scan register allocation with
//! spill sizing ([`regalloc`]), and object-section measurement
//! ([`measure`]).
//!
//! This crate is the project's substitute for the real backend + `size(1)`
//! used in the paper's evaluation: every table and figure reports byte
//! sizes produced here. It intentionally disagrees *in detail* with the
//! cheap TTI-style estimate in `rolag-analysis` — that gap reproduces the
//! profitability false positives discussed in §V-A of the paper.
//!
//! ```
//! use rolag_ir::parser::parse_module;
//! use rolag_lower::measure_module;
//!
//! let m = parse_module(
//!     "module \"t\"\nfunc @f() -> void {\nentry:\n  ret\n}\n",
//! ).unwrap();
//! let sizes = measure_module(&m);
//! assert!(sizes.text > 0);
//! ```

#![warn(missing_docs)]

pub mod isel;
pub mod measure;
pub mod regalloc;
pub mod sketch;

pub use isel::{select_function, MachineFunction, RegClass};
pub use measure::{measure_function, measure_function_id, measure_module, ObjectSizes};
pub use regalloc::{allocate, AllocResult};
pub use sketch::SizeSketch;
