//! Linear-scan register allocation — spill sizing only.
//!
//! We do not need actual register assignments, only the *bytes of spill
//! code* that register pressure forces, since that is what shows up in
//! object size. Live intervals are approximated over the linear layout
//! order; whenever pressure in a class exceeds its budget, the interval with
//! the furthest end is spilled (Poletto-Sarkar heuristic) and its store +
//! reload bytes are charged.

use std::collections::HashMap;

use rolag_ir::ValueId;

use crate::isel::{MachineFunction, RegClass};

/// Available registers per class (x86-64 SysV, minus reserved).
const GPR_BUDGET: usize = 11;
const XMM_BUDGET: usize = 14;

/// Result of the allocation pass.
#[derive(Debug, Clone, Default)]
pub struct AllocResult {
    /// Number of spilled intervals.
    pub spills: u32,
    /// Bytes of spill stores and reloads added to the function.
    pub spill_bytes: u32,
    /// Whether spilling forces a stack frame.
    pub forces_frame: bool,
}

/// A live interval over the flat instruction index space.
#[derive(Debug, Clone)]
pub(crate) struct Interval {
    pub(crate) start: usize,
    pub(crate) end: usize,
    pub(crate) uses: u32,
    pub(crate) class: RegClass,
}

/// Computes spill cost for one machine function.
pub fn allocate(mf: &MachineFunction) -> AllocResult {
    // Build intervals over the flat instruction index space, in first-event
    // order so the scan below is deterministic across processes (a HashMap
    // iteration order here would make same-start tie-breaking depend on the
    // hasher seed).
    let mut index: HashMap<ValueId, usize> = HashMap::new();
    let mut ivs: Vec<Interval> = Vec::new();
    let mut idx = 0usize;
    for block in &mf.blocks {
        for inst in &block.insts {
            if let Some(def) = inst.def {
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(def) {
                    let class = mf.reg_class.get(&def).copied().unwrap_or(RegClass::Gpr);
                    e.insert(ivs.len());
                    ivs.push(Interval {
                        start: idx,
                        end: idx,
                        uses: 0,
                        class,
                    });
                }
            }
            for &u in &inst.uses {
                if let Some(&slot) = index.get(&u) {
                    ivs[slot].end = idx;
                    ivs[slot].uses += 1;
                } else {
                    // Used before any def in layout order (params, or values
                    // live around a loop): live from function entry.
                    let class = mf.reg_class.get(&u).copied().unwrap_or(RegClass::Gpr);
                    index.insert(u, ivs.len());
                    ivs.push(Interval {
                        start: 0,
                        end: idx,
                        uses: 1,
                        class,
                    });
                }
            }
            idx += 1;
        }
    }
    // Loop-carried values (phi inputs defined later than a use) need their
    // intervals extended to their definition.
    // (The map above already extends ends monotonically; starts stay at the
    // first event, which over-approximates pressure slightly — fine for
    // sizing.)
    spill_scan(ivs)
}

/// Linear scan over the intervals, charging spill bytes whenever a class
/// exceeds its budget. Shared by [`allocate`] and the incremental
/// [`crate::sketch`] recombiner — both must produce identical results, so
/// the interval list must arrive in first-event order.
pub(crate) fn spill_scan(mut ivs: Vec<Interval>) -> AllocResult {
    ivs.sort_by_key(|iv| iv.start);

    let mut result = AllocResult::default();
    for (class, budget) in [(RegClass::Gpr, GPR_BUDGET), (RegClass::Xmm, XMM_BUDGET)] {
        let mut active: Vec<(usize, u32)> = Vec::new(); // (end, uses)
        for iv in ivs.iter().filter(|iv| iv.class == class) {
            active.retain(|&(end, _)| end >= iv.start);
            active.push((iv.end, iv.uses));
            if active.len() > budget {
                // Spill the furthest-ending active interval.
                let (far_idx, _) = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(end, _))| end)
                    .expect("non-empty active set");
                let (_, uses) = active.remove(far_idx);
                result.spills += 1;
                // One store (mov [rbp-k], r ≈ 4B) plus one reload per use
                // (mov r, [rbp-k] ≈ 4B).
                result.spill_bytes += 4 + 4 * uses;
                result.forces_frame = true;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::select_function;
    use rolag_ir::parser::parse_module;

    fn alloc_of(text: &str) -> AllocResult {
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        allocate(&select_function(&m, f))
    }

    #[test]
    fn small_functions_do_not_spill() {
        let r = alloc_of(
            r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %a = add i32 %p0, %p1
  %b = mul i32 %a, %p0
  ret %b
}
"#,
        );
        assert_eq!(r.spills, 0);
        assert_eq!(r.spill_bytes, 0);
    }

    #[test]
    fn extreme_pressure_spills() {
        // 20 simultaneously live sums, all used at the end.
        let mut text = String::from("module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n");
        for i in 0..20 {
            text.push_str(&format!("  %v{i} = add i32 %p0, i32 {}\n", i + 1000));
        }
        // Chain everything together so all 20 stay live.
        text.push_str("  %s0 = add i32 %v0, %v1\n");
        for i in 1..19 {
            text.push_str(&format!("  %s{i} = add i32 %s{}, %v{}\n", i - 1, i + 1));
        }
        text.push_str("  ret %s18\n}\n");
        let r = alloc_of(&text);
        assert!(r.spills > 0, "20 live values exceed 11 GPRs");
        assert!(r.spill_bytes >= 8 * r.spills);
        assert!(r.forces_frame);
    }

    #[test]
    fn sequential_reuse_does_not_spill() {
        // The same number of values, but each dies immediately.
        let mut text = String::from(
            "module \"t\"\nglobal @g : [32 x i32] = zero\nfunc @f(i32 %p0) -> void {\nentry:\n",
        );
        for i in 0..20 {
            text.push_str(&format!("  %v{i} = add i32 %p0, i32 {i}\n"));
            text.push_str(&format!("  %q{i} = gep i32, @g, i64 {i}\n"));
            text.push_str(&format!("  store %v{i}, %q{i}\n"));
        }
        text.push_str("  ret\n}\n");
        let r = alloc_of(&text);
        assert_eq!(r.spills, 0);
    }

    #[test]
    fn classes_are_independent() {
        // 8 live doubles + 8 live ints fit their separate budgets.
        let mut text =
            String::from("module \"t\"\nfunc @f(i32 %p0, double %p1) -> i32 {\nentry:\n");
        for i in 0..8 {
            text.push_str(&format!("  %x{i} = add i32 %p0, i32 {i}\n"));
            text.push_str(&format!("  %f{i} = fadd double %p1, double {i}.5\n"));
        }
        text.push_str("  %sx0 = add i32 %x0, %x1\n");
        for i in 1..7 {
            text.push_str(&format!("  %sx{i} = add i32 %sx{}, %x{}\n", i - 1, i + 1));
        }
        text.push_str("  %sf0 = fadd double %f0, %f1\n");
        for i in 1..7 {
            text.push_str(&format!(
                "  %sf{i} = fadd double %sf{}, %f{}\n",
                i - 1,
                i + 1
            ));
        }
        text.push_str("  %c = fptosi i32 %sf6\n  %r = add i32 %sx6, %c\n  ret %r\n}\n");
        let r = alloc_of(&text);
        assert_eq!(r.spills, 0);
    }
}
