//! # rolag-par
//!
//! A dependency-free scoped worker pool shared by the pass driver and the
//! benchmark harness (promoted out of `rolag-bench`).
//!
//! Design points:
//!
//! * **Order preservation.** Results come back in item order regardless of
//!   which worker computed them, so parallel runs are drop-in replacements
//!   for serial loops.
//! * **Lock-free result collection.** Each worker appends `(index, result)`
//!   pairs to its own buffer; buffers are merged after the scope joins.
//!   There are no per-slot mutexes and no contention beyond the single
//!   atomic work counter.
//! * **Panic propagation.** If a worker panics, the *original* panic
//!   payload is re-raised on the calling thread once all workers have
//!   stopped, instead of dying later on a misleading "slot unfilled"
//!   expectation.
//! * **Per-worker state.** [`par_map_with`] gives every worker a private
//!   state value built by an `init` closure (e.g. a scratch module clone)
//!   and hands the states back to the caller for deterministic merging.

#![warn(missing_docs)]

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers to use for `len` items when the caller asked for
/// `jobs` (`0` = one per available core). Always in `1..=len.max(1)`.
pub fn effective_jobs(jobs: usize, len: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let requested = if jobs == 0 { hw } else { jobs };
    requested.clamp(1, len.max(1))
}

/// Runs `job` over `items` on a pool of workers, preserving item order.
///
/// Equivalent to `items.iter().map(|t| job(t)).collect()`, up to wall-clock
/// time. A panicking `job` aborts the pool and re-raises the original
/// panic payload on the caller.
pub fn par_map<T, R, F>(items: Vec<T>, job: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_with(&items, 0, || (), |(), _idx, item| job(item));
    results
}

/// Like [`par_map`], but every worker owns a private state created by
/// `init`, and the per-worker states are returned alongside the ordered
/// results (in worker order) for the caller to merge.
///
/// `job` receives `(worker state, item index, item)`. Work is distributed
/// dynamically through an atomic counter, so the mapping from items to
/// workers is nondeterministic — callers that need determinism must make
/// `job`'s result independent of the worker state's history, or merge the
/// returned states in a canonical order.
pub fn par_map_with<T, R, S, I, F>(items: &[T], jobs: usize, init: I, job: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = effective_jobs(jobs, items.len());
    if items.is_empty() {
        return (Vec::new(), Vec::new());
    }

    let next = AtomicUsize::new(0);
    // One (state, results) pair per worker; moved back out of the scope.
    let mut per_worker: Vec<(S, Vec<(usize, R)>)> = Vec::with_capacity(workers);
    let mut panic_payload = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let init = &init;
                let job = &job;
                scope.spawn(move || {
                    let mut state = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, job(&mut state, i, &items[i])));
                    }
                    (state, out)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pair) => per_worker.push(pair),
                // Keep the first panic; keep joining so no worker outlives
                // the scope while we unwind.
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
    });

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut states = Vec::with_capacity(per_worker.len());
    for (state, pairs) in per_worker {
        states.push(state);
        for (i, r) in pairs {
            debug_assert!(results[i].is_none(), "item {i} produced twice");
            results[i] = Some(r);
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("work counter covered every item"))
        .collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(Vec::<u8>::new(), |&x| x).is_empty());
        assert_eq!(par_map(vec![7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn propagates_the_original_panic_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map((0..64).collect::<Vec<u32>>(), |&x| {
                if x == 13 {
                    panic!("unlucky item 13");
                }
                x
            });
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert!(
            msg.contains("unlucky item 13"),
            "original payload lost: {msg}"
        );
    }

    #[test]
    fn worker_states_are_returned() {
        let items: Vec<usize> = (0..100).collect();
        let (results, states) = par_map_with(
            &items,
            4,
            || 0usize,
            |count, _i, &x| {
                *count += 1;
                x + 1
            },
        );
        assert_eq!(results, (1..=100).collect::<Vec<_>>());
        assert_eq!(states.iter().sum::<usize>(), 100, "every item counted once");
        assert!(states.len() <= 4);
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert_eq!(effective_jobs(0, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }
}
