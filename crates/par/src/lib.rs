//! # rolag-par
//!
//! A dependency-free scoped worker pool shared by the pass driver and the
//! benchmark harness (promoted out of `rolag-bench`).
//!
//! Design points:
//!
//! * **Order preservation.** Results come back in item order regardless of
//!   which worker computed them, so parallel runs are drop-in replacements
//!   for serial loops.
//! * **Lock-free result collection.** Each worker appends `(index, result)`
//!   pairs to its own buffer; buffers are merged after the scope joins.
//!   There are no per-slot mutexes and no contention beyond the single
//!   atomic work counter.
//! * **Panic propagation.** If a worker panics, the *original* panic
//!   payload is re-raised on the calling thread once all workers have
//!   stopped, instead of dying later on a misleading "slot unfilled"
//!   expectation.
//! * **Per-worker state.** [`par_map_with`] gives every worker a private
//!   state value built by an `init` closure (e.g. a scratch module clone)
//!   and hands the states back to the caller for deterministic merging.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of workers to use for `len` items when the caller asked for
/// `jobs` (`0` = one per available core). Always in `1..=len.max(1)`.
pub fn effective_jobs(jobs: usize, len: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let requested = if jobs == 0 { hw } else { jobs };
    requested.clamp(1, len.max(1))
}

/// Runs `job` over `items` on a pool of workers, preserving item order.
///
/// Equivalent to `items.iter().map(|t| job(t)).collect()`, up to wall-clock
/// time. A panicking `job` aborts the pool and re-raises the original
/// panic payload on the caller.
pub fn par_map<T, R, F>(items: Vec<T>, job: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_with(&items, 0, || (), |(), _idx, item| job(item));
    results
}

/// Like [`par_map`], but every worker owns a private state created by
/// `init`, and the per-worker states are returned alongside the ordered
/// results (in worker order) for the caller to merge.
///
/// `job` receives `(worker state, item index, item)`. Work is distributed
/// dynamically through an atomic counter, so the mapping from items to
/// workers is nondeterministic — callers that need determinism must make
/// `job`'s result independent of the worker state's history, or merge the
/// returned states in a canonical order.
pub fn par_map_with<T, R, S, I, F>(items: &[T], jobs: usize, init: I, job: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = effective_jobs(jobs, items.len());
    if items.is_empty() {
        return (Vec::new(), Vec::new());
    }

    let next = AtomicUsize::new(0);
    // One (state, results) pair per worker; moved back out of the scope.
    let mut per_worker: Vec<(S, Vec<(usize, R)>)> = Vec::with_capacity(workers);
    let mut panic_payload = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let init = &init;
                let job = &job;
                scope.spawn(move || {
                    let mut state = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, job(&mut state, i, &items[i])));
                    }
                    (state, out)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pair) => per_worker.push(pair),
                // Keep the first panic; keep joining so no worker outlives
                // the scope while we unwind.
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
    });

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut states = Vec::with_capacity(per_worker.len());
    for (state, pairs) in per_worker {
        states.push(state);
        for (i, r) in pairs {
            debug_assert!(results[i].is_none(), "item {i} produced twice");
            results[i] = Some(r);
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("work counter covered every item"))
        .collect();
    (results, states)
}

/// A queued unit of work. `'static` because pool threads outlive any one
/// submission; [`WorkerPool::map_with`] erases shorter borrow lifetimes and
/// restores soundness by blocking until every erased task has finished.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
}

/// A persistent worker pool: threads are spawned once and reused across
/// any number of [`map_with`](WorkerPool::map_with) calls, avoiding the
/// per-batch spawn/join cost of [`par_map_with`] for long-lived processes
/// (the `rolag-serve` daemon keeps one pool for its whole lifetime).
///
/// Multiple caller threads may submit maps concurrently; their tasks share
/// the queue and drain on whichever workers free up first. Do **not** call
/// [`map_with`](WorkerPool::map_with) from inside a pool task — a full
/// queue would then deadlock waiting on its own worker.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// One worker's contribution to a map: its private state plus the
/// `(item index, result)` pairs it computed.
type WorkerYield<S, R> = (S, Vec<(usize, R)>);

impl WorkerPool {
    /// Spawns a pool of `jobs` workers (`0` = one per available core).
    pub fn new(jobs: usize) -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let count = if jobs == 0 { hw } else { jobs };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let task = {
                        let mut st = shared.state.lock().unwrap();
                        loop {
                            if let Some(t) = st.queue.pop_front() {
                                break Some(t);
                            }
                            if st.shutdown {
                                break None;
                            }
                            st = shared.ready.wait(st).unwrap();
                        }
                    };
                    match task {
                        Some(t) => t(),
                        None => break,
                    }
                })
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// [`par_map_with`] semantics on the persistent pool: ordered results,
    /// per-worker states handed back for canonical merging, first panic
    /// payload re-raised on the caller after every task has stopped.
    pub fn map_with<T, R, S, I, F>(&self, items: &[T], init: I, job: F) -> (Vec<R>, Vec<S>)
    where
        T: Sync,
        R: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let tasks = self.workers.len().min(items.len()).max(1);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<WorkerYield<S, R>>> = Mutex::new(Vec::with_capacity(tasks));
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let latch = Latch {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
        };

        {
            let mut st = self.shared.state.lock().unwrap();
            for _ in 0..tasks {
                let run = || {
                    // The guard decrements the latch even if anything below
                    // unwinds, so the submitting thread can never hang.
                    let _guard = LatchGuard { latch: &latch };
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, job(&mut state, i, &items[i])));
                        }
                        (state, out)
                    }));
                    match result {
                        Ok(pair) => collected.lock().unwrap().push(pair),
                        Err(payload) => {
                            let mut slot = panic_slot.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            // Drain remaining work so sibling tasks stop early.
                            next.store(items.len(), Ordering::Relaxed);
                        }
                    }
                };
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(run);
                // SAFETY: the task borrows stack locals of this call frame
                // (`next`, `collected`, `panic_slot`, `latch`, plus `items`,
                // `init`, `job`). We transmute the borrow lifetime away to
                // fit the queue's `'static` task type, and re-establish
                // soundness by blocking on `latch` below: this function does
                // not return (or unwind — the waits cannot panic) until every
                // task queued here has run its `LatchGuard` destructor, so no
                // borrow outlives its referent.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
                st.queue.push_back(task);
            }
            drop(st);
            self.shared.ready.notify_all();
        }

        latch.wait();

        if let Some(payload) = panic_slot.lock().unwrap().take() {
            resume_unwind(payload);
        }

        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut states = Vec::with_capacity(tasks);
        for (state, pairs) in collected.into_inner().unwrap() {
            states.push(state);
            for (i, r) in pairs {
                debug_assert!(results[i].is_none(), "item {i} produced twice");
                results[i] = Some(r);
            }
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("work counter covered every item"))
            .collect();
        (results, states)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// Decrements the latch on drop — including during an unwind — so a
/// panicking task can never leave the submitter blocked.
struct LatchGuard<'a> {
    latch: &'a Latch,
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        let mut left = match self.latch.remaining.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *left -= 1;
        if *left == 0 {
            self.latch.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(Vec::<u8>::new(), |&x| x).is_empty());
        assert_eq!(par_map(vec![7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn propagates_the_original_panic_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map((0..64).collect::<Vec<u32>>(), |&x| {
                if x == 13 {
                    panic!("unlucky item 13");
                }
                x
            });
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert!(
            msg.contains("unlucky item 13"),
            "original payload lost: {msg}"
        );
    }

    #[test]
    fn worker_states_are_returned() {
        let items: Vec<usize> = (0..100).collect();
        let (results, states) = par_map_with(
            &items,
            4,
            || 0usize,
            |count, _i, &x| {
                *count += 1;
                x + 1
            },
        );
        assert_eq!(results, (1..=100).collect::<Vec<_>>());
        assert_eq!(states.iter().sum::<usize>(), 100, "every item counted once");
        assert!(states.len() <= 4);
    }

    #[test]
    fn pool_matches_par_map_with_and_is_reusable() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let items: Vec<usize> = (0..500).collect();
        for _ in 0..3 {
            let (results, states) = pool.map_with(
                &items,
                || 0usize,
                |count, _i, &x| {
                    *count += 1;
                    x * 3
                },
            );
            assert_eq!(results, (0..500).map(|x| x * 3).collect::<Vec<_>>());
            assert_eq!(states.iter().sum::<usize>(), 500);
            assert!(states.len() <= 4);
        }
        let (empty, states) = pool.map_with(&[] as &[u8], || (), |(), _, &x| x);
        assert!(empty.is_empty() && states.is_empty());
    }

    #[test]
    fn pool_propagates_panics_and_survives_them() {
        let pool = WorkerPool::new(3);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_with(
                &items,
                || (),
                |(), _, &x| {
                    if x == 21 {
                        panic!("unlucky item 21");
                    }
                    x
                },
            );
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("unlucky item 21"), "payload lost: {msg}");
        // The pool is still serviceable after a panicking batch.
        let (ok, _) = pool.map_with(&items, || (), |(), _, &x| x + 1);
        assert_eq!(ok, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_serves_concurrent_submitters() {
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..4u64)
                .map(|k| {
                    scope.spawn(move || {
                        let items: Vec<u64> = (0..200).collect();
                        let (out, _) = pool.map_with(&items, || (), |(), _, &x| x + k);
                        assert_eq!(out, (k..200 + k).collect::<Vec<_>>());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert_eq!(effective_jobs(0, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }
}
