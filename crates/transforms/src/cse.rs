//! Local common-subexpression elimination.
//!
//! A block-local value-numbering pass over pure instructions plus
//! redundant-load elimination with conservative invalidation. This models
//! the piece of the `-Os` pipeline the paper blames for defeating LLVM's
//! rerolling: "loop unrolling tends to enable other optimizations, such as
//! common sub-expression elimination, limiting LLVM's ability to reroll the
//! loop" (§V-C). Deduplicating loop-invariant subexpressions across unrolled
//! iterations makes the iterations structurally unequal — fatal for the
//! baseline's strict isomorphism check, while RoLAG represents the shared
//! value as an identical node.

use std::collections::HashMap;

use rolag_analysis::alias::may_alias;
use rolag_ir::{BlockId, Effects, Function, InstExtra, InstId, Module, Opcode, TypeId, ValueId};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExtraKey {
    None,
    Icmp(rolag_ir::IntPredicate),
    Fcmp(u8),
    Gep(TypeId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExprKey {
    opcode: Opcode,
    ty: TypeId,
    operands: Vec<ValueId>,
    extra: ExtraKey,
}

fn key_of(func: &Function, inst: InstId) -> Option<ExprKey> {
    let data = func.inst(inst);
    let cse_able = data.opcode.is_binop()
        || data.opcode.is_cast()
        || matches!(
            data.opcode,
            Opcode::Gep | Opcode::Icmp | Opcode::Fcmp | Opcode::Select
        );
    if !cse_able {
        return None;
    }
    let extra = match &data.extra {
        InstExtra::None => ExtraKey::None,
        InstExtra::Icmp(p) => ExtraKey::Icmp(*p),
        InstExtra::Fcmp(p) => ExtraKey::Fcmp(*p as u8),
        InstExtra::Gep { elem_ty } => ExtraKey::Gep(*elem_ty),
        _ => return None,
    };
    Some(ExprKey {
        opcode: data.opcode,
        ty: data.ty,
        operands: data.operands.clone(),
        extra,
    })
}

/// Runs CSE over one block. Returns the number of instructions removed.
pub fn cse_block(module: &Module, func: &mut Function, block: BlockId) -> usize {
    let mut exprs: HashMap<ExprKey, ValueId> = HashMap::new();
    // Available loads: (ptr, ty) -> value, invalidated by clobbers.
    let mut loads: HashMap<(ValueId, TypeId), ValueId> = HashMap::new();
    let mut removed = 0;
    let insts: Vec<InstId> = func.block(block).insts.clone();
    for inst in insts {
        if !func.is_live(inst) {
            continue;
        }
        let data = func.inst(inst).clone();
        match data.opcode {
            Opcode::Load => {
                let lkey = (data.operands[0], data.ty);
                if let Some(&prev) = loads.get(&lkey) {
                    let result = func.inst_result(inst);
                    func.replace_all_uses(result, prev);
                    func.remove_inst(inst);
                    removed += 1;
                } else {
                    loads.insert(lkey, func.inst_result(inst));
                }
            }
            Opcode::Store => {
                // Forward the stored value to later identical loads, and
                // invalidate anything that may alias.
                let vty = func.value_ty(data.operands[0], &module.types);
                let size = module.types.size_of(vty);
                loads.retain(|&(p, t), _| {
                    !may_alias(
                        module,
                        func,
                        p,
                        module.types.size_of(t),
                        data.operands[1],
                        size,
                    )
                });
                loads.insert((data.operands[1], vty), data.operands[0]);
            }
            Opcode::Call => {
                if let InstExtra::Call { callee } = data.extra {
                    if module.func(callee).effects == Effects::ReadWrite {
                        loads.clear();
                    }
                }
            }
            _ => {
                if let Some(key) = key_of(func, inst) {
                    if let Some(&prev) = exprs.get(&key) {
                        let result = func.inst_result(inst);
                        func.replace_all_uses(result, prev);
                        func.remove_inst(inst);
                        removed += 1;
                    } else {
                        exprs.insert(key, func.inst_result(inst));
                    }
                }
            }
        }
    }
    removed
}

/// Runs CSE over every block of every definition. Returns removals.
pub fn cse_module(module: &mut Module) -> usize {
    let ids: Vec<_> = module.func_ids().collect();
    let mut removed = 0;
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        let mut func = module.func(id).clone();
        for block in func.block_ids().collect::<Vec<_>>() {
            removed += cse_block(module, &mut func, block);
        }
        module.replace_func(id, func);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::check_equivalence;
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    fn run(text: &str) -> (Module, Module, usize) {
        let orig = parse_module(text).unwrap();
        let mut m = orig.clone();
        let removed = cse_module(&mut m);
        verify_module(&m).expect("verifies");
        (orig, m, removed)
    }

    #[test]
    fn dedups_pure_expressions() {
        let (orig, m, removed) = run(r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %a = add i32 %p0, %p1
  %b = add i32 %p0, %p1
  %c = mul i32 %a, %b
  ret %c
}
"#);
        assert_eq!(removed, 1);
        check_equivalence(
            &orig,
            &m,
            "f",
            &[
                rolag_ir::interp::IValue::Int(3),
                rolag_ir::interp::IValue::Int(4),
            ],
        )
        .expect("equivalent");
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.num_live_insts(), 3);
    }

    #[test]
    fn dedups_redundant_loads_until_clobbered() {
        let (orig, m, removed) = run(r#"
module "t"
global @g : [4 x i32] = ints i32 [5, 6, 7, 8]
func @f(ptr %p0) -> i32 {
entry:
  %q = gep i32, @g, i64 0
  %v1 = load i32, %q
  %v2 = load i32, %q
  store i32 9, %p0
  %v3 = load i32, %q
  %s1 = add i32 %v1, %v2
  %s2 = add i32 %s1, %v3
  ret %s2
}
"#);
        // v2 dedups with v1; v3 survives (the store through %p0 may alias).
        assert_eq!(removed, 1);
        let mut i = rolag_ir::interp::Interpreter::new(&m);
        // Give it a valid scratch pointer: reuse @g's tail element.
        let g = m.global_by_name("g").unwrap();
        let addr = i.global_addr(g) + 12;
        let out = i.run("f", &[rolag_ir::interp::IValue::Ptr(addr)]).unwrap();
        assert_eq!(out.ret, rolag_ir::interp::IValue::Int(15));
        let _ = orig;
    }

    #[test]
    fn store_forwards_to_identical_load() {
        let (orig, m, removed) = run(r#"
module "t"
global @g : [4 x i32] = zero
func @f() -> i32 {
entry:
  %q = gep i32, @g, i64 1
  store i32 42, %q
  %v = load i32, %q
  ret %v
}
"#);
        assert_eq!(removed, 1);
        check_equivalence(&orig, &m, "f", &[]).expect("equivalent");
    }

    #[test]
    fn external_calls_invalidate_loads() {
        let (_orig, m, removed) = run(r#"
module "t"
declare @clobber() -> void readwrite
global @g : [4 x i32] = zero
func @f() -> i32 {
entry:
  %q = gep i32, @g, i64 0
  %v1 = load i32, %q
  call void @clobber()
  %v2 = load i32, %q
  %s = add i32 %v1, %v2
  ret %s
}
"#);
        assert_eq!(removed, 0);
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.num_live_insts(), 6);
    }

    #[test]
    fn invariant_loads_across_unrolled_iterations_dedup() {
        // The mechanism that defeats the baseline rerolling: an invariant
        // load repeated per unrolled iteration collapses to one.
        let text = r#"
module "t"
global @a : [16 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]
  %q = gep i32, @a, i64 15
  %inv = load i32, %q
  %s0 = gep i32, @a, %iv
  store %inv, %s0
  %ivn = add i64 %iv, i64 1
  %cmp = icmp slt %ivn, i64 8
  condbr %cmp, loop, exit
exit:
  ret
}
"#;
        let orig = parse_module(text).unwrap();
        let mut m = orig.clone();
        crate::unroll::unroll_module(&mut m, 4);
        let before = m.func(m.func_by_name("f").unwrap()).num_live_insts();
        let removed = cse_module(&mut m);
        assert!(removed >= 3, "the 4 invariant loads collapse to 1");
        let after = m.func(m.func_by_name("f").unwrap()).num_live_insts();
        assert!(after < before);
        check_equivalence(&orig, &m, "f", &[]).expect("equivalent");
    }
}
