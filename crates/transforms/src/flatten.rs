//! Loop flattening (§V-C improvement).
//!
//! When RoLAG rolls the body of an existing loop, it creates a nested loop:
//! the old header keeps the outer induction variable stepping by the lane
//! count while the new inner loop walks the lanes. LLVM's rerolling wins
//! slightly in that situation because it *reuses* the outer loop; the paper
//! suggests "running a loop flattening pass after RoLAG" to close the gap.
//!
//! This pass recognizes exactly that nest:
//!
//! ```text
//! P  -> B                      B: outer phis, br R
//! B  -> R                      R: inner loop, iv2 = 0..n step 1,
//! R  -> R | E                     indices computed as add(iv, iv2)
//! E  -> B | X                  E: ivn = add iv, n; cmp; condbr B, X
//! ```
//!
//! with `iv = 0, n, 2n, ..` and a bound divisible by `n`, and rewrites it
//! into a single loop `iv2 = 0..bound step 1`, deleting the outer control.

use rolag_analysis::dom::DomTree;
use rolag_analysis::loops::{find_loops, trip_count};
use rolag_ir::{Function, InstExtra, InstId, Module, Opcode, ValueId};

/// Result of one flattening attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlattenOutcome {
    /// The nest was flattened.
    Flattened,
    /// The shape did not match.
    NotApplicable,
}

/// One flattening step against a caller-supplied loop forest (e.g. served
/// from a pass manager's analysis cache): tries every candidate nest pair
/// in the same order as [`flatten_function`] and rewrites the first match.
/// Returns `true` when a nest was flattened — the forest is then stale and
/// must be recomputed before the next step.
pub fn flatten_step(module: &Module, func: &mut Function, loops: &[rolag_analysis::Loop]) -> bool {
    // Candidate inner loops: single-block, nested inside a 3-block outer
    // loop.
    for inner in loops.iter().filter(|l| l.is_single_block()) {
        for outer in loops.iter().filter(|l| l.blocks.len() == 3) {
            if !outer.blocks.contains(&inner.header) || outer.header == inner.header {
                continue;
            }
            if try_flatten(module, func, outer, inner) == FlattenOutcome::Flattened {
                return true;
            }
        }
    }
    false
}

/// Flattens every matching two-level nest in `func`. Returns the number of
/// nests flattened.
pub fn flatten_function(module: &Module, func: &mut Function) -> usize {
    let mut count = 0;
    loop {
        let dom = DomTree::compute(func);
        let loops = find_loops(func, &dom);
        if !flatten_step(module, func, &loops) {
            break;
        }
        count += 1;
    }
    count
}

/// Flattens every matching nest in every function.
pub fn flatten_module(module: &mut Module) -> usize {
    let ids: Vec<_> = module.func_ids().collect();
    let mut count = 0;
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        let mut func = module.func(id).clone();
        count += flatten_function(module, &mut func);
        module.replace_func(id, func);
    }
    count
}

fn const_of(func: &Function, v: ValueId) -> Option<i64> {
    func.value(v).as_const_int()
}

fn try_flatten(
    module: &Module,
    func: &mut Function,
    outer: &rolag_analysis::Loop,
    inner: &rolag_analysis::Loop,
) -> FlattenOutcome {
    let b = outer.header; // outer header / inner preheader
    let r = inner.header; // inner loop block
    let e = outer.latch; // outer latch / inner exit
    if b == r || r == e || b == e {
        return FlattenOutcome::NotApplicable;
    }

    // B: phis then a single `br R`.
    let b_insts = func.block(b).insts.clone();
    let Some((&b_term, b_phis)) = b_insts.split_last() else {
        return FlattenOutcome::NotApplicable;
    };
    if !matches!(func.inst(b_term).extra, InstExtra::Br { dest } if dest == r) {
        return FlattenOutcome::NotApplicable;
    }
    if b_phis.iter().any(|&i| func.inst(i).opcode != Opcode::Phi) {
        return FlattenOutcome::NotApplicable;
    }

    // Inner loop: iv2 from 0 step 1 with constant trips n, testing next.
    let Some(inner_tc) = trip_count(module, func, inner) else {
        return FlattenOutcome::NotApplicable;
    };
    let Some(n) = inner_tc.known_trips else {
        return FlattenOutcome::NotApplicable;
    };
    if inner_tc.iv.step != 1 || !inner_tc.tests_next || const_of(func, inner_tc.iv.init) != Some(0)
    {
        return FlattenOutcome::NotApplicable;
    }

    // E: exactly [ivn = add iv, n][cmp][condbr B, X].
    let e_insts = func.block(e).insts.clone();
    if e_insts.len() != 3 {
        return FlattenOutcome::NotApplicable;
    }
    let (latch_add, cmp, e_term) = (e_insts[0], e_insts[1], e_insts[2]);
    let InstExtra::CondBr {
        then_dest,
        else_dest,
    } = func.inst(e_term).extra
    else {
        return FlattenOutcome::NotApplicable;
    };
    if then_dest != b {
        return FlattenOutcome::NotApplicable;
    }
    let exit_block = else_dest;
    if func.inst(cmp).opcode != Opcode::Icmp
        || func.inst(e_term).operands[0] != func.inst_result(cmp)
    {
        return FlattenOutcome::NotApplicable;
    }
    // Latch: add(iv, n) where iv is an outer B-phi with init 0.
    if func.inst(latch_add).opcode != Opcode::Add {
        return FlattenOutcome::NotApplicable;
    }
    let (iv_outer, step) = {
        let ops = &func.inst(latch_add).operands;
        match (const_of(func, ops[0]), const_of(func, ops[1])) {
            (Some(c), None) => (ops[1], c),
            (None, Some(c)) => (ops[0], c),
            _ => return FlattenOutcome::NotApplicable,
        }
    };
    if step != n as i64 {
        return FlattenOutcome::NotApplicable;
    }
    // cmp: icmp slt/ult (add result) bound-const; bound divisible by n.
    let cmp_ops = func.inst(cmp).operands.clone();
    if cmp_ops[0] != func.inst_result(latch_add) {
        return FlattenOutcome::NotApplicable;
    }
    let Some(bound) = const_of(func, cmp_ops[1]) else {
        return FlattenOutcome::NotApplicable;
    };
    use rolag_ir::IntPredicate as P;
    let InstExtra::Icmp(pred) = func.inst(cmp).extra else {
        return FlattenOutcome::NotApplicable;
    };
    if !matches!(pred, P::Slt | P::Ult) || bound <= 0 || bound % n as i64 != 0 {
        return FlattenOutcome::NotApplicable;
    }

    // iv_outer must be a phi of B with init 0 whose only uses are the latch
    // add and `add(iv_outer, iv2)` instructions inside R.
    let Some(iv_phi) = func.value(iv_outer).as_inst() else {
        return FlattenOutcome::NotApplicable;
    };
    if func.inst(iv_phi).block != b || func.inst(iv_phi).opcode != Opcode::Phi {
        return FlattenOutcome::NotApplicable;
    }
    // Its init (non-E incoming) must be 0.
    {
        let InstExtra::Phi { incoming } = &func.inst(iv_phi).extra else {
            return FlattenOutcome::NotApplicable;
        };
        for (k, &inb) in incoming.iter().enumerate() {
            if inb != e && const_of(func, func.inst(iv_phi).operands[k]) != Some(0) {
                return FlattenOutcome::NotApplicable;
            }
        }
    }
    let iv2 = inner_tc.iv.phi_value;
    let uses = func.compute_uses();
    let mut fold_adds: Vec<InstId> = Vec::new();
    for &(user, _) in uses.of(iv_outer) {
        if user == latch_add {
            continue;
        }
        let data = func.inst(user);
        let is_fold_add = data.opcode == Opcode::Add
            && data.block == r
            && ((data.operands[0] == iv_outer && data.operands[1] == iv2)
                || (data.operands[1] == iv_outer && data.operands[0] == iv2));
        if !is_fold_add {
            return FlattenOutcome::NotApplicable;
        }
        fold_adds.push(user);
    }

    // --- rewrite ------------------------------------------------------------
    // 1. Inner bound becomes the full range.
    let i64_bound = {
        let ty = func.value_ty(func.inst_result(inner_tc.iv.step_inst), &module.types);
        func.const_int(ty, bound)
    };
    let inner_cmp = inner_tc.cmp;
    for op in func.inst_mut(inner_cmp).operands.iter_mut().skip(1) {
        *op = i64_bound;
    }
    // 2. `add(iv, iv2)` collapses to iv2.
    for add in fold_adds {
        let old = func.inst_result(add);
        func.replace_all_uses(old, iv2);
        func.remove_inst(add);
    }
    // 3. The outer loop runs once: E falls through to the exit.
    func.remove_inst(latch_add);
    func.remove_inst(cmp);
    func.remove_inst(e_term);
    let (new_br, _) = func.create_inst(rolag_ir::InstData {
        opcode: Opcode::Br,
        ty: module.types.void(),
        operands: vec![],
        block: e,
        extra: InstExtra::Br { dest: exit_block },
    });
    func.append_inst(e, new_br);
    // 4. B's phis lose their E arm and collapse to their single init.
    for &phi in b_phis {
        let data = func.inst(phi).clone();
        let InstExtra::Phi { incoming } = &data.extra else {
            continue;
        };
        let keep: Vec<ValueId> = incoming
            .iter()
            .zip(&data.operands)
            .filter(|(&inb, _)| inb != e)
            .map(|(_, &v)| v)
            .collect();
        if keep.len() == 1 {
            let old = func.inst_result(phi);
            func.replace_all_uses(old, keep[0]);
            func.remove_inst(phi);
        } else {
            // Multiple non-E preds: just drop the E arms.
            let data = func.inst_mut(phi);
            let InstExtra::Phi { incoming } = &mut data.extra else {
                continue;
            };
            let mut ops = Vec::new();
            let mut inc = Vec::new();
            for (k, &inb) in incoming.iter().enumerate() {
                if inb != e {
                    inc.push(inb);
                    ops.push(data.operands[k]);
                }
            }
            *incoming = inc;
            data.operands = ops;
        }
    }
    // Inner phis referencing B keep working: B still precedes R once.
    FlattenOutcome::Flattened
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleanup_module;
    use rolag_ir::interp::check_equivalence;
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    /// unroll ×8 → RoLAG-style nest is simulated here by hand: outer loop
    /// stepping by 4 with an inner 0..4 loop adding the ivs.
    const NEST: &str = r#"
module "n"
global @a : [32 x i64] = zero
func @f() -> i64 {
entry:
  br outerh
outerh:
  %iv = phi i64 [ i64 0, entry ], [ %ivn, outerl ]
  br inner
inner:
  %iv2 = phi i64 [ i64 0, outerh ], [ %iv2n, inner ]
  %idx = add i64 %iv, %iv2
  %q = gep i64, @a, %idx
  store %idx, %q
  %iv2n = add i64 %iv2, i64 1
  %c2 = icmp slt %iv2n, i64 4
  condbr %c2, inner, outerl
outerl:
  %ivn = add i64 %iv, i64 4
  %c = icmp slt %ivn, i64 32
  condbr %c, outerh, exit
exit:
  %p = gep i64, @a, i64 17
  %v = load i64, %p
  ret %v
}
"#;

    #[test]
    fn flattens_the_canonical_nest() {
        let original = parse_module(NEST).unwrap();
        let mut m = original.clone();
        assert_eq!(flatten_module(&mut m), 1);
        cleanup_module(&mut m);
        verify_module(&m).expect("verifies");
        check_equivalence(&original, &m, "f", &[]).expect("equivalent");
        // The outer latch compare is gone: only one loop remains.
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = rolag_analysis::DomTree::compute(f);
        assert_eq!(rolag_analysis::find_loops(f, &dom).len(), 1);
    }

    #[test]
    fn flattened_code_is_smaller() {
        let original = parse_module(NEST).unwrap();
        let mut m = original.clone();
        flatten_module(&mut m);
        cleanup_module(&mut m);
        let before = rolag_analysis::cost::function_size_estimate(
            &rolag_analysis::X86SizeModel,
            &original,
            original.func(original.func_by_name("f").unwrap()),
        );
        let after = rolag_analysis::cost::function_size_estimate(
            &rolag_analysis::X86SizeModel,
            &m,
            m.func(m.func_by_name("f").unwrap()),
        );
        assert!(after < before, "{after} >= {before}");
    }

    #[test]
    fn refuses_indivisible_or_offset_nests() {
        // Outer iv starts at 2: not the canonical rolled shape.
        let text = NEST.replace("[ i64 0, entry ]", "[ i64 2, entry ]");
        let mut m = parse_module(&text).unwrap();
        assert_eq!(flatten_module(&mut m), 0);
    }

    #[test]
    fn refuses_extra_uses_of_the_outer_iv() {
        // The outer iv escapes into the store value: cannot flatten.
        let text = NEST.replace("store %idx, %q", "store %iv, %q");
        let mut m = parse_module(&text).unwrap();
        assert_eq!(flatten_module(&mut m), 0);
    }
}
