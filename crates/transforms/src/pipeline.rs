//! Cleanup pipeline: constant folding + DCE to a fixed point.
//!
//! Run after unrolling and after loop rolling, playing the role of the
//! surrounding `-Os` pipeline in the paper's evaluation setup.

use rolag_ir::dce::run_dce_with;
use rolag_ir::fold::simplify_function;
use rolag_ir::{Effects, FuncId, Function, Module, TypeStore};

/// Snapshots the memory-effect annotation of every function, indexed by
/// [`FuncId`]. Passes compute this once and share it across all the
/// functions they touch — effects only depend on declarations, which
/// rolling and cleanup never change.
pub fn effects_table(module: &Module) -> Vec<Effects> {
    module.func_ids().map(|f| module.func(f).effects).collect()
}

/// Simplifies and DCEs a detached function body until nothing changes,
/// using a pre-computed [`effects_table`]. Returns the total number of
/// instructions rewritten or removed.
///
/// This is the borrow-friendly core shared by [`cleanup_function`],
/// [`cleanup_module`], and the RoLAG pass's post-roll cleanup (which holds
/// the function outside the module while speculating).
pub fn cleanup_in_place(func: &mut Function, types: &mut TypeStore, effects: &[Effects]) -> usize {
    let mut total = 0;
    loop {
        let mut changed = simplify_function(func, types);
        changed += run_dce_with(func, types, &|callee| {
            effects.get(callee.index()).copied().unwrap_or_default()
        });
        total += changed;
        if changed == 0 {
            break;
        }
    }
    total
}

/// Simplifies and DCEs one function until nothing changes. Returns the
/// total number of instructions rewritten or removed.
pub fn cleanup_function(module: &mut Module, id: FuncId) -> usize {
    // Snapshot call effects up front so DCE does not need the module while
    // the function is mutably borrowed.
    let effects = effects_table(module);
    let (func, types) = module.func_and_types_mut(id);
    cleanup_in_place(func, types, &effects)
}

/// Runs [`cleanup_function`] over every definition in the module. The call
/// effects table is computed once, so this is linear in module size.
pub fn cleanup_module(module: &mut Module) -> usize {
    let effects = effects_table(module);
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut total = 0;
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        let (func, types) = module.func_and_types_mut(id);
        total += cleanup_in_place(func, types, &effects);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    #[test]
    fn cleanup_folds_and_removes() {
        let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 i32 2, i32 3
  %2 = mul i32 %1, i32 0
  %3 = add i32 %p0, %2
  %4 = mul i32 %3, i32 7
  ret %3
}
"#;
        let mut m = parse_module(text).unwrap();
        let id = m.func_by_name("f").unwrap();
        cleanup_function(&mut m, id);
        // %1,%2 fold away, %3 becomes %p0, %4 is dead.
        let f = m.func(id);
        assert_eq!(f.num_live_insts(), 1);
        let ret = f.live_insts().next().unwrap();
        assert_eq!(f.inst(ret).operands[0], f.param(0));
    }

    #[test]
    fn cleanup_is_idempotent() {
        let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 1
  ret %1
}
"#;
        let mut m = parse_module(text).unwrap();
        assert!(cleanup_module(&mut m) == 0);
        assert_eq!(cleanup_module(&mut m), 0);
    }
}
