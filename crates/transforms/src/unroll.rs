//! Partial unrolling of single-block counted loops.
//!
//! This is the preparation step the paper applies to TSVC: "we have forced
//! all its inner loops to unroll by a factor of 8" (§V-C). The unroller
//! clones the loop body `factor - 1` times, materializing `iv + k*step`
//! adds for the induction variable (the *root* instructions that LLVM's
//! rerolling later looks for) and chaining accumulator phis through the
//! copies.

use std::collections::HashMap;

use rolag_analysis::dom::DomTree;
use rolag_analysis::loops::{find_loops, trip_count, Loop, TripCount};
use rolag_ir::{Function, InstData, InstExtra, InstId, Module, Opcode, TypeStore, ValueId};

/// Result of attempting to unroll one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollOutcome {
    /// The loop was unrolled by the given factor.
    Unrolled {
        /// Factor applied.
        factor: u32,
    },
    /// The loop shape is unsupported (multi-block, no induction variable,
    /// no analyzable trip count).
    UnsupportedShape,
    /// The trip count is not statically known or not divisible by the
    /// factor; unrolling would need an epilogue, which we do not generate.
    IndivisibleTripCount,
}

/// Unrolls every eligible single-block loop of `func` by `factor`.
/// Returns one outcome per detected loop.
pub fn unroll_loops_in_function(
    module_types: &mut TypeStore,
    module_snapshot: &Module,
    func: &mut Function,
    factor: u32,
) -> Vec<UnrollOutcome> {
    let dom = DomTree::compute(func);
    let loops = find_loops(func, &dom);
    unroll_loops_with(module_types, module_snapshot, func, factor, &loops)
}

/// [`unroll_loops_in_function`] with the natural-loop analysis supplied by
/// the caller (e.g. served from a pass manager's analysis cache). `loops`
/// must describe `func` in its current state; each loop is unrolled
/// against that pre-pass snapshot, exactly as the self-analyzing variant
/// does.
pub fn unroll_loops_with(
    module_types: &mut TypeStore,
    module_snapshot: &Module,
    func: &mut Function,
    factor: u32,
    loops: &[Loop],
) -> Vec<UnrollOutcome> {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let mut outcomes = Vec::new();
    for lp in loops {
        outcomes.push(unroll_one(module_types, module_snapshot, func, lp, factor));
    }
    outcomes
}

/// Unrolls every eligible loop in every function of `module`.
pub fn unroll_module(module: &mut Module, factor: u32) -> Vec<UnrollOutcome> {
    let snapshot = module.clone();
    let ids: Vec<_> = module.func_ids().collect();
    let mut outcomes = Vec::new();
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        let (func, types) = module.func_and_types_mut(id);
        outcomes.extend(unroll_loops_in_function(types, &snapshot, func, factor));
    }
    outcomes
}

fn unroll_one(
    types: &mut TypeStore,
    module: &Module,
    func: &mut Function,
    lp: &Loop,
    factor: u32,
) -> UnrollOutcome {
    if !lp.is_single_block() {
        return UnrollOutcome::UnsupportedShape;
    }
    let Some(tc) = trip_count(module, func, lp) else {
        return UnrollOutcome::UnsupportedShape;
    };
    let Some(trips) = tc.known_trips else {
        return UnrollOutcome::IndivisibleTripCount;
    };
    if trips % factor as u64 != 0 || trips < factor as u64 {
        return UnrollOutcome::IndivisibleTripCount;
    }
    // The exit compare must test the incremented value; otherwise the
    // "continue" decision for intermediate copies would differ.
    if !tc.tests_next {
        return UnrollOutcome::UnsupportedShape;
    }
    apply_unroll(types, func, lp, &tc, factor);
    UnrollOutcome::Unrolled { factor }
}

fn apply_unroll(
    types: &mut TypeStore,
    func: &mut Function,
    lp: &Loop,
    tc: &TripCount,
    factor: u32,
) {
    let header = lp.header;
    let iv = &tc.iv;
    let iv_ty = func.value_ty(iv.phi_value, types);

    let all: Vec<InstId> = func.block(header).insts.clone();
    let term = *all.last().expect("loop block has terminator");
    let cmp = tc.cmp;

    let mut phis: Vec<InstId> = Vec::new();
    let mut body: Vec<InstId> = Vec::new();
    for &i in &all {
        if i == term || i == cmp {
            continue;
        }
        if func.inst(i).opcode == Opcode::Phi {
            phis.push(i);
        } else {
            body.push(i);
        }
    }

    // Detach compare and terminator; they will be re-appended last.
    func.remove_inst(cmp);
    func.remove_inst(term);

    // Recurrence value per phi (the operand flowing around the back edge).
    let mut phi_recur: HashMap<InstId, ValueId> = HashMap::new();
    for &p in &phis {
        let data = func.inst(p);
        let InstExtra::Phi { incoming } = &data.extra else {
            continue;
        };
        for (k, &inb) in incoming.iter().enumerate() {
            if inb == lp.latch {
                phi_recur.insert(p, data.operands[k]);
            }
        }
    }

    // map: original value -> value in the *current* copy.
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    let mut last_map = map.clone();

    for k in 1..factor as u64 {
        // Advance phis: copy k sees the previous copy's recurrence values.
        let prev = if k == 1 { None } else { Some(&last_map) };
        let mut new_map: HashMap<ValueId, ValueId> = HashMap::new();
        for &p in &phis {
            let pv = func.inst_result(p);
            if p == iv.phi {
                continue; // the iv is materialized directly below
            }
            if let Some(&r) = phi_recur.get(&p) {
                let carried = match prev {
                    None => r,
                    Some(m) => *m.get(&r).unwrap_or(&r),
                };
                new_map.insert(pv, carried);
            }
        }
        // Materialize iv_k = iv0 + k*step.
        let offset = func.const_int(iv_ty, (k as i64) * iv.step);
        let (iv_k_inst, iv_k) = func.create_inst(InstData {
            opcode: Opcode::Add,
            ty: iv_ty,
            operands: vec![iv.phi_value, offset],
            block: header,
            extra: InstExtra::None,
        });
        func.append_inst(header, iv_k_inst);
        new_map.insert(iv.phi_value, iv_k);

        // Clone the body in order.
        for &i in &body {
            let data = func.inst(i).clone();
            let operands: Vec<ValueId> = data
                .operands
                .iter()
                .map(|op| *new_map.get(op).unwrap_or(op))
                .collect();
            let (ci, cv) = func.create_inst(InstData {
                opcode: data.opcode,
                ty: data.ty,
                operands,
                block: header,
                extra: data.extra,
            });
            func.append_inst(header, ci);
            new_map.insert(func.inst_result(i), cv);
        }
        map = new_map.clone();
        last_map = new_map;
    }

    // New latch increment: iv_next = iv0 + factor*step.
    let big_step = func.const_int(iv_ty, factor as i64 * iv.step);
    let (latch_add, latch_v) = func.create_inst(InstData {
        opcode: Opcode::Add,
        ty: iv_ty,
        operands: vec![iv.phi_value, big_step],
        block: header,
        extra: InstExtra::None,
    });
    func.append_inst(header, latch_add);

    // Re-append compare (now against the new increment) and terminator.
    let old_next = func.inst_result(iv.step_inst);
    func.append_inst(header, cmp);
    for op in &mut func.inst_mut(cmp).operands {
        if *op == old_next {
            *op = latch_v;
        }
    }
    func.append_inst(header, term);

    // Patch phi back-edge operands to the last copy's values, and rewrite
    // *external* uses of loop values to the final copy's values.
    for &p in &phis {
        let Some(&r) = phi_recur.get(&p) else {
            continue;
        };
        let new_r = if p == iv.phi {
            latch_v
        } else {
            *map.get(&r).unwrap_or(&r)
        };
        let pv_data = func.inst_mut(p);
        let InstExtra::Phi { incoming } = &pv_data.extra else {
            continue;
        };
        let arm = incoming
            .iter()
            .position(|&b| b == lp.latch)
            .expect("latch incoming");
        pv_data.operands[arm] = new_r;
    }

    // External uses (outside the header block) of body values flow from the
    // last executed copy.
    let finals: Vec<(ValueId, ValueId)> = body
        .iter()
        .filter_map(|&i| {
            let v = func.inst_result(i);
            map.get(&v).map(|&nv| (v, nv))
        })
        .chain(std::iter::once((old_next, latch_v)))
        .collect();
    let users: Vec<(InstId, usize, ValueId)> = {
        let uses = func.compute_uses();
        finals
            .iter()
            .flat_map(|&(old, new)| {
                uses.of(old)
                    .iter()
                    .map(move |&(user, idx)| (user, idx, new))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    for (user, idx, new) in users {
        if func.inst(user).block != header {
            func.inst_mut(user).operands[idx] = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::{equivalent, IValue, Interpreter};
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    const INIT_LOOP: &str = r#"
module "t"
global @a : [64 x i32] = zero
func @f() -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %p = gep i32, @a, %1
  %m = mul i32 %1, i32 5
  store %m, %p
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, i32 64
  condbr %3, loop, exit
exit:
  %q = gep i32, @a, i32 13
  %v = load i32, %q
  ret %v
}
"#;

    const SUM_LOOP: &str = r#"
module "t"
global @a : [32 x i32] = ints i32 [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32]
func @f() -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %s = phi i32 [ i32 0, entry ], [ %ns, loop ]
  %p = gep i32, @a, %1
  %v = load i32, %p
  %ns = add i32 %s, %v
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, i32 32
  condbr %3, loop, exit
exit:
  ret %ns
}
"#;

    fn unroll_and_check(text: &str, factor: u32) -> Module {
        let mut m = parse_module(text).unwrap();
        let orig = m.clone();
        let outcomes = unroll_module(&mut m, factor);
        assert_eq!(outcomes, vec![UnrollOutcome::Unrolled { factor }]);
        verify_module(&m).expect("unrolled module must verify");
        let mut ia = Interpreter::new(&orig);
        let mut ib = Interpreter::new(&m);
        let oa = ia.run("f", &[]).unwrap();
        let ob = ib.run("f", &[]).unwrap();
        assert!(equivalent(&oa, &ob), "unroll changed behaviour");
        m
    }

    #[test]
    fn unrolls_store_loop_by_8_preserving_semantics() {
        let mut m = unroll_and_check(INIT_LOOP, 8);
        crate::pipeline::cleanup_module(&mut m);
        let f = m.func(m.func_by_name("f").unwrap());
        let lp = f.block_by_name("loop").unwrap();
        // After DCE: 8 copies of (gep, mul, store) + 7 iv adds + latch add
        // + phi + cmp + br. The per-copy clones of the step add are dead.
        assert_eq!(f.block(lp).insts.len(), 8 * 3 + 7 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn unrolls_reduction_loop_preserving_sum() {
        let m = unroll_and_check(SUM_LOOP, 4);
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("f", &[]).unwrap().ret, IValue::Int(33 * 16));
    }

    #[test]
    fn refuses_indivisible_trip_counts() {
        let mut m = parse_module(INIT_LOOP).unwrap();
        let outcomes = unroll_module(&mut m, 7);
        assert_eq!(outcomes, vec![UnrollOutcome::IndivisibleTripCount]);
    }

    #[test]
    fn refuses_multi_block_loops() {
        let text = r#"
module "t"
func @f() -> void {
entry:
  br header
header:
  %1 = phi i32 [ i32 0, entry ], [ %2, latch ]
  br latch
latch:
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, i32 8
  condbr %3, header, exit
exit:
  ret
}
"#;
        let mut m = parse_module(text).unwrap();
        let outcomes = unroll_module(&mut m, 2);
        assert_eq!(outcomes, vec![UnrollOutcome::UnsupportedShape]);
    }

    #[test]
    fn unroll_by_full_trip_count_works() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %p = gep i32, @a, %1
  store %1, %p
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, i32 4
  condbr %3, loop, exit
exit:
  %q = gep i32, @a, i32 3
  %v = load i32, %q
  ret %v
}
"#;
        let m = unroll_and_check(text, 4);
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("f", &[]).unwrap().ret, IValue::Int(3));
    }
}
