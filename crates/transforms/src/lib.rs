//! # rolag-transforms
//!
//! Loop transformations used to prepare and clean up benchmark inputs for
//! the RoLAG reproduction:
//!
//! * [`unroll`] — partial unrolling of single-block counted loops (the
//!   paper forces TSVC inner loops to unroll ×8 before evaluating
//!   rerolling, §V-C);
//! * [`cse`] — block-local common-subexpression and redundant-load
//!   elimination (the `-Os` interaction that defeats the baseline
//!   rerolling, §V-C);
//! * [`pipeline`] — constant folding + DCE cleanup standing in for the
//!   surrounding `-Os` pipeline.
//!
//! ```
//! use rolag_ir::parser::parse_module;
//! use rolag_transforms::unroll::{unroll_module, UnrollOutcome};
//!
//! let text = r#"
//! module "t"
//! global @a : [8 x i32] = zero
//! func @f() -> void {
//! entry:
//!   br loop
//! loop:
//!   %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
//!   %p = gep i32, @a, %1
//!   store %1, %p
//!   %2 = add i32 %1, i32 1
//!   %3 = icmp slt %2, i32 8
//!   condbr %3, loop, exit
//! exit:
//!   ret
//! }
//! "#;
//! let mut m = parse_module(text).unwrap();
//! assert_eq!(unroll_module(&mut m, 4), vec![UnrollOutcome::Unrolled { factor: 4 }]);
//! ```

#![warn(missing_docs)]

pub mod cse;
pub mod flatten;
pub mod pipeline;
pub mod unroll;

pub use cse::{cse_block, cse_module};
pub use flatten::{flatten_function, flatten_module, flatten_step, FlattenOutcome};
pub use pipeline::{cleanup_function, cleanup_in_place, cleanup_module, effects_table};
pub use unroll::{unroll_loops_in_function, unroll_loops_with, unroll_module, UnrollOutcome};
