//! Greedy IR shrinker.
//!
//! Reduces a failing module to a minimal reproducer by deleting structure
//! and simplifying operands, re-checking the failure after every candidate
//! edit. The shrinker works on the *textual* IR — the parser and verifier
//! gate every candidate, so an edit that produces malformed IR is simply
//! discarded — and runs passes from coarse to fine until a fixpoint:
//!
//! 1. drop whole functions (and declarations),
//! 2. drop whole globals,
//! 3. drop whole basic blocks,
//! 4. drop single instructions,
//! 5. shrink integer literals toward zero.
//!
//! The caller supplies the predicate (`still_fails`); [`shrink_failure`]
//! wires it to the oracle so the shrunk module reproduces the *same
//! failure class on the same pipeline* as the original report.

use crate::oracle::{check_module, Failure, Pipeline};
use rolag_ir::parser::parse_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;

/// A contiguous line range `[start, end)` that one shrink step deletes.
type Region = (usize, usize);

/// Shrinks `text` while `still_fails` holds on the re-parsed module.
/// Returns the smallest failing text found (always parseable, verified,
/// and failing).
pub fn shrink(text: &str, still_fails: &dyn Fn(&Module) -> bool) -> String {
    let mut best: Vec<String> = text.lines().map(str::to_string).collect();
    loop {
        let mut progressed = false;
        progressed |= drop_regions(&mut best, function_regions, still_fails);
        progressed |= drop_regions(&mut best, global_regions, still_fails);
        progressed |= drop_regions(&mut best, block_regions, still_fails);
        progressed |= drop_regions(&mut best, inst_regions, still_fails);
        progressed |= shrink_literals(&mut best, still_fails);
        if !progressed {
            break;
        }
    }
    let mut out = best.join("\n");
    out.push('\n');
    out
}

/// Shrinks the module that produced `failure` under `pipeline`, preserving
/// the failure class. Returns the reduced text.
pub fn shrink_failure(text: &str, failure: &Failure, runs: u64) -> String {
    let pipeline: Pipeline = failure.pipeline;
    let kind = failure.kind;
    shrink(
        text,
        &move |m: &Module| matches!(check_module(m, &[pipeline], runs), Err(f) if f.kind == kind),
    )
}

/// Tries deleting each region produced by `regions` (recomputed after
/// every accepted edit), keeping deletions that still parse, verify, and
/// fail. Returns true if anything was deleted.
fn drop_regions(
    lines: &mut Vec<String>,
    regions: fn(&[String]) -> Vec<Region>,
    still_fails: &dyn Fn(&Module) -> bool,
) -> bool {
    let mut progressed = false;
    let mut cursor = 0;
    loop {
        let regs = regions(lines);
        let Some(&(start, end)) = regs.iter().find(|&&(s, _)| s >= cursor) else {
            break;
        };
        let mut candidate = lines.clone();
        candidate.drain(start..end);
        if accepts(&candidate, still_fails) {
            *lines = candidate;
            progressed = true;
            cursor = start;
        } else {
            cursor = start + 1;
        }
    }
    progressed
}

/// True when `candidate` joins to a parseable, verifier-clean module on
/// which the failure still reproduces.
fn accepts(candidate: &[String], still_fails: &dyn Fn(&Module) -> bool) -> bool {
    let text = candidate.join("\n");
    let Ok(module) = parse_module(&text) else {
        return false;
    };
    if verify_module(&module).is_err() {
        return false;
    }
    still_fails(&module)
}

/// `func @…` / `declare @…` regions (a declaration is one line; a
/// definition runs through its closing `}`).
fn function_regions(lines: &[String]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("declare @") {
            regions.push((i, i + 1));
            i += 1;
        } else if t.starts_with("func @") {
            let mut end = i + 1;
            while end < lines.len() && lines[end].trim() != "}" {
                end += 1;
            }
            regions.push((i, (end + 1).min(lines.len())));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// `global @…` / `const @…` lines.
fn global_regions(lines: &[String]) -> Vec<Region> {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with("global @") || t.starts_with("const @")
        })
        .map(|(i, _)| (i, i + 1))
        .collect()
}

/// Label-to-label regions inside function bodies. The entry block is never
/// a candidate (deleting it can only be achieved by deleting the
/// function).
fn block_regions(lines: &[String]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut in_func = false;
    let mut first_label = true;
    let mut start: Option<usize> = None;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("func @") {
            in_func = true;
            first_label = true;
            start = None;
            continue;
        }
        if !in_func {
            continue;
        }
        let is_label = t.ends_with(':') && !t.starts_with("//") && !t.contains(' ');
        if is_label || t == "}" {
            if let Some(s) = start.take() {
                regions.push((s, i));
            }
            if is_label && !first_label {
                start = Some(i);
            }
            first_label = false;
            if t == "}" {
                in_func = false;
            }
        }
    }
    regions
}

/// Single instruction lines (indented, not labels, not braces).
fn inst_regions(lines: &[String]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut in_func = false;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("func @") {
            in_func = true;
            continue;
        }
        if t == "}" {
            in_func = false;
            continue;
        }
        if in_func && !t.is_empty() && !t.ends_with(':') && !t.starts_with("//") {
            regions.push((i, i + 1));
        }
    }
    regions
}

/// Replaces integer literals with `0` (or halves them toward zero) where
/// the failure survives. Literals embedded in identifiers (`%v10`, `i32`)
/// are left alone by requiring a non-alphanumeric, non-sigil predecessor.
fn shrink_literals(lines: &mut Vec<String>, still_fails: &dyn Fn(&Module) -> bool) -> bool {
    let mut progressed = false;
    for i in 0..lines.len() {
        loop {
            let mut changed = false;
            let spans = literal_spans(&lines[i]);
            for (start, end, value) in spans {
                for target in [0i64, value / 2] {
                    if target == value || (target == 0 && value.abs() <= 1) {
                        continue;
                    }
                    let mut candidate = lines.clone();
                    candidate[i] = format!("{}{}{}", &lines[i][..start], target, &lines[i][end..]);
                    if accepts(&candidate, still_fails) {
                        *lines = candidate;
                        progressed = true;
                        changed = true;
                        break;
                    }
                }
                if changed {
                    break;
                }
            }
            if !changed {
                break;
            }
        }
    }
    progressed
}

/// Byte spans of standalone decimal literals in `line`, with their values.
fn literal_spans(line: &str) -> Vec<(usize, usize, i64)> {
    let bytes = line.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let neg = c == b'-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit();
        if c.is_ascii_digit() || neg {
            let prev_ok = i == 0
                || !(bytes[i - 1].is_ascii_alphanumeric()
                    || matches!(bytes[i - 1], b'%' | b'@' | b'_' | b'.' | b'-'));
            let start = i;
            if neg {
                i += 1;
            }
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            // Skip floats (`1.5`), hex (`0x…`), and identifier tails.
            let next_ok = i >= bytes.len()
                || !(bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'_');
            if prev_ok && next_ok {
                if let Ok(v) = line[start..i].parse::<i64>() {
                    spans.push((start, i, v));
                }
            }
        } else {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use rolag_ir::{Module, Opcode};

    /// The property: the module still contains an sdiv instruction.
    fn has_sdiv(m: &Module) -> bool {
        m.func_ids().any(|f| {
            let func = m.func(f);
            func.live_insts()
                .any(|i| func.inst(i).opcode == Opcode::SDiv)
        })
    }

    #[test]
    fn shrinks_to_the_essential_instruction() {
        // Build a sizable corpus module and graft a known sdiv into it.
        let mut text = generate(3, 1);
        text.push_str(
            "func @needle(i32 %p0) -> i32 {\nentry:\n  %d = sdiv i32 %p0, i32 7\n  ret %d\n}\n",
        );
        assert!(has_sdiv(&parse_module(&text).unwrap()));
        let small = shrink(&text, &has_sdiv);
        let m = parse_module(&small).unwrap();
        assert!(has_sdiv(&m), "shrunk module lost the property:\n{small}");
        assert!(
            small.len() < text.len() / 2,
            "no meaningful reduction: {} -> {}",
            text.len(),
            small.len()
        );
        // Nothing but the needle function (and the module header) survives.
        assert_eq!(m.func_ids().count(), 1);
        assert_eq!(m.num_globals(), 0);
    }

    #[test]
    fn literal_spans_skip_identifiers_and_types() {
        let spans = literal_spans("  %v10 = add i32 %p0, i32 -42");
        assert_eq!(spans, vec![(26, 29, -42)]);
    }
}
