//! # rolag-difftest
//!
//! Differential semantic oracle for the RoLAG reproduction.
//!
//! Three pieces, composed by the `rolag-verify` binary and the workspace
//! smoke test:
//!
//! * [`gen`] — a deterministic generator emitting verifier-clean textual
//!   IR modules that exercise the paper's pattern space (store lanes over
//!   monotonic GEPs, external-call sequences, reductions, recurrences,
//!   counted loops, mixed widths, commutative orders, division edges);
//! * [`oracle`] — applies every pipeline under test (parse/print
//!   round-trip, unroll, CSE, flatten, cleanup, reroll, and the rolling
//!   engine in its serial, parallel, and incremental-vs-full-rescan
//!   configurations) and interprets original vs. transformed modules over
//!   deterministic argument sets, comparing return values, effectful call
//!   traces, final global memory, and trap classes;
//! * [`shrink`] — a greedy structural shrinker that reduces any failure
//!   to a minimal `.rir` reproducer suitable for `tests/repros/`.
//!
//! ```
//! use rolag_difftest::gen::generate_module;
//! use rolag_difftest::oracle::{check_module, Pipeline};
//!
//! let module = generate_module(0, 1);
//! check_module(&module, &Pipeline::ALL, 2).expect("toolchain preserves behaviour");
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{args_for, generate, generate_module};
pub use oracle::{
    apply_pipeline, apply_pipeline_checked, check_module, check_module_opts, compare_behaviour,
    Failure, FailureKind, Pipeline,
};
pub use shrink::{shrink, shrink_failure};
