//! `rolag-verify` — the differential fuzzing driver.
//!
//! Generates a fixed-seed corpus, runs every module through the pipeline
//! matrix, and reports divergences. Each failure is shrunk to a minimal
//! reproducer and written into the repro directory, so a red run leaves
//! behind exactly the files a regression test (and a human) needs.
//!
//! ```text
//! rolag-verify [--seed N] [--count N] [--runs N] [--pipelines all|a,b,...]
//!              [--repro-dir DIR] [--no-shrink] [--verify-each] [--tv]
//!              [--llvm-roundtrip] [FILE.rir ...]
//! ```
//!
//! With positional files, checks those instead of generating. With
//! `--verify-each`, the pass manager verifies the module after every pass
//! of every registry-backed pipeline rather than only at the end. `--tv`
//! is shorthand for `--pipelines rolag-tv`: every module runs through the
//! validated rolling pass, so the static translation validator's verdict
//! is cross-checked against the dynamic interpreting oracle (and
//! disagreements shrink into repros like any other divergence).
//! `--llvm-roundtrip` sweeps generator modules through the LLVM frontend
//! instead of the pipeline matrix: each module is rendered to LLVM
//! textual IR, imported back, and rolled, and the roll must be
//! byte-identical to rolling the native text round-trip of the same
//! module — nothing may fall out of the import subset on the way. Exits
//! 0 on a clean run, 1 on any failure (or bad usage).

use rolag_difftest::oracle::{check_module_opts, Pipeline};
use rolag_difftest::shrink::shrink_failure;
use rolag_difftest::{generate, generate_module};
use rolag_ir::parser::parse_module;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    seed: u64,
    count: u64,
    runs: u64,
    pipelines: Vec<Pipeline>,
    repro_dir: PathBuf,
    shrink: bool,
    verify_each: bool,
    llvm_roundtrip: bool,
    files: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: rolag-verify [--seed N] [--count N] [--runs N] \
         [--pipelines all|name,name,...] [--repro-dir DIR] [--no-shrink] \
         [--verify-each] [--tv] [--llvm-roundtrip] [FILE.rir ...]"
    );
    eprintln!("pipelines: {}", Pipeline::ALL.map(|p| p.name()).join(", "));
    std::process::exit(1)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        seed: 0,
        count: 256,
        runs: 3,
        pipelines: Pipeline::ALL.to_vec(),
        repro_dir: PathBuf::from("tests/repros"),
        shrink: true,
        verify_each: false,
        llvm_roundtrip: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => cli.seed = parse_num(&value("--seed")),
            "--count" => cli.count = parse_num(&value("--count")),
            "--runs" => cli.runs = parse_num(&value("--runs")),
            "--pipelines" => {
                cli.pipelines = Pipeline::parse_list(&value("--pipelines")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--repro-dir" => cli.repro_dir = PathBuf::from(value("--repro-dir")),
            "--no-shrink" => cli.shrink = false,
            "--verify-each" => cli.verify_each = true,
            "--tv" => cli.pipelines = vec![Pipeline::RolagTv],
            "--llvm-roundtrip" => cli.llvm_roundtrip = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("unknown option {arg}");
                usage()
            }
            _ => cli.files.push(PathBuf::from(arg)),
        }
    }
    cli
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        usage()
    })
}

/// Rolls `module` and returns its canonical print.
fn rolled_print(mut module: rolag_ir::Module) -> String {
    rolag::roll_module(&mut module, &rolag::RolagOptions::default());
    rolag_ir::printer::print_module(&module)
}

/// Sweeps generator modules through `emit-llvm -> import -> roll`,
/// requiring byte-identity with the native text round-trip's roll.
/// Both sides pass through text, so the comparison is symmetric in
/// what a textual round-trip cannot carry.
fn llvm_roundtrip_sweep(cli: &Cli) -> ExitCode {
    use rolag_frontend::{emit::emit_llvm, llvm::LlvmFrontend, Frontend};
    use rolag_ir::printer::print_module;

    let mut failures = 0u64;
    for i in 0..cli.count {
        let module = generate_module(cli.seed, i);
        let origin = format!("gen-{}-{i}.ll", cli.seed);
        let ll = emit_llvm(&module);
        let imported = match LlvmFrontend.parse(ll.as_bytes(), &origin) {
            Ok(res) => res,
            Err(d) => {
                eprintln!("FAIL module (seed {}, index {i}): import: {d}", cli.seed);
                failures += 1;
                continue;
            }
        };
        if !imported.skips.is_empty() {
            eprintln!(
                "FAIL module (seed {}, index {i}): {} function(s) fell out of \
                 the import subset: {:?}",
                cli.seed,
                imported.skips.len(),
                imported
                    .skips
                    .iter()
                    .map(|s| format!("@{} [{}]", s.symbol, s.code.code()))
                    .collect::<Vec<_>>()
            );
            failures += 1;
            continue;
        }
        let native = match parse_module(&print_module(&module)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!(
                    "FAIL module (seed {}, index {i}): native re-parse: {e}",
                    cli.seed
                );
                failures += 1;
                continue;
            }
        };
        let want = rolled_print(native);
        let got = rolled_print(imported.module);
        if want != got {
            eprintln!(
                "FAIL module (seed {}, index {i}): rolled import diverges from \
                 rolled native round-trip",
                cli.seed
            );
            for (l, (w, g)) in want.lines().zip(got.lines()).enumerate() {
                if w != g {
                    eprintln!("  first divergence at line {}:", l + 1);
                    eprintln!("    native: {w}");
                    eprintln!("    import: {g}");
                    break;
                }
            }
            failures += 1;
        }
    }
    summarize(cli.count, 1, failures)
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let mut failures = 0u64;
    let mut checked = 0u64;

    if cli.llvm_roundtrip {
        if !cli.files.is_empty() {
            eprintln!("--llvm-roundtrip generates its own corpus; drop the positional files");
            usage()
        }
        return llvm_roundtrip_sweep(&cli);
    }

    // Explicit files: regression mode.
    if !cli.files.is_empty() {
        for path in &cli.files {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    failures += 1;
                    continue;
                }
            };
            let module = match parse_module(&text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    failures += 1;
                    continue;
                }
            };
            checked += 1;
            if let Err(f) = check_module_opts(&module, &cli.pipelines, cli.runs, cli.verify_each) {
                eprintln!("{}: {f}", path.display());
                failures += 1;
            }
        }
        return summarize(checked, cli.pipelines.len(), failures);
    }

    for i in 0..cli.count {
        let text = generate(cli.seed, i);
        let module = generate_module(cli.seed, i);
        let Err(failure) = check_module_opts(&module, &cli.pipelines, cli.runs, cli.verify_each)
        else {
            continue;
        };
        failures += 1;
        eprintln!("FAIL module (seed {}, index {i}): {failure}", cli.seed);
        if !cli.shrink {
            continue;
        }
        eprint!("  shrinking... ");
        let reduced = shrink_failure(&text, &failure, cli.runs);
        let name = format!(
            "repro-{}-{i}-{}-{}.rir",
            cli.seed,
            failure.pipeline.name(),
            failure.kind
        );
        let path = cli.repro_dir.join(&name);
        if let Err(e) = std::fs::create_dir_all(&cli.repro_dir) {
            eprintln!("cannot create {}: {e}", cli.repro_dir.display());
        } else {
            match std::fs::write(&path, &reduced) {
                Ok(()) => eprintln!("wrote {} ({} bytes)", path.display(), reduced.len()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
    checked += cli.count;
    summarize(checked, cli.pipelines.len(), failures)
}

fn summarize(modules: u64, pipelines: usize, failures: u64) -> ExitCode {
    println!("verified {modules} module(s) x {pipelines} pipeline(s): {failures} failure(s)");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
