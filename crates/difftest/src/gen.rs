//! Deterministic IR module generator.
//!
//! Emits *textual* IR (so every generated module also exercises the lexer
//! and parser) covering the pattern space the paper's pass targets:
//! straight-line store sequences over monotonic GEPs (with and without
//! constant mismatches), external-call sequences under all three effect
//! classes, reduction chains, recurrences, float lanes, mixed integer
//! widths, commutative operand orders, division edge cases, and genuine
//! counted loops for the unroll/reroll pipelines.
//!
//! Every module is verifier-clean by construction; [`generate_module`]
//! asserts it. Streams are fully determined by `(seed, index)` — the same
//! pair always yields byte-identical text, on every platform, so a corpus
//! is reproducible from two integers.

use rolag_ir::interp::IValue;
use rolag_ir::parser::parse_module;
use rolag_ir::verify::verify_module;
use rolag_ir::{Module, TypeKind};
use rolag_prng::{ChaCha8Rng, Rng, SeedableRng};
use std::fmt::Write as _;

/// Number of elements in each generated array global.
const ARR: i64 = 16;

/// Generates the textual IR of corpus module `index` of stream `seed`.
pub fn generate(seed: u64, index: u64) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut out = String::new();
    let _ = writeln!(out, "module \"fuzz-{seed}-{index}\"");
    let _ = writeln!(out, "global @a : [{ARR} x i32] = zero");
    let _ = writeln!(out, "global @b : [{ARR} x i64] = zero");
    let _ = writeln!(out, "global @fl : [{ARR} x double] = zero");
    let _ = writeln!(out, "global @by : [{} x i8] = zero", ARR * 4);
    if rng.gen_bool(0.5) {
        let vals: Vec<String> = (0..8)
            .map(|_| rng.gen_range(-100i64..100).to_string())
            .collect();
        let _ = writeln!(
            out,
            "const @tbl : [8 x i32] = ints i32 [{}]",
            vals.join(", ")
        );
    }
    out.push_str("declare @ext_rw(i32 %p0) -> i32 readwrite\n");
    out.push_str("declare @ext_ro(i32 %p0) -> i32 readonly\n");
    out.push_str("declare @ext_pure(i32 %p0) -> i32 readnone\n");
    out.push_str("declare @sink(i32 %p0) -> void readwrite\n");

    let nfuncs = rng.gen_range(1u32..=3);
    for f in 0..nfuncs {
        emit_function(&mut rng, &mut out, f);
    }
    out
}

/// [`generate`], parsed and verified. Panics if the generator ever emits a
/// module its own toolchain rejects — that is a bug worth crashing on.
pub fn generate_module(seed: u64, index: u64) -> Module {
    let text = generate(seed, index);
    let module = parse_module(&text).unwrap_or_else(|e| {
        panic!("generator emitted unparsable IR ({seed},{index}): {e}\n{text}")
    });
    verify_module(&module)
        .unwrap_or_else(|e| panic!("generator emitted invalid IR ({seed},{index}): {e:?}\n{text}"));
    module
}

/// A tiny emitter state: the function body buffer plus a fresh-name counter.
struct Body {
    text: String,
    next: u32,
}

impl Body {
    fn new() -> Self {
        Body {
            text: String::new(),
            next: 0,
        }
    }
    /// Returns a fresh `%vN` name.
    fn fresh(&mut self) -> String {
        let n = self.next;
        self.next += 1;
        format!("%v{n}")
    }
    fn line(&mut self, s: &str) {
        self.text.push_str("  ");
        self.text.push_str(s);
        self.text.push('\n');
    }
}

fn emit_function(rng: &mut ChaCha8Rng, out: &mut String, index: u32) {
    // Patterns 0..=9; see the module docs. A coin flip appends a second,
    // independent pattern to the same entry block so some functions hold
    // several rollable regions.
    let pattern = rng.gen_range(0u32..=9);
    let mut body = Body::new();
    let (params, mut ret_ty, mut ret_val) = emit_pattern(rng, &mut body, pattern);
    if ret_val.is_none() && rng.gen_bool(0.35) {
        let extra = rng.gen_range(0u32..=7);
        // Only compose patterns that share the `i32 %p0` signature, so some
        // functions hold several independent rollable regions.
        if matches!(extra, 0 | 1 | 4 | 6 | 7) && params == "i32 %p0" {
            let (_, extra_ty, extra_ret) = emit_pattern(rng, &mut body, extra);
            if extra_ret.is_some() {
                ret_ty = extra_ty;
                ret_val = extra_ret;
            }
        }
    }
    let ret_ty = if ret_val.is_some() { ret_ty } else { "void" };
    let _ = writeln!(out, "func @f{index}({params}) -> {ret_ty} {{");
    out.push_str("entry:\n");
    out.push_str(&body.text);
    match ret_val {
        Some(v) => {
            let _ = writeln!(out, "  ret {v}");
        }
        None => out.push_str("  ret\n"),
    }
    out.push_str("}\n");
}

/// Emits one pattern into `body`; returns `(params, ret_ty, ret_val)`.
/// `ret_val == None` means the function returns void.
fn emit_pattern(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
    pattern: u32,
) -> (&'static str, &'static str, Option<String>) {
    match pattern {
        0 => store_seq(rng, body),
        1 => call_seq(rng, body),
        2 => reduction(rng, body),
        3 => recurrence(rng, body),
        4 => float_seq(rng, body),
        5 => counted_loop(rng, body),
        6 => mixed_width(rng, body),
        7 => commutative(rng, body),
        8 => div_edge(rng, body),
        _ => param_indexed(rng, body),
    }
}

/// Straight-line stores over a monotonic GEP sequence — the paper's bread
/// and butter. Values follow an affine progression, optionally with one
/// off-pattern lane (a "constant mismatch" the pass must table-ize) or a
/// parameter-derived term.
fn store_seq(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let stride = if rng.gen_bool(0.25) { 2 } else { 1 };
    let lanes = rng.gen_range(4i64..=(ARR / stride).min(10));
    let base = rng.gen_range(0i64..=(ARR - lanes * stride));
    let c0 = rng.gen_range(-20i64..=20);
    let c1 = rng.gen_range(-5i64..=5);
    let mismatch = if rng.gen_bool(0.3) {
        Some((rng.gen_range(0i64..lanes), rng.gen_range(-99i64..=99)))
    } else {
        None
    };
    let from_param = rng.gen_bool(0.3);
    for i in 0..lanes {
        let g = body.fresh();
        body.line(&format!("{g} = gep i32, @a, i64 {}", base + i * stride));
        let value = match mismatch {
            Some((lane, v)) if lane == i => v,
            _ => c0 + c1 * i,
        };
        if from_param {
            let t = body.fresh();
            body.line(&format!("{t} = add i32 %p0, i32 {value}"));
            body.line(&format!("store {t}, {g}"));
        } else {
            body.line(&format!("store i32 {value}, {g}"));
        }
    }
    ("i32 %p0", "void", None)
}

/// A lane of external calls with affine arguments, under a randomly chosen
/// effect class. Results are summed so pure calls stay live.
fn call_seq(rng: &mut ChaCha8Rng, body: &mut Body) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(3i64..=8);
    let callee = ["@ext_rw", "@ext_ro", "@ext_pure"][rng.gen_range(0usize..3)];
    let a0 = rng.gen_range(-10i64..=10);
    let a1 = rng.gen_range(1i64..=4);
    let discard = rng.gen_bool(0.4);
    let mut acc: Option<String> = None;
    for i in 0..lanes {
        if discard {
            body.line(&format!("call void @sink(i32 {})", a0 + a1 * i));
            continue;
        }
        let c = body.fresh();
        body.line(&format!("{c} = call i32 {callee}(i32 {})", a0 + a1 * i));
        acc = Some(match acc {
            None => c,
            Some(prev) => {
                let s = body.fresh();
                body.line(&format!("{s} = add i32 {prev}, {c}"));
                s
            }
        });
    }
    if discard {
        ("i32 %p0", "void", None)
    } else {
        ("i32 %p0", "i32", acc)
    }
}

/// A left-fold reduction over loads from `@a` — the reduction-tree shape.
fn reduction(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(4i64..=10);
    let op = ["add", "xor", "mul"][rng.gen_range(0usize..3)];
    let mut acc: Option<String> = None;
    for i in 0..lanes {
        let g = body.fresh();
        body.line(&format!("{g} = gep i32, @a, i64 {i}"));
        let l = body.fresh();
        body.line(&format!("{l} = load i32, {g}"));
        acc = Some(match acc {
            None => l,
            Some(prev) => {
                let s = body.fresh();
                body.line(&format!("{s} = {op} i32 {prev}, {l}"));
                s
            }
        });
    }
    ("i32 %p0", "i32", acc)
}

/// A chained dependence: `x = x * k + i`, repeated. Rolling must respect
/// the serial chain.
fn recurrence(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let steps = rng.gen_range(4i64..=9);
    let k = rng.gen_range(2i64..=5);
    let mut x = "%p0".to_string();
    for i in 0..steps {
        let m = body.fresh();
        body.line(&format!("{m} = mul i32 {x}, i32 {k}"));
        let a = body.fresh();
        body.line(&format!("{a} = add i32 {m}, i32 {i}"));
        x = a;
    }
    ("i32 %p0", "i32", Some(x))
}

/// Float lanes: either an affine store sequence into `@fl`, or an
/// `fadd` left-fold over its elements (association order is observable).
fn float_seq(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(4i64..=8);
    if rng.gen_bool(0.5) {
        let c0 = rng.gen_range(-8i64..=8) as f64 / 2.0;
        let c1 = rng.gen_range(1i64..=6) as f64 / 4.0;
        for i in 0..lanes {
            let g = body.fresh();
            body.line(&format!("{g} = gep double, @fl, i64 {i}"));
            let v = c0 + c1 * i as f64;
            body.line(&format!("store double {v:?}, {g}"));
        }
        ("i32 %p0", "void", None)
    } else {
        let mut acc: Option<String> = None;
        for i in 0..lanes {
            let g = body.fresh();
            body.line(&format!("{g} = gep double, @fl, i64 {i}"));
            let l = body.fresh();
            body.line(&format!("{l} = load double, {g}"));
            acc = Some(match acc {
                None => l,
                Some(prev) => {
                    let s = body.fresh();
                    body.line(&format!("{s} = fadd double {prev}, {l}"));
                    s
                }
            });
        }
        ("i32 %p0", "double", acc)
    }
}

/// A genuine single-block counted loop storing its induction variable into
/// `@b` — food for the unroll and reroll pipelines. Loops need their own
/// blocks, so this pattern owns the whole function body.
fn counted_loop(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let bound = rng.gen_range(8i64..=ARR);
    let step = 1;
    // `body.line` indents by two spaces; labels and the loop structure are
    // written raw.
    body.text.push_str("  br loop\nloop:\n");
    body.line("%iv = phi i64 [ i64 0, entry ], [ %ivn, loop ]");
    body.line("%pg = gep i64, @b, %iv");
    body.line("store %iv, %pg");
    body.line(&format!("%ivn = add i64 %iv, i64 {step}"));
    body.line(&format!("%c = icmp slt %ivn, i64 {bound}"));
    body.text.push_str("  condbr %c, loop, exit\nexit:\n");
    ("i32 %p0", "void", None)
}

/// Mixed integer widths: i32 loads truncated into the i8 array, with the
/// occasional zext back. Exercises type-equivalence boundaries.
fn mixed_width(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(4i64..=8);
    for i in 0..lanes {
        let g = body.fresh();
        body.line(&format!("{g} = gep i32, @a, i64 {i}"));
        let l = body.fresh();
        body.line(&format!("{l} = load i32, {g}"));
        let t = body.fresh();
        body.line(&format!("{t} = trunc i8 {l}"));
        let d = body.fresh();
        body.line(&format!("{d} = gep i8, @by, i64 {i}"));
        body.line(&format!("store {t}, {d}"));
    }
    if rng.gen_bool(0.4) {
        let g = body.fresh();
        body.line(&format!("{g} = gep i8, @by, i64 0"));
        let l = body.fresh();
        body.line(&format!("{l} = load i8, {g}"));
        let z = body.fresh();
        body.line(&format!("{z} = zext i32 {l}"));
        ("i32 %p0", "i32", Some(z))
    } else {
        ("i32 %p0", "void", None)
    }
}

/// Identical lanes whose commutative operands appear in alternating order
/// — the pass's commutativity canonicalization must line them up.
fn commutative(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(4i64..=8);
    let op = if rng.gen_bool(0.5) { "add" } else { "mul" };
    for i in 0..lanes {
        let c = rng.gen_range(-9i64..=9);
        let t = body.fresh();
        if i % 2 == 0 {
            body.line(&format!("{t} = {op} i32 %p0, i32 {c}"));
        } else {
            body.line(&format!("{t} = {op} i32 i32 {c}, %p0"));
        }
        let g = body.fresh();
        body.line(&format!("{g} = gep i32, @a, i64 {i}"));
        body.line(&format!("store {t}, {g}"));
    }
    ("i32 %p0", "void", None)
}

/// Division edge cases: `sdiv`/`srem` fed by parameters, so argument sets
/// containing `0`, `-1`, and `i32::MIN` drive the trap paths. The results
/// feed the return value, keeping the traps un-removable.
fn div_edge(rng: &mut ChaCha8Rng, body: &mut Body) -> (&'static str, &'static str, Option<String>) {
    let c = rng.gen_range(-4i64..=4);
    let d = body.fresh();
    body.line(&format!("{d} = sdiv i32 %p0, %p1"));
    let m = body.fresh();
    body.line(&format!("{m} = srem i32 %p0, i32 {c}"));
    let s = body.fresh();
    body.line(&format!("{s} = add i32 {d}, {m}"));
    ("i32 %p0, i32 %p1", "i32", Some(s))
}

/// Parameter-indexed stores: the address depends on `%p0`, so large
/// arguments walk off the array and must trap identically on both sides.
fn param_indexed(
    rng: &mut ChaCha8Rng,
    body: &mut Body,
) -> (&'static str, &'static str, Option<String>) {
    let lanes = rng.gen_range(3i64..=6);
    for i in 0..lanes {
        let idx = body.fresh();
        body.line(&format!("{idx} = add i64 %p0, i64 {i}"));
        let g = body.fresh();
        body.line(&format!("{g} = gep i64, @b, {idx}"));
        body.line(&format!("store i64 {}, {g}", rng.gen_range(-50i64..=50)));
    }
    ("i64 %p0", "void", None)
}

/// Deterministic argument synthesis for an entry point: variant `k` of the
/// argument list for `func`, drawn from a pool of boundary-heavy values.
/// The stream depends only on the function name and `k`.
pub fn args_for(module: &Module, entry: &str, k: u64) -> Option<Vec<IValue>> {
    const INT_POOL: [i64; 14] = [
        0,
        1,
        2,
        3,
        7,
        8,
        -1,
        -2,
        5,
        16,
        100,
        -128,
        i32::MIN as i64,
        i32::MAX as i64,
    ];
    const FLOAT_POOL: [f64; 6] = [0.0, 1.0, -1.5, 2.25, 8.0, -0.5];
    let id = module.func_by_name(entry)?;
    let func = module.func(id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in entry.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(h ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut args = Vec::new();
    for &ty in func.param_tys() {
        let v = match module.types.kind(ty) {
            TypeKind::Float | TypeKind::Double => {
                IValue::Float(FLOAT_POOL[rng.gen_range(0usize..FLOAT_POOL.len())])
            }
            TypeKind::Ptr => IValue::Ptr(0),
            _ => IValue::Int(INT_POOL[rng.gen_range(0usize..INT_POOL.len())]),
        };
        args.push(v);
    }
    Some(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..8 {
            assert_eq!(
                generate(7, i),
                generate(7, i),
                "module {i} not reproducible"
            );
        }
        assert_ne!(generate(7, 0), generate(8, 0), "seed must matter");
    }

    #[test]
    fn corpus_is_verifier_clean() {
        for i in 0..64 {
            let _ = generate_module(0, i);
        }
    }

    #[test]
    fn args_are_deterministic_and_typed() {
        let m = generate_module(0, 3);
        let entry = m.func(m.func_ids().next().unwrap()).name.clone();
        let a = args_for(&m, &entry, 5).unwrap();
        let b = args_for(&m, &entry, 5).unwrap();
        assert_eq!(a, b);
    }
}
