//! The differential oracle: pipeline matrix + behavioural comparison.
//!
//! A *pipeline* is one way the toolchain may transform a module. The
//! oracle applies it to a copy, verifies the result, and then interprets
//! every entry point of both modules over deterministic argument sets,
//! requiring them to be observationally equivalent:
//!
//! * identical return values,
//! * identical sequences of **effectful** (`readwrite`) external calls —
//!   `readnone`/`readonly` calls may legally be deduplicated or deleted,
//!   so only the clobbering calls are compared,
//! * identical final contents of every global the *original* module owns
//!   (a transform may add constant data of its own),
//! * identical trap classes when either side faults: a transformed module
//!   must not turn a division-by-zero into a clean return, or vice versa.
//!
//! Meta-pipelines also cross-check the engine against itself: the parallel
//! driver and the incremental fixpoint must produce byte-identical printed
//! modules and equal statistics to the serial / full-rescan references,
//! a printed module must re-parse to its own fixed point, and the compact
//! binary serialization must round-trip print-identically and
//! re-encode byte-stably.

use crate::gen::args_for;
use rolag::RolagStats;
use rolag_ir::interp::{IValue, Interpreter, Outcome};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::{Effects, Module};
use rolag_passes::{
    AnalysisManager, PassContext, PassManager, PassManagerOptions, PassRegistry, TargetKind,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Step budget per interpreted entry point: generous for the tiny corpus
/// functions, small enough to bound a runaway loop quickly.
const MAX_STEPS: u64 = 2_000_000;

/// One transformation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// `parse(print(m))`, plus the print-fixed-point cross-check.
    RoundTrip,
    /// `decode(encode(m))` through the compact binary serialization,
    /// cross-checked three ways: the decoded module must print
    /// byte-identically to the original, re-encoding it must reproduce
    /// the exact bytes, and the decoded module then runs through the
    /// usual behavioural comparison.
    BinaryRoundTrip,
    /// Partial unrolling (factor 4) of counted loops.
    Unroll,
    /// Block-local common-subexpression elimination.
    Cse,
    /// Control-flow flattening of two-block diamonds.
    Flatten,
    /// Constant folding + dead-code elimination.
    Cleanup,
    /// The baseline rerolling pass.
    Reroll,
    /// The serial loop-rolling pass (incremental engine).
    Rolag,
    /// The parallel memoizing driver, cross-checked against serial.
    RolagPar,
    /// The incremental engine cross-checked against the full rescan.
    RolagIncremental,
    /// The rolling pass gated by the `rolag-tv` static translation
    /// validator, cross-checked against the unvalidated pass: the
    /// validator must accept every rewrite the engine accepts (zero
    /// static false rejects) and the validated module must be
    /// byte-identical to the unvalidated one — then the usual dynamic
    /// comparison against the original module cross-checks the static
    /// verdict against the interpreting oracle.
    RolagTv,
    /// Validator-gated beam search (`rolag-search<4>`), cross-checked
    /// against the greedy pass: the searched module must never measure
    /// more text bytes than the greedy result (per-function monotonicity
    /// summed over the module) — then the usual dynamic comparison
    /// checks the searched module against the original.
    RolagSearch,
}

impl Pipeline {
    /// Every pipeline, in the order `--pipelines all` runs them.
    pub const ALL: [Pipeline; 12] = [
        Pipeline::RoundTrip,
        Pipeline::BinaryRoundTrip,
        Pipeline::Unroll,
        Pipeline::Cse,
        Pipeline::Flatten,
        Pipeline::Cleanup,
        Pipeline::Reroll,
        Pipeline::Rolag,
        Pipeline::RolagPar,
        Pipeline::RolagIncremental,
        Pipeline::RolagTv,
        Pipeline::RolagSearch,
    ];

    /// Stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::RoundTrip => "roundtrip",
            Pipeline::BinaryRoundTrip => "binary-roundtrip",
            Pipeline::Unroll => "unroll",
            Pipeline::Cse => "cse",
            Pipeline::Flatten => "flatten",
            Pipeline::Cleanup => "cleanup",
            Pipeline::Reroll => "reroll",
            Pipeline::Rolag => "rolag",
            Pipeline::RolagPar => "rolag-par",
            Pipeline::RolagIncremental => "rolag-incremental",
            Pipeline::RolagTv => "rolag-tv",
            Pipeline::RolagSearch => "rolag-search",
        }
    }

    /// The `rolag-passes` pipeline spec this pipeline runs, for the
    /// single-transform pipelines. `None` for the meta-pipelines
    /// (round-trip and the engine cross-checks), which compare runs
    /// rather than apply one.
    pub fn spec(self) -> Option<&'static str> {
        match self {
            Pipeline::Unroll => Some("unroll<4>"),
            Pipeline::Cse => Some("cse"),
            Pipeline::Flatten => Some("flatten"),
            Pipeline::Cleanup => Some("cleanup"),
            Pipeline::Reroll => Some("reroll"),
            Pipeline::Rolag => Some("rolag"),
            Pipeline::RoundTrip
            | Pipeline::BinaryRoundTrip
            | Pipeline::RolagPar
            | Pipeline::RolagIncremental
            | Pipeline::RolagTv
            | Pipeline::RolagSearch => None,
        }
    }

    /// Parses `all` or a comma-separated list of pipeline names.
    pub fn parse_list(spec: &str) -> Result<Vec<Pipeline>, String> {
        if spec == "all" {
            return Ok(Pipeline::ALL.to_vec());
        }
        spec.split(',')
            .map(|name| {
                Pipeline::ALL
                    .into_iter()
                    .find(|p| p.name() == name.trim())
                    .ok_or_else(|| format!("unknown pipeline `{}`", name.trim()))
            })
            .collect()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a pipeline failed on a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The transform (or an engine cross-check) panicked.
    Panic,
    /// The transformed module no longer verifies.
    Verify,
    /// Observable behaviour changed, or an engine cross-check mismatched.
    Divergence,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Verify => "verify",
            FailureKind::Divergence => "divergence",
        })
    }
}

/// A reproducible oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Pipeline that failed.
    pub pipeline: Pipeline,
    /// Failure class (what the shrinker preserves).
    pub kind: FailureKind,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.pipeline, self.kind, self.detail)
    }
}

/// Runs a `rolag-passes` pipeline spec over a copy of `module` through
/// the shared pass manager — the one piece of dispatch every consumer of
/// the oracle now goes through. Returns the transformed module plus the
/// last rolag engine statistics the run produced (for the rescue and
/// cross-check assertions).
///
/// `Err` is `(kind, detail)`: [`FailureKind::Verify`] when `verify_each`
/// caught a broken module mid-pipeline, never anything else.
fn run_spec(
    module: &Module,
    spec: &str,
    jobs: Option<usize>,
    verify_each: bool,
) -> Result<(Module, Option<RolagStats>), (FailureKind, String)> {
    let passes = PassRegistry::builtin()
        .parse_pipeline(spec)
        .expect("oracle pipeline specs come from the registry");
    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each,
        print_changed: false,
    });
    pm.add_all(passes);
    let mut m = module.clone();
    let mut am = AnalysisManager::new();
    let mut cx = PassContext::new(TargetKind::default());
    cx.jobs = jobs;
    match pm.run(&mut m, &mut am, &mut cx) {
        Ok(report) => {
            let stats = report.outcomes.iter().rev().find_map(|o| o.rolag);
            Ok((m, stats))
        }
        Err(err) => Err((
            FailureKind::Verify,
            format!("verify after `{}`: {}", err.pass, err.errors.join("; ")),
        )),
    }
}

/// Applies `pipeline` to a copy of `module`. `Err` carries an *internal
/// consistency* divergence (round-trip not a fixed point, parallel/serial
/// or incremental/full mismatch, engine panic rescued mid-module).
/// Transform panics unwind out of this function; [`check_module`] catches
/// them.
pub fn apply_pipeline(pipeline: Pipeline, module: &Module) -> Result<Module, String> {
    apply_pipeline_checked(pipeline, module, false).map_err(|(_, detail)| detail)
}

/// [`apply_pipeline`] with inter-pass verification control: with
/// `verify_each` the pass manager verifies the module after every pass of
/// every registry-backed pipeline (including each engine of the
/// cross-check meta-pipelines), and a failure comes back as
/// [`FailureKind::Verify`] naming the pass.
pub fn apply_pipeline_checked(
    pipeline: Pipeline,
    module: &Module,
    verify_each: bool,
) -> Result<Module, (FailureKind, String)> {
    let diverge = |detail: String| Err((FailureKind::Divergence, detail));
    match pipeline {
        Pipeline::RoundTrip => {
            let text = print_module(module);
            let reparsed = match parse_module(&text) {
                Ok(m) => m,
                Err(e) => return diverge(format!("printed module fails to parse: {e}")),
            };
            let text2 = print_module(&reparsed);
            if text2 != text {
                return diverge("print is not a fixed point across parse(print(m))".into());
            }
            Ok(reparsed)
        }
        Pipeline::BinaryRoundTrip => {
            let bytes = rolag_ir::encode_module(module);
            let decoded = match rolag_ir::decode_module(&bytes) {
                Ok(m) => m,
                Err(e) => return diverge(format!("encoded module fails to decode: {e}")),
            };
            if print_module(&decoded) != print_module(module) {
                return diverge("binary round-trip is not print-identical".into());
            }
            if rolag_ir::encode_module(&decoded) != bytes {
                return diverge("re-encoding the decoded module is not byte-stable".into());
            }
            Ok(decoded)
        }
        Pipeline::Rolag => {
            let (m, stats) = run_spec(module, "rolag", None, verify_each)?;
            let rescued = stats.map(|s| s.rescued).unwrap_or(0);
            if rescued > 0 {
                return diverge(format!(
                    "engine panicked on {rescued} function(s) (rescued)"
                ));
            }
            Ok(m)
        }
        Pipeline::RolagPar => {
            let (serial, serial_stats) = run_spec(module, "rolag", None, verify_each)?;
            let (m, par_stats) = run_spec(module, "rolag", Some(2), verify_each)?;
            let (serial_stats, par_stats) = (
                serial_stats.unwrap_or_default(),
                par_stats.unwrap_or_default(),
            );
            if par_stats.rescued + serial_stats.rescued > 0 {
                return diverge("engine panicked under the driver (rescued)".into());
            }
            if print_module(&m) != print_module(&serial) {
                return diverge("parallel driver output differs from the serial pass".into());
            }
            if par_stats != serial_stats {
                return diverge(format!(
                    "parallel driver stats differ from serial: {} vs {}",
                    par_stats, serial_stats
                ));
            }
            Ok(m)
        }
        Pipeline::RolagIncremental => {
            let (m, incr_stats) = run_spec(module, "rolag", None, verify_each)?;
            let (full, full_stats) = run_spec(module, "rolag-rescan", None, verify_each)?;
            let (incr_stats, full_stats) = (
                incr_stats.unwrap_or_default(),
                full_stats.unwrap_or_default(),
            );
            if incr_stats.rescued + full_stats.rescued > 0 {
                return diverge(
                    "engine panicked during the incremental cross-check (rescued)".into(),
                );
            }
            if print_module(&m) != print_module(&full) {
                return diverge("incremental engine output differs from the full rescan".into());
            }
            if incr_stats != full_stats {
                return diverge(format!(
                    "incremental stats differ from full rescan: {} vs {}",
                    incr_stats, full_stats
                ));
            }
            Ok(m)
        }
        Pipeline::RolagTv => {
            let (plain, plain_stats) = run_spec(module, "rolag", None, verify_each)?;
            let (m, tv_stats) = run_spec(module, "tv", None, verify_each)?;
            let (plain_stats, tv_stats) = (
                plain_stats.unwrap_or_default(),
                tv_stats.unwrap_or_default(),
            );
            if plain_stats.rescued + tv_stats.rescued > 0 {
                return diverge("engine panicked during the validated run (rescued)".into());
            }
            if tv_stats.tv_rejected > 0 {
                return diverge(format!(
                    "static validator rejected {} rewrite(s) the engine accepted",
                    tv_stats.tv_rejected
                ));
            }
            if print_module(&m) != print_module(&plain) {
                return diverge("validated pass output differs from the unvalidated pass".into());
            }
            Ok(m)
        }
        Pipeline::RolagSearch => {
            let (greedy, greedy_stats) = run_spec(module, "rolag", None, verify_each)?;
            let (m, search_stats) = run_spec(module, "rolag-search<4>", None, verify_each)?;
            let (greedy_stats, search_stats) = (
                greedy_stats.unwrap_or_default(),
                search_stats.unwrap_or_default(),
            );
            if greedy_stats.rescued + search_stats.rescued > 0 {
                return diverge("engine panicked during the search run (rescued)".into());
            }
            let greedy_text = rolag_lower::measure_module(&greedy).text;
            let search_text = rolag_lower::measure_module(&m).text;
            if search_text > greedy_text {
                return diverge(format!(
                    "beam search measured more text bytes than greedy: {search_text} vs {greedy_text}"
                ));
            }
            Ok(m)
        }
        // Every single-transform pipeline is pure registry dispatch.
        _ => {
            let spec = pipeline.spec().expect("single-transform pipeline");
            let (m, _) = run_spec(module, spec, None, verify_each)?;
            Ok(m)
        }
    }
}

/// The `readwrite` subsequence of an external-call trace: the only calls a
/// legal transform must preserve exactly (pure and read-only calls may be
/// merged or dropped).
fn effectful_trace<'t>(
    original: &Module,
    trace: &'t [rolag_ir::interp::CallEvent],
) -> Vec<&'t rolag_ir::interp::CallEvent> {
    trace
        .iter()
        .filter(|ev| match original.func_by_name(&ev.callee) {
            Some(id) => original.func(id).effects == Effects::ReadWrite,
            None => true,
        })
        .collect()
}

/// Value equality with *bitwise* float comparison: the interpreter is a
/// deterministic IEEE machine, so a correct transform preserves the exact
/// bit pattern — and `NaN` results must compare equal to themselves.
fn ivalue_eq(a: IValue, b: IValue) -> bool {
    match (a, b) {
        (IValue::Float(x), IValue::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn event_eq(a: &rolag_ir::interp::CallEvent, b: &rolag_ir::interp::CallEvent) -> bool {
    a.callee == b.callee
        && a.args.len() == b.args.len()
        && a.args.iter().zip(&b.args).all(|(&x, &y)| ivalue_eq(x, y))
        && ivalue_eq(a.result, b.result)
}

/// Runs `entry(args)` on both modules and compares observable behaviour,
/// trap-aware. `Err` describes the first mismatch.
pub fn compare_behaviour(
    original: &Module,
    transformed: &Module,
    entry: &str,
    args: &[rolag_ir::interp::IValue],
) -> Result<(), String> {
    let mut ia = Interpreter::new(original).with_max_steps(MAX_STEPS);
    let mut ib = Interpreter::new(transformed).with_max_steps(MAX_STEPS);
    let ra = ia.run(entry, args);
    let rb = ib.run(entry, args);
    match (ra, rb) {
        (Ok(oa), Ok(ob)) => compare_outcomes(original, &ia, &oa, transformed, &ib, &ob),
        (Err(ea), Err(eb)) => {
            if std::mem::discriminant(&ea) == std::mem::discriminant(&eb) {
                Ok(())
            } else {
                Err(format!("trap classes differ: `{ea}` vs `{eb}`"))
            }
        }
        (Ok(_), Err(e)) => Err(format!("original completed but transformed trapped: {e}")),
        (Err(e), Ok(_)) => Err(format!("original trapped ({e}) but transformed completed")),
    }
}

fn compare_outcomes(
    original: &Module,
    ia: &Interpreter<'_>,
    oa: &Outcome,
    transformed: &Module,
    ib: &Interpreter<'_>,
    ob: &Outcome,
) -> Result<(), String> {
    if !ivalue_eq(oa.ret, ob.ret) {
        return Err(format!(
            "return values differ: {:?} vs {:?}",
            oa.ret, ob.ret
        ));
    }
    let ta = effectful_trace(original, &oa.trace);
    let tb = effectful_trace(original, &ob.trace);
    if ta.len() != tb.len() || ta.iter().zip(&tb).any(|(a, b)| !event_eq(a, b)) {
        return Err(format!(
            "effectful call traces differ:\n  original:    {ta:?}\n  transformed: {tb:?}"
        ));
    }
    for g in original.global_ids() {
        let name = &original.global(g).name;
        let Some(g2) = transformed.global_by_name(name) else {
            return Err(format!("global @{name} disappeared"));
        };
        let size = original.global_size(g);
        let a = ia
            .mem
            .read_bytes(ia.global_addr(g), size)
            .map_err(|e| e.to_string())?;
        let b = ib
            .mem
            .read_bytes(ib.global_addr(g2), size)
            .map_err(|e| e.to_string())?;
        if a != b {
            return Err(format!("final contents of @{name} differ"));
        }
    }
    Ok(())
}

/// True when the function can be driven by [`args_for`]: a definition
/// whose parameters are ints, floats, or pointers (i.e. all of them).
fn interpretable_entries(module: &Module) -> Vec<String> {
    module
        .func_ids()
        .filter(|&id| !module.func(id).is_declaration)
        .map(|id| module.func(id).name.clone())
        .collect()
}

/// Checks one module against a set of pipelines, interpreting every entry
/// point over `runs` deterministic argument sets. Returns the first
/// failure.
///
/// # Errors
///
/// [`Failure`] identifies the pipeline, the failure class, and the first
/// observed mismatch.
pub fn check_module(module: &Module, pipelines: &[Pipeline], runs: u64) -> Result<(), Failure> {
    check_module_opts(module, pipelines, runs, false)
}

/// [`check_module`] with inter-pass verification: with `verify_each`, the
/// pass manager verifies the module after every pass of every
/// registry-backed pipeline instead of only at the end.
pub fn check_module_opts(
    module: &Module,
    pipelines: &[Pipeline],
    runs: u64,
    verify_each: bool,
) -> Result<(), Failure> {
    for &pipeline in pipelines {
        check_pipeline(module, pipeline, runs, verify_each)?;
    }
    Ok(())
}

fn check_pipeline(
    module: &Module,
    pipeline: Pipeline,
    runs: u64,
    verify_each: bool,
) -> Result<(), Failure> {
    let fail = |kind, detail| {
        Err(Failure {
            pipeline,
            kind,
            detail,
        })
    };
    let transformed = match catch_unwind(AssertUnwindSafe(|| {
        apply_pipeline_checked(pipeline, module, verify_each)
    })) {
        Ok(Ok(m)) => m,
        Ok(Err((kind, detail))) => return fail(kind, detail),
        Err(payload) => return fail(FailureKind::Panic, panic_message(&payload)),
    };
    if let Err(errors) = verify_module(&transformed) {
        let detail = errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        return fail(FailureKind::Verify, detail);
    }
    for entry in interpretable_entries(module) {
        for k in 0..runs {
            let Some(args) = args_for(module, &entry, k) else {
                continue;
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                compare_behaviour(module, &transformed, &entry, &args)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(detail)) => {
                    return fail(
                        FailureKind::Divergence,
                        format!("@{entry}({args:?}): {detail}"),
                    )
                }
                Err(payload) => {
                    return fail(
                        FailureKind::Panic,
                        format!(
                            "interpreter panicked on @{entry}({args:?}): {}",
                            panic_message(&payload)
                        ),
                    )
                }
            }
        }
    }
    Ok(())
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_module;

    #[test]
    fn pipeline_list_parses() {
        assert_eq!(
            Pipeline::parse_list("all").unwrap().len(),
            Pipeline::ALL.len()
        );
        assert_eq!(
            Pipeline::parse_list("cse, rolag").unwrap(),
            vec![Pipeline::Cse, Pipeline::Rolag]
        );
        assert!(Pipeline::parse_list("bogus").is_err());
    }

    #[test]
    fn small_corpus_is_clean_on_every_pipeline() {
        for i in 0..16 {
            let m = generate_module(0, i);
            if let Err(f) = check_module(&m, &Pipeline::ALL, 2) {
                panic!("module (0,{i}) failed: {f}");
            }
        }
    }

    #[test]
    fn a_miscompile_is_caught() {
        // `cleanup` on a module whose store we secretly retarget must
        // diverge — built by comparing two genuinely different modules.
        let a = parse_module(
            "module \"t\"\nglobal @g : [2 x i32] = zero\nfunc @f() -> void {\nentry:\n  %p = gep i32, @g, i64 0\n  store i32 1, %p\n  ret\n}\n",
        )
        .unwrap();
        let b = parse_module(
            "module \"t\"\nglobal @g : [2 x i32] = zero\nfunc @f() -> void {\nentry:\n  %p = gep i32, @g, i64 1\n  store i32 1, %p\n  ret\n}\n",
        )
        .unwrap();
        let err = compare_behaviour(&a, &b, "f", &[]).unwrap_err();
        assert!(err.contains("@g"), "unexpected detail: {err}");
    }

    #[test]
    fn a_trap_mismatch_is_caught() {
        let trapping = parse_module(
            "module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %d = sdiv i32 %p0, i32 0\n  ret %d\n}\n",
        )
        .unwrap();
        let clean = parse_module("module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  ret %p0\n}\n")
            .unwrap();
        let err = compare_behaviour(&trapping, &clean, "f", &[rolag_ir::interp::IValue::Int(3)])
            .unwrap_err();
        assert!(err.contains("trapped"), "unexpected detail: {err}");
    }
}
