//! # rolag-frontend
//!
//! Source frontends for the RoLAG loop-rolling reproduction.
//!
//! A [`Frontend`] turns source bytes into a [`rolag_ir::Module`] plus
//! per-function diagnostics. Two implementations ship with the crate:
//!
//! * [`native::NativeFrontend`] — the project's own textual `.rir` format
//!   and the compact binary `.rlir` format (detected by magic bytes);
//! * [`llvm::LlvmFrontend`] — an importer for the LLVM-textual-IR subset
//!   our generators and the TSVC kernels exercise. Anything outside the
//!   subset is a clean per-function skip with a [`SkipCode`], never a
//!   panic.
//!
//! The companion [`emit`] module renders a module back out as LLVM text
//! (the inverse of the importer over the shared subset), and [`corpus`]
//! holds the streaming corpus pipeline that feeds bounded batches of
//! frontend output into `rolag::roll_module_par` under a memory budget.

#![warn(missing_docs)]

pub mod corpus;
pub mod emit;
pub mod llvm;
pub mod native;

use std::fmt;

use rolag_ir::Module;

/// Machine-readable reason a function (or global) was skipped by a
/// frontend instead of imported.
///
/// Skips are per-function: the function is registered as an external
/// declaration so callers still resolve, but its body is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum SkipCode {
    /// Instruction or constant kind outside the supported subset
    /// (e.g. `fptoui`, `extractvalue`, `atomicrmw`).
    UnsupportedOp,
    /// Type outside the subset (vectors, fp80/fp128, packed or opaque
    /// structs, byval/sret aggregates-by-copy).
    UnsupportedType,
    /// `fcmp` predicate outside the ordered subset we model.
    UnsupportedPredicate,
    /// Constant we cannot represent (`null`, constant expressions,
    /// integers wider than 64 bits).
    UnsupportedConstant,
    /// Variadic function or call.
    Varargs,
    /// Call through a pointer rather than a declared symbol.
    IndirectCall,
    /// Volatile or atomic memory access.
    Atomics,
    /// `invoke`/`landingpad`/EH constructs.
    ExceptionHandling,
    /// Module-level or inline assembly.
    InlineAsm,
    /// Reference to a symbol that was itself skipped or never declared.
    UnknownReference,
    /// Global initializer outside the subset (pointer initializers,
    /// nested aggregates, relocations).
    UnsupportedGlobal,
    /// Body failed to parse for a reason not covered above.
    MalformedBody,
}

impl SkipCode {
    /// Stable string form used in stats maps and reports.
    pub fn code(self) -> &'static str {
        match self {
            SkipCode::UnsupportedOp => "unsupported-op",
            SkipCode::UnsupportedType => "unsupported-type",
            SkipCode::UnsupportedPredicate => "unsupported-predicate",
            SkipCode::UnsupportedConstant => "unsupported-constant",
            SkipCode::Varargs => "varargs",
            SkipCode::IndirectCall => "indirect-call",
            SkipCode::Atomics => "atomics",
            SkipCode::ExceptionHandling => "exception-handling",
            SkipCode::InlineAsm => "inline-asm",
            SkipCode::UnknownReference => "unknown-reference",
            SkipCode::UnsupportedGlobal => "unsupported-global",
            SkipCode::MalformedBody => "malformed-body",
        }
    }
}

impl fmt::Display for SkipCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One skipped function: which symbol, why, and where in the source.
#[derive(Debug, Clone)]
pub struct Skip {
    /// Symbol name (without `@`).
    pub symbol: String,
    /// Machine-readable reason.
    pub code: SkipCode,
    /// Human-readable detail (e.g. the offending instruction).
    pub detail: String,
    /// 1-based source line of the offending construct (0 when unknown).
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
}

/// A diagnostic with a source span, rendered through the caret printer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Origin (file path or `<stdin>`).
    pub origin: String,
    /// 1-based line (0 when the error has no location, e.g. binary input).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Message text.
    pub message: String,
}

impl Diagnostic {
    /// Renders `origin:line:col: error: message` followed by the source
    /// line and a caret, matching the renderer used by pass-pipeline
    /// spec errors. Omits the caret when the span is unknown or out of
    /// range (binary input).
    pub fn render(&self, source: &str) -> String {
        let mut out = if self.line == 0 {
            format!("{}: error: {}", self.origin, self.message)
        } else {
            format!(
                "{}:{}:{}: error: {}",
                self.origin, self.line, self.col, self.message
            )
        };
        if self.line > 0 {
            if let Some(text) = source.lines().nth(self.line as usize - 1) {
                out.push_str("\n  ");
                out.push_str(text);
                out.push_str("\n  ");
                let col = (self.col.max(1) as usize - 1).min(text.len());
                for c in text[..col].chars() {
                    out.push(if c == '\t' { '\t' } else { ' ' });
                }
                out.push('^');
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: error: {}", self.origin, self.message)
        } else {
            write!(
                f,
                "{}:{}:{}: error: {}",
                self.origin, self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for Diagnostic {}

/// Result of a successful frontend parse: the module plus any
/// per-function skips.
#[derive(Debug)]
pub struct FrontendResult {
    /// The imported module. Skipped functions appear as declarations.
    pub module: Module,
    /// Functions (or globals) dropped from the import, with reasons.
    pub skips: Vec<Skip>,
}

/// A source frontend: parses bytes into a module.
pub trait Frontend {
    /// Short name used in CLI flags and reports (`"rir"`, `"llvm"`).
    fn name(&self) -> &'static str;

    /// Parses `source` into a module. `origin` labels diagnostics
    /// (file path or `<stdin>`).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when the input is malformed at module
    /// granularity. Per-function trouble inside an otherwise healthy
    /// module is reported through [`FrontendResult::skips`] instead.
    fn parse(&self, source: &[u8], origin: &str) -> Result<FrontendResult, Diagnostic>;
}

/// Which frontend to use for an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendKind {
    /// Decide from the file name and content ([`detect`]).
    #[default]
    Auto,
    /// Native `.rir` text / `.rlir` binary.
    Native,
    /// LLVM textual IR subset.
    Llvm,
}

impl FrontendKind {
    /// Parses a `--frontend` flag value.
    pub fn from_flag(s: &str) -> Option<FrontendKind> {
        match s {
            "auto" => Some(FrontendKind::Auto),
            "rir" | "native" | "rlir" => Some(FrontendKind::Native),
            "llvm" | "ll" => Some(FrontendKind::Llvm),
            _ => None,
        }
    }

    /// Resolves `Auto` against a concrete input, then builds the frontend.
    pub fn frontend_for(self, origin: &str, source: &[u8]) -> Box<dyn Frontend> {
        match self {
            FrontendKind::Native => Box::new(native::NativeFrontend),
            FrontendKind::Llvm => Box::new(llvm::LlvmFrontend),
            FrontendKind::Auto => match detect(origin, source) {
                FrontendKind::Llvm => Box::new(llvm::LlvmFrontend),
                _ => Box::new(native::NativeFrontend),
            },
        }
    }
}

/// Guesses the frontend for an input from its name and leading bytes:
/// `RLIR` magic or a `module "` header mean native; an `.ll` extension
/// or characteristic LLVM lines (`define `, `declare `, `; ModuleID`,
/// `target `) mean LLVM. Defaults to native.
pub fn detect(origin: &str, source: &[u8]) -> FrontendKind {
    if source.starts_with(&rolag_ir::serialization::MAGIC) {
        return FrontendKind::Native;
    }
    if origin.ends_with(".ll") {
        return FrontendKind::Llvm;
    }
    if origin.ends_with(".rir") || origin.ends_with(".rlir") {
        return FrontendKind::Native;
    }
    let text = String::from_utf8_lossy(&source[..source.len().min(4096)]);
    for line in text.lines() {
        let line = line.trim_start();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("module \"") {
            return FrontendKind::Native;
        }
        if line.starts_with("; ModuleID")
            || line.starts_with("define ")
            || line.starts_with("declare ")
            || line.starts_with("target ")
            || line.starts_with("source_filename")
        {
            return FrontendKind::Llvm;
        }
    }
    FrontendKind::Native
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_by_magic_and_content() {
        assert_eq!(detect("x", b"RLIR\x01\x00rest"), FrontendKind::Native);
        assert_eq!(detect("x.ll", b""), FrontendKind::Llvm);
        assert_eq!(detect("x.rir", b""), FrontendKind::Native);
        assert_eq!(detect("x", b"module \"m\"\n"), FrontendKind::Native);
        assert_eq!(
            detect("x", b"; ModuleID = 'm'\ndefine void @f() {\n"),
            FrontendKind::Llvm
        );
        assert_eq!(
            detect("x", b"\n\ndeclare i32 @f(i32)\n"),
            FrontendKind::Llvm
        );
        assert_eq!(detect("x", b"random text"), FrontendKind::Native);
    }

    #[test]
    fn diagnostic_caret_render() {
        let d = Diagnostic {
            origin: "a.ll".into(),
            line: 2,
            col: 5,
            message: "bad token".into(),
        };
        let src = "line one\nabc def\n";
        let r = d.render(src);
        assert_eq!(r, "a.ll:2:5: error: bad token\n  abc def\n      ^");
        let no_span = Diagnostic {
            origin: "a.rlir".into(),
            line: 0,
            col: 0,
            message: "truncated".into(),
        };
        assert_eq!(no_span.render(""), "a.rlir: error: truncated");
    }
}
