//! Native frontend: the project's own `.rir` textual format and the
//! compact `.rlir` binary format, detected by magic bytes rather than
//! file extension.

use rolag_ir::serialization::MAGIC;
use rolag_ir::{decode_module, parser};

use crate::{Diagnostic, Frontend, FrontendResult};

/// Frontend for native `.rir` text and `.rlir` binary modules.
///
/// Binary input is recognised by the leading `RLIR` magic; everything
/// else is treated as text. Native input never produces per-function
/// skips — the format is exactly our IR, so errors are module-fatal.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeFrontend;

impl Frontend for NativeFrontend {
    fn name(&self) -> &'static str {
        "rir"
    }

    fn parse(&self, source: &[u8], origin: &str) -> Result<FrontendResult, Diagnostic> {
        if source.starts_with(&MAGIC) {
            let module = decode_module(source).map_err(|e| Diagnostic {
                origin: origin.to_string(),
                line: 0,
                col: 0,
                message: format!("invalid binary module: {e:?}"),
            })?;
            return Ok(FrontendResult {
                module,
                skips: Vec::new(),
            });
        }
        let text = std::str::from_utf8(source).map_err(|e| Diagnostic {
            origin: origin.to_string(),
            line: 0,
            col: 0,
            message: format!("input is not UTF-8 (and not RLIR binary): {e}"),
        })?;
        let module = parser::parse_module(text).map_err(|e| Diagnostic {
            origin: origin.to_string(),
            line: e.line,
            col: e.col,
            message: e.message,
        })?;
        Ok(FrontendResult {
            module,
            skips: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::encode_module;
    use rolag_ir::printer::print_module;

    const SAMPLE: &str = "module \"m\"\n\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = add i32 %p0, i32 1\n  ret %1\n}\n";

    #[test]
    fn text_and_binary_round_trip() {
        let fe = NativeFrontend;
        let r = fe.parse(SAMPLE.as_bytes(), "<stdin>").unwrap();
        assert!(r.skips.is_empty());
        let bytes = encode_module(&r.module);
        let r2 = fe.parse(&bytes, "f.rlir").unwrap();
        assert_eq!(print_module(&r.module), print_module(&r2.module));
    }

    #[test]
    fn parse_error_carries_span() {
        let fe = NativeFrontend;
        let err = fe.parse(b"module \"m\"\nbogus\n", "x.rir").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("x.rir:2:"));
    }

    #[test]
    fn truncated_binary_is_module_fatal() {
        let fe = NativeFrontend;
        let err = fe.parse(b"RLIR\x01\x00\x03", "x.rlir").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("invalid binary module"));
    }
}
