//! Renders a module as LLVM textual IR.
//!
//! The output stays inside the subset [`crate::llvm::LlvmFrontend`]
//! imports, so `import(emit_llvm(m))` round-trips every construct the
//! project IR can express: scalar integer/float/pointer arithmetic,
//! `alloca`/`load`/`store`/`getelementptr`, comparisons, casts, direct
//! calls, `phi`/`br`/`ret`, and constant-array globals. Declaration
//! memory effects map to `readnone`/`readonly` attributes; definitions
//! carry no effect attribute (matching the native printer, which also
//! drops definition effects).
//!
//! Float constants are always spelled as bit-exact `0x...` doubles so
//! the round trip preserves NaN payloads and signed zeros.

use std::collections::HashMap;
use std::fmt::Write as _;

use rolag_ir::inst::{InstExtra, Opcode};
use rolag_ir::module::GlobalInit;
use rolag_ir::types::TypeKind;
use rolag_ir::{Effects, Function, Module, ValueDef, ValueId};

/// True when `name` is a plain LLVM identifier (`[a-zA-Z$._][a-zA-Z$._0-9-]*`)
/// and can follow `@`/`%` unquoted.
fn is_llvm_ident(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '$' || c == '.' || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '$' || c == '.' || c == '_' || c == '-')
}

/// Symbol/label spelling: bare when a plain identifier, quoted with
/// LLVM `\XX` escapes otherwise.
fn sym(name: &str) -> String {
    if is_llvm_ident(name) {
        return name.to_string();
    }
    let mut out = String::from("\"");
    for b in name.bytes() {
        match b {
            b'"' | b'\\' => {
                let _ = write!(out, "\\{b:02X}");
            }
            0x20..=0x7e => out.push(b as char),
            _ => {
                let _ = write!(out, "\\{b:02X}");
            }
        }
    }
    out.push('"');
    out
}

/// Emits one module as LLVM textual IR.
pub fn emit_llvm(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; ModuleID = '{}'", module.name);
    for g in module.global_ids() {
        let data = module.global(g);
        let kind = if data.is_const { "constant" } else { "global" };
        let ty = module.types.display(data.ty);
        let init = match &data.init {
            GlobalInit::Zero => "zeroinitializer".to_string(),
            GlobalInit::Ints { elem_ty, values } => {
                if matches!(module.types.kind(data.ty), TypeKind::Array { .. }) {
                    let elem = module.types.display(*elem_ty);
                    let vals: Vec<String> = values.iter().map(|v| format!("{elem} {v}")).collect();
                    format!("[{}]", vals.join(", "))
                } else {
                    // Scalar global: `@g = global i32 5`.
                    values.first().copied().unwrap_or(0).to_string()
                }
            }
            GlobalInit::Bytes(bytes) => {
                let mut s = String::from("c\"");
                for &b in bytes {
                    match b {
                        b'"' | b'\\' => {
                            let _ = write!(s, "\\{b:02X}");
                        }
                        0x20..=0x7e => s.push(b as char),
                        _ => {
                            let _ = write!(s, "\\{b:02X}");
                        }
                    }
                }
                s.push('"');
                s
            }
        };
        let _ = writeln!(out, "@{} = {kind} {ty} {init}", sym(&data.name));
    }
    for f in module.func_ids() {
        out.push('\n');
        emit_function(module, module.func(f), &mut out);
    }
    out
}

fn emit_function(module: &Module, func: &Function, out: &mut String) {
    let types = &module.types;
    let ret = types.display(func.ret_ty);
    if func.is_declaration {
        let params: Vec<String> = func
            .param_tys()
            .iter()
            .map(|&ty| types.display(ty))
            .collect();
        let attr = match func.effects {
            Effects::ReadNone => " readnone",
            Effects::ReadOnly => " readonly",
            Effects::ReadWrite => "",
        };
        let _ = writeln!(
            out,
            "declare {ret} @{}({}){attr}",
            sym(&func.name),
            params.join(", ")
        );
        return;
    }
    let params: Vec<String> = func
        .param_tys()
        .iter()
        .enumerate()
        .map(|(i, &ty)| format!("{} %p{i}", types.display(ty)))
        .collect();
    let _ = writeln!(
        out,
        "define {ret} @{}({}) {{",
        sym(&func.name),
        params.join(", ")
    );

    // `%pN` for parameters, `%vN` for results; `%vN` numbering continues
    // after the parameters so names line up with the native printer's.
    let mut names: HashMap<ValueId, String> = HashMap::new();
    for (i, &p) in func.params().iter().enumerate() {
        names.insert(p, format!("%p{i}"));
    }
    let mut next = func.params().len();
    for b in func.block_ids() {
        for &i in &func.block(b).insts {
            if !matches!(types.kind(func.inst(i).ty), TypeKind::Void) {
                names.insert(func.inst_result(i), format!("%v{next}"));
                next += 1;
            }
        }
    }

    let val = |v: ValueId| -> String {
        match func.value(v) {
            ValueDef::Inst(_) | ValueDef::Param { .. } => names
                .get(&v)
                .cloned()
                .unwrap_or_else(|| format!("%?{}", v.index())),
            ValueDef::ConstInt { value, .. } => value.to_string(),
            ValueDef::ConstFloat { bits, .. } => format!("0x{bits:016X}"),
            ValueDef::GlobalAddr(g) => format!("@{}", sym(&module.global(*g).name)),
            ValueDef::FuncAddr(f) => format!("@{}", sym(&module.func(*f).name)),
            ValueDef::Undef(_) => "undef".to_string(),
        }
    };
    let vty = |v: ValueId| types.display(func.value_ty(v, types));
    let tyval = |v: ValueId| format!("{} {}", vty(v), val(v));

    for b in func.block_ids() {
        let block = func.block(b);
        let label = &block.name;
        if is_llvm_ident(label) {
            let _ = writeln!(out, "{label}:");
        } else {
            let _ = writeln!(out, "{}:", sym(label));
        }
        for &i in &block.insts {
            let data = func.inst(i);
            let prefix = match names.get(&func.inst_result(i)) {
                Some(name) if !matches!(types.kind(data.ty), TypeKind::Void) => {
                    format!("{name} = ")
                }
                _ => String::new(),
            };
            let body = match (&data.opcode, &data.extra) {
                (Opcode::Icmp, InstExtra::Icmp(p)) => format!(
                    "icmp {} {}, {}",
                    p.mnemonic(),
                    tyval(data.operands[0]),
                    val(data.operands[1])
                ),
                (Opcode::Fcmp, InstExtra::Fcmp(p)) => format!(
                    "fcmp {} {}, {}",
                    p.mnemonic(),
                    tyval(data.operands[0]),
                    val(data.operands[1])
                ),
                (Opcode::Gep, InstExtra::Gep { elem_ty }) => {
                    let idx: Vec<String> = data.operands[1..].iter().map(|&v| tyval(v)).collect();
                    format!(
                        "getelementptr {}, ptr {}, {}",
                        types.display(*elem_ty),
                        val(data.operands[0]),
                        idx.join(", ")
                    )
                }
                (Opcode::Call, InstExtra::Call { callee }) => {
                    let args: Vec<String> = data.operands.iter().map(|&v| tyval(v)).collect();
                    format!(
                        "call {} @{}({})",
                        types.display(data.ty),
                        sym(&module.func(*callee).name),
                        args.join(", ")
                    )
                }
                (Opcode::Phi, InstExtra::Phi { incoming }) => {
                    let arms: Vec<String> = data
                        .operands
                        .iter()
                        .zip(incoming)
                        .map(|(&v, &b)| format!("[ {}, %{} ]", val(v), sym(&func.block(b).name)))
                        .collect();
                    format!("phi {} {}", types.display(data.ty), arms.join(", "))
                }
                (Opcode::Br, InstExtra::Br { dest }) => {
                    format!("br label %{}", sym(&func.block(*dest).name))
                }
                (
                    Opcode::CondBr,
                    InstExtra::CondBr {
                        then_dest,
                        else_dest,
                    },
                ) => format!(
                    "br i1 {}, label %{}, label %{}",
                    val(data.operands[0]),
                    sym(&func.block(*then_dest).name),
                    sym(&func.block(*else_dest).name)
                ),
                (Opcode::Alloca, InstExtra::Alloca { elem_ty }) => {
                    if data.operands.is_empty() {
                        format!("alloca {}", types.display(*elem_ty))
                    } else {
                        format!(
                            "alloca {}, {}",
                            types.display(*elem_ty),
                            tyval(data.operands[0])
                        )
                    }
                }
                (Opcode::Load, _) => format!(
                    "load {}, ptr {}",
                    types.display(data.ty),
                    val(data.operands[0])
                ),
                (Opcode::Store, _) => format!(
                    "store {}, ptr {}",
                    tyval(data.operands[0]),
                    val(data.operands[1])
                ),
                (Opcode::Select, _) => format!(
                    "select i1 {}, {} {}, {} {}",
                    val(data.operands[0]),
                    types.display(data.ty),
                    val(data.operands[1]),
                    types.display(data.ty),
                    val(data.operands[2])
                ),
                (Opcode::Ret, _) => {
                    if data.operands.is_empty() {
                        "ret void".to_string()
                    } else {
                        format!(
                            "ret {} {}",
                            types.display(func.ret_ty),
                            val(data.operands[0])
                        )
                    }
                }
                (Opcode::Unreachable, _) => "unreachable".to_string(),
                (opcode, _) if opcode.is_cast() => format!(
                    "{} {} to {}",
                    opcode.mnemonic(),
                    tyval(data.operands[0]),
                    types.display(data.ty)
                ),
                (opcode, _) if opcode.is_binop() => format!(
                    "{} {} {}, {}",
                    opcode.mnemonic(),
                    types.display(data.ty),
                    val(data.operands[0]),
                    val(data.operands[1])
                ),
                (opcode, extra) => panic!("cannot emit {opcode:?} with extra {extra:?}"),
            };
            let _ = writeln!(out, "  {prefix}{body}");
        }
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::builder::FuncBuilder;
    use rolag_ir::inst::IntPredicate;
    use rolag_ir::module::GlobalData;

    #[test]
    fn emit_covers_core_shapes() {
        let mut m = Module::new("demo");
        let i32t = m.types.i32();
        let ptr = m.types.ptr();
        let void = m.types.void();
        let arr = m.types.array(i32t, 3);
        m.add_global(GlobalData {
            name: "tab".into(),
            ty: arr,
            init: GlobalInit::Ints {
                elem_ty: i32t,
                values: vec![1, 2, 3],
            },
            is_const: true,
        });
        m.declare_func("ext", vec![ptr], void, Effects::ReadOnly);
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t, ptr], i32t);
        let a = fb.param(0);
        let p = fb.param(1);
        fb.block("entry");
        let (ext, ext_ret) = fb.callee("ext");
        fb.ins(|b| {
            let one = b.i32_const(1);
            let s = b.add(a, one);
            let g = b.gep(b.types.i32(), p, &[s]);
            b.store(s, g);
            b.call(ext, ext_ret, &[p]);
            let c = b.icmp(IntPredicate::Slt, s, a);
            let sel = b.select(c, s, a);
            b.ret(Some(sel));
        });
        fb.finish();
        let text = emit_llvm(&m);
        assert!(text.contains("; ModuleID = 'demo'"));
        assert!(text.contains("@tab = constant [3 x i32] [i32 1, i32 2, i32 3]"));
        assert!(text.contains("declare void @ext(ptr) readonly"));
        assert!(text.contains("define i32 @f(i32 %p0, ptr %p1) {"));
        assert!(text.contains("%v2 = add i32 %p0, 1"));
        assert!(text.contains("%v3 = getelementptr i32, ptr %p1, i32 %v2"));
        assert!(text.contains("store i32 %v2, ptr %v3"));
        assert!(text.contains("call void @ext(ptr %p1)"));
        assert!(text.contains("%v4 = icmp slt i32 %v2, %p0"));
        assert!(text.contains("%v5 = select i1 %v4, i32 %v2, i32 %p0"));
        assert!(text.contains("ret i32 %v5"));
    }

    #[test]
    fn quoted_symbols_escape() {
        assert_eq!(sym("plain.name"), "plain.name");
        assert_eq!(sym("has space"), "\"has space\"");
        assert_eq!(sym("q\"uote"), "\"q\\22uote\"");
    }
}
