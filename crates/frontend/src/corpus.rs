//! Streaming corpus pipeline: iterate modules out of directories,
//! concatenated corpus files, NDJSON manifests, or `RLCP` containers,
//! merge them into bounded batches, and roll each batch through the
//! parallel driver so peak memory stays under a budget regardless of
//! corpus size.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use rolag::{
    roll_module_par_with, DriverOptions, DriverReport, MemoStore, RolagOptions, RolagStats,
};
use rolag_ir::module::{GlobalData, GlobalInit};
use rolag_ir::{Effects, Function, Module};
use rolag_par::WorkerPool;

use crate::{Diagnostic, FrontendKind};

/// Magic bytes of a corpus container file: a sequence of u32-LE
/// length-prefixed module blobs (each blob is native text, `RLIR`
/// binary, or LLVM text — frontends are chosen per blob).
pub const CONTAINER_MAGIC: [u8; 4] = *b"RLCP";

/// One module's worth of corpus input.
pub struct CorpusItem {
    /// Where the bytes came from (path, or `path#index` for packed
    /// sources) — used in diagnostics.
    pub origin: String,
    /// Raw module bytes, handed to a frontend.
    pub bytes: Vec<u8>,
}

/// A streaming corpus source.
pub type CorpusIter = Box<dyn Iterator<Item = io::Result<CorpusItem>>>;

/// Opens `path` as a streaming corpus:
///
/// * a directory — every `.rir`/`.rlir`/`.ll` file under it, sorted;
/// * an `RLCP` container — each length-prefixed blob;
/// * an `.ndjson`/`.jsonl` manifest — one `{"path": "..."}` per line,
///   relative to the manifest's directory;
/// * a concatenated text corpus — split at `module "` / `; ModuleID`
///   header lines;
/// * anything else — a single module.
pub fn open_corpus(path: &Path) -> io::Result<CorpusIter> {
    let meta = fs::metadata(path)?;
    if meta.is_dir() {
        let mut files = Vec::new();
        collect_module_files(path, &mut files)?;
        files.sort();
        let iter = files.into_iter().map(|p| {
            let bytes = fs::read(&p)?;
            Ok(CorpusItem {
                origin: p.display().to_string(),
                bytes,
            })
        });
        return Ok(Box::new(iter));
    }
    let mut file = File::open(path)?;
    let mut magic = [0u8; 4];
    let n = file.read(&mut magic)?;
    if n == 4 && magic == CONTAINER_MAGIC {
        return Ok(Box::new(ContainerSource {
            origin: path.display().to_string(),
            reader: BufReader::new(file),
            index: 0,
            done: false,
        }));
    }
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if ext == "ndjson" || ext == "jsonl" {
        let base = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let reader = BufReader::new(File::open(path)?);
        return Ok(Box::new(ManifestSource {
            origin: path.display().to_string(),
            base,
            lines: reader.lines(),
            line_no: 0,
        }));
    }
    let bytes = fs::read(path)?;
    if bytes.starts_with(&rolag_ir::serialization::MAGIC) || !is_concatenated_text(&bytes) {
        let origin = path.display().to_string();
        return Ok(Box::new(std::iter::once(Ok(CorpusItem { origin, bytes }))));
    }
    Ok(Box::new(ConcatTextSource::new(
        path.display().to_string(),
        bytes,
    )))
}

fn collect_module_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if entry.file_type()?.is_dir() {
            collect_module_files(&p, out)?;
        } else if matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("rir") | Some("rlir") | Some("ll")
        ) {
            out.push(p);
        }
    }
    Ok(())
}

/// True when a text byte has more than one module header line, i.e. the
/// file is a concatenated corpus rather than a single module.
fn is_concatenated_text(bytes: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return false;
    };
    text.lines().filter(|l| is_module_header(l)).count() > 1
}

fn is_module_header(line: &str) -> bool {
    line.starts_with("module \"") || line.starts_with("; ModuleID")
}

struct ConcatTextSource {
    origin: String,
    lines: std::vec::IntoIter<String>,
    pending: Option<String>,
    index: usize,
}

impl ConcatTextSource {
    fn new(origin: String, bytes: Vec<u8>) -> Self {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        ConcatTextSource {
            origin,
            lines: lines.into_iter(),
            pending: None,
            index: 0,
        }
    }
}

impl Iterator for ConcatTextSource {
    type Item = io::Result<CorpusItem>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut chunk = String::new();
        if let Some(first) = self.pending.take() {
            chunk.push_str(&first);
            chunk.push('\n');
        }
        for line in self.lines.by_ref() {
            if is_module_header(&line) && !chunk.trim().is_empty() {
                self.pending = Some(line);
                break;
            }
            chunk.push_str(&line);
            chunk.push('\n');
        }
        if chunk.trim().is_empty() {
            return None;
        }
        let origin = format!("{}#{}", self.origin, self.index);
        self.index += 1;
        Some(Ok(CorpusItem {
            origin,
            bytes: chunk.into_bytes(),
        }))
    }
}

struct ContainerSource {
    origin: String,
    reader: BufReader<File>,
    index: usize,
    done: bool,
}

impl Iterator for ContainerSource {
    type Item = io::Result<CorpusItem>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut len = [0u8; 4];
        match self.reader.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.done = true;
                return None;
            }
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        }
        let mut bytes = vec![0u8; u32::from_le_bytes(len) as usize];
        if let Err(e) = self.reader.read_exact(&mut bytes) {
            self.done = true;
            return Some(Err(e));
        }
        let origin = format!("{}#{}", self.origin, self.index);
        self.index += 1;
        Some(Ok(CorpusItem { origin, bytes }))
    }
}

/// Appends u32-LE length-prefixed module blobs to an `RLCP` container.
pub struct ContainerWriter<W: Write> {
    w: W,
}

impl<W: Write> ContainerWriter<W> {
    /// Starts a container on `w`, writing the magic.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(&CONTAINER_MAGIC)?;
        Ok(ContainerWriter { w })
    }

    /// Appends one module blob.
    pub fn append(&mut self, blob: &[u8]) -> io::Result<()> {
        self.w.write_all(&(blob.len() as u32).to_le_bytes())?;
        self.w.write_all(blob)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

struct ManifestSource {
    origin: String,
    base: PathBuf,
    lines: io::Lines<BufReader<File>>,
    line_no: usize,
}

impl Iterator for ManifestSource {
    type Item = io::Result<CorpusItem>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e)),
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            let Some(rel) = json_string_field(&line, "path") else {
                return Some(Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}:{}: manifest line has no \"path\"",
                        self.origin, self.line_no
                    ),
                )));
            };
            let p = self.base.join(rel);
            return Some(fs::read(&p).map(|bytes| CorpusItem {
                origin: p.display().to_string(),
                bytes,
            }));
        }
    }
}

/// Extracts a string field from one line of minimal JSON (enough for
/// `{"path": "...", ...}` manifests; handles `\"` and `\\` escapes).
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

/// Knobs for [`roll_corpus`].
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Peak-memory budget in bytes; batches are sized so the resident
    /// set stays under it. Default 1 GiB.
    pub mem_budget: u64,
    /// Worker count for the parallel driver; `0` means one per core.
    pub jobs: usize,
    /// Structural memoization within and across batches.
    pub memoize: bool,
    /// Frontend selection for corpus items.
    pub frontend: FrontendKind,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            mem_budget: 1 << 30,
            jobs: 0,
            memoize: true,
            frontend: FrontendKind::Auto,
        }
    }
}

impl CorpusOptions {
    /// Worker count the driver will actually use.
    pub fn effective_jobs(&self) -> u64 {
        if self.jobs > 0 {
            return self.jobs as u64;
        }
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1)
    }

    /// Input bytes per batch. Every driver worker clones the whole batch
    /// module, and in-memory IR expands the text by more than an order
    /// of magnitude (measured ~30x peak including driver scratch), so
    /// the budget is divided by an expansion factor times the worker
    /// count (plus the merged original), clamped to stay useful at both
    /// extremes.
    pub fn batch_budget(&self) -> u64 {
        let denom = 64 * (self.effective_jobs() + 1);
        (self.mem_budget / denom).clamp(1 << 17, 1 << 23)
    }

    /// Cross-batch memo store capacity, scaled to the budget so the
    /// store itself cannot blow it (entries hold whole rolled bodies,
    /// which for generator-sized functions run to tens of kilobytes).
    pub fn store_capacity(&self) -> usize {
        (self.mem_budget >> 20).clamp(64, 1 << 16) as usize
    }
}

/// Whole-corpus outcome of [`roll_corpus`].
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Corpus items (modules) read.
    pub items: u64,
    /// Items whose frontend parse failed module-fatally.
    pub parse_failures: u64,
    /// Function definitions that reached the driver.
    pub functions: u64,
    /// Definitions whose rolled body differs from the input.
    pub changed: u64,
    /// Functions skipped by frontends (out-of-subset imports).
    pub skipped: u64,
    /// Skip counts by reason code.
    pub skip_reasons: BTreeMap<String, u64>,
    /// Batches rolled.
    pub batches: u64,
    /// Aggregated pass statistics across all batches.
    pub stats: RolagStats,
    /// Definitions served by in-batch memoization.
    pub cache_hits: u64,
    /// Definitions replayed from the cross-batch store.
    pub store_hits: u64,
    /// Input bytes consumed.
    pub bytes_in: u64,
    /// Process peak resident set (`VmHWM`), when the platform exposes
    /// it; `0` otherwise.
    pub peak_rss_bytes: u64,
    /// End-to-end wall clock, nanoseconds.
    pub wall_ns: u64,
    /// First few module-fatal diagnostics, rendered.
    pub diagnostics: Vec<String>,
}

impl CorpusReport {
    /// Estimated text bytes saved by rolling.
    pub fn bytes_saved(&self) -> u64 {
        self.stats.size_before.saturating_sub(self.stats.size_after)
    }

    /// Fraction of driver-visible definitions that changed.
    pub fn rolled_fraction(&self) -> f64 {
        if self.functions == 0 {
            return 0.0;
        }
        self.changed as f64 / self.functions as f64
    }

    /// Definitions processed per wall-clock second.
    pub fn funcs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.functions as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Process peak resident set in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

const MAX_DIAGNOSTICS: usize = 20;

/// Accumulates parsed modules into one batch module, deduplicating
/// declarations and renaming colliding definitions/globals.
struct BatchBuilder {
    module: Module,
    bytes: u64,
    merged: u64,
}

fn weaker(a: Effects, b: Effects) -> Effects {
    use Effects::*;
    match (a, b) {
        (ReadWrite, _) | (_, ReadWrite) => ReadWrite,
        (ReadOnly, _) | (_, ReadOnly) => ReadOnly,
        _ => ReadNone,
    }
}

impl BatchBuilder {
    fn new(index: u64) -> Self {
        BatchBuilder {
            module: Module::new(format!("corpus.batch{index}")),
            bytes: 0,
            merged: 0,
        }
    }

    /// Merges `m` into the batch. Declarations with a matching name and
    /// signature are shared; colliding definitions and globals are
    /// renamed with a `.m{n}` suffix.
    fn merge(&mut self, m: &Module) {
        let tmap = self.module.types.absorb(&m.types, 0);
        let remap_t = |t: rolag_ir::TypeId| tmap[t.index()];

        let mut gmap = Vec::with_capacity(m.num_globals());
        for gid in m.global_ids() {
            let g = m.global(gid);
            let mut data = GlobalData {
                name: g.name.clone(),
                ty: remap_t(g.ty),
                init: match &g.init {
                    GlobalInit::Ints { elem_ty, values } => GlobalInit::Ints {
                        elem_ty: remap_t(*elem_ty),
                        values: values.clone(),
                    },
                    other => other.clone(),
                },
                is_const: g.is_const,
            };
            if let Some(existing) = self.module.global_by_name(&data.name) {
                if *self.module.global(existing) == data {
                    gmap.push(existing);
                    continue;
                }
                data.name = self.rename(&data.name);
            }
            gmap.push(self.module.add_global(data));
        }

        let mut fmap = Vec::with_capacity(m.num_funcs());
        let mut defs = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            let sig: Vec<_> = f.param_tys().iter().map(|&t| remap_t(t)).collect();
            let ret = remap_t(f.ret_ty);
            if f.is_declaration {
                if let Some(existing) = self.module.func_by_name(&f.name) {
                    let ef = self.module.func(existing);
                    if ef.is_declaration && ef.param_tys() == sig.as_slice() && ef.ret_ty == ret {
                        let eff = weaker(ef.effects, f.effects);
                        self.module.func_mut(existing).effects = eff;
                        fmap.push(existing);
                        continue;
                    }
                    let name = self.rename(&f.name);
                    fmap.push(
                        self.module
                            .add_func(Function::declare(name, sig, ret, f.effects)),
                    );
                } else {
                    fmap.push(self.module.add_func(Function::declare(
                        f.name.clone(),
                        sig,
                        ret,
                        f.effects,
                    )));
                }
            } else {
                let name = if self.module.func_by_name(&f.name).is_some() {
                    self.rename(&f.name)
                } else {
                    f.name.clone()
                };
                // Placeholder declaration so forward/self references and
                // later modules resolve; replaced below.
                let bid =
                    self.module
                        .add_func(Function::declare(name, sig, ret, Effects::ReadWrite));
                fmap.push(bid);
                defs.push((bid, fid));
            }
        }
        for (bid, fid) in defs {
            let mut func = m.func(fid).clone();
            func.name = self.module.func(bid).name.clone();
            func.is_declaration = false;
            func.effects = Effects::ReadWrite;
            func.remap_types(remap_t);
            func.remap_globals(|g| gmap[g.index()]);
            func.remap_funcs(|f| fmap[f.index()]);
            self.module.replace_func(bid, func);
        }
        self.merged += 1;
    }

    fn rename(&self, base: &str) -> String {
        let mut n = self.merged;
        loop {
            let cand = format!("{base}.m{n}");
            if self.module.func_by_name(&cand).is_none()
                && self.module.global_by_name(&cand).is_none()
            {
                return cand;
            }
            n += 1;
        }
    }
}

/// Rolls a streaming corpus in bounded batches.
///
/// Items are parsed with the configured frontend, merged into a batch
/// module until the batch's input-byte budget fills, and each batch is
/// rolled through [`roll_module_par_with`] with one persistent worker
/// pool and a cross-batch [`MemoStore`]. `on_batch` sees every rolled
/// batch (for output emission) before its memory is released.
pub fn roll_corpus<I, F>(
    items: I,
    opts: &RolagOptions,
    copts: &CorpusOptions,
    mut on_batch: F,
) -> io::Result<CorpusReport>
where
    I: Iterator<Item = io::Result<CorpusItem>>,
    F: FnMut(&Module, &DriverReport),
{
    let start = Instant::now();
    let driver = DriverOptions {
        jobs: copts.jobs,
        memoize: copts.memoize,
    };
    let pool = WorkerPool::new(copts.jobs);
    let store = MemoStore::new(copts.store_capacity());
    let mut report = CorpusReport::default();
    let batch_budget = copts.batch_budget();
    let mut batch = BatchBuilder::new(0);

    let mut flush = |batch: &mut BatchBuilder, report: &mut CorpusReport| {
        if batch.merged == 0 {
            return;
        }
        let dr = roll_module_par_with(
            &mut batch.module,
            opts,
            &driver,
            Some(&pool),
            copts.memoize.then_some(&store),
        );
        report.batches += 1;
        report.functions += dr.functions as u64;
        report.changed += dr.changed as u64;
        report.cache_hits += dr.cache_hits;
        report.store_hits += dr.store_hits;
        report.stats += dr.stats;
        on_batch(&batch.module, &dr);
        *batch = BatchBuilder::new(report.batches);
    };

    for item in items {
        let item = item?;
        report.items += 1;
        report.bytes_in += item.bytes.len() as u64;
        let frontend = copts.frontend.frontend_for(&item.origin, &item.bytes);
        match frontend.parse(&item.bytes, &item.origin) {
            Ok(res) => {
                report.skipped += res.skips.len() as u64;
                for s in &res.skips {
                    *report
                        .skip_reasons
                        .entry(s.code.code().to_string())
                        .or_insert(0) += 1;
                }
                batch.merge(&res.module);
                batch.bytes += item.bytes.len() as u64;
            }
            Err(d) => {
                report.parse_failures += 1;
                if report.diagnostics.len() < MAX_DIAGNOSTICS {
                    report.diagnostics.push(render_diag(&d, &item.bytes));
                }
            }
        }
        if batch.bytes >= batch_budget {
            flush(&mut batch, &mut report);
        }
    }
    flush(&mut batch, &mut report);

    report.peak_rss_bytes = peak_rss_bytes().unwrap_or(0);
    report.wall_ns = start.elapsed().as_nanos() as u64;
    Ok(report)
}

fn render_diag(d: &Diagnostic, bytes: &[u8]) -> String {
    match std::str::from_utf8(bytes) {
        Ok(text) => d.render(text),
        Err(_) => d.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::printer::print_module;

    fn small_module(i: usize) -> String {
        format!(
            "module \"m{i}\"\n\nfunc @f{i}(i32 %p0) -> i32 {{\nentry:\n  %1 = add i32 %p0, i32 {i}\n  ret %1\n}}\n"
        )
    }

    #[test]
    fn concat_text_splits_modules() {
        let text = format!("{}{}", small_module(0), small_module(1));
        let items: Vec<_> = ConcatTextSource::new("c.rir".into(), text.into_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].origin.ends_with("#0"));
        assert!(String::from_utf8_lossy(&items[1].bytes).contains("func @f1"));
    }

    #[test]
    fn container_round_trips() {
        let mut buf = Vec::new();
        {
            let mut w = ContainerWriter::new(&mut buf).unwrap();
            w.append(small_module(0).as_bytes()).unwrap();
            w.append(b"RLIR\x01\x00junk").unwrap();
            w.finish().unwrap();
        }
        assert!(buf.starts_with(&CONTAINER_MAGIC));
        // Skip the magic and decode the frames by hand.
        let mut at = 4usize;
        let mut frames = Vec::new();
        while at < buf.len() {
            let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
            frames.push(buf[at + 4..at + 4 + len].to_vec());
            at += 4 + len;
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], small_module(0).as_bytes());
    }

    #[test]
    fn manifest_field_parses() {
        assert_eq!(
            json_string_field(r#"{"path": "a/b.rir", "n": 3}"#, "path").as_deref(),
            Some("a/b.rir")
        );
        assert_eq!(
            json_string_field(r#"{"path":"x \"y\".ll"}"#, "path").as_deref(),
            Some("x \"y\".ll")
        );
        assert_eq!(json_string_field(r#"{"other": 1}"#, "path"), None);
    }

    #[test]
    fn batch_merge_dedups_and_renames() {
        let parse = |s: &str| rolag_ir::parser::parse_module(s).unwrap();
        let a = parse(
            "module \"a\"\n\ndeclare @ext(i32 %p0) -> void readonly\n\nfunc @f(i32 %p0) -> i32 {\nentry:\n  call void @ext(%p0)\n  ret %p0\n}\n",
        );
        let b = parse(
            "module \"b\"\n\ndeclare @ext(i32 %p0) -> void readwrite\n\nfunc @f(i32 %p0) -> i32 {\nentry:\n  call void @ext(%p0)\n  ret %p0\n}\n",
        );
        let mut batch = BatchBuilder::new(0);
        batch.merge(&a);
        batch.merge(&b);
        // One shared declaration (weakened to readwrite), two defs.
        assert_eq!(batch.module.num_funcs(), 3);
        let ext = batch.module.func_by_name("ext").unwrap();
        assert_eq!(batch.module.func(ext).effects, Effects::ReadWrite);
        assert!(batch.module.func_by_name("f").is_some());
        let renamed = batch.module.func_by_name("f.m1").unwrap();
        let text = print_module(&batch.module);
        assert!(text.contains("func @f.m1("), "{text}");
        assert!(!batch.module.func(renamed).is_declaration);
        rolag_ir::verify::verify_module(&batch.module).unwrap();
    }

    #[test]
    fn roll_corpus_streams_batches() {
        let items = (0..8).map(|i| {
            Ok(CorpusItem {
                origin: format!("mem#{i}"),
                bytes: small_module(i).into_bytes(),
            })
        });
        let opts = RolagOptions::default();
        let copts = CorpusOptions {
            mem_budget: 1 << 25, // tiny budget -> still one batch (clamped)
            ..CorpusOptions::default()
        };
        let mut batches = 0;
        let report = roll_corpus(items, &opts, &copts, |_m, _dr| batches += 1).unwrap();
        assert_eq!(report.items, 8);
        assert_eq!(report.functions, 8);
        assert_eq!(report.batches, batches as u64);
        assert!(report.parse_failures == 0);
        assert!(report.wall_ns > 0);
    }
}
