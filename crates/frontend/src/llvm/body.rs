//! Function-body parsing for the LLVM importer: instruction grammar,
//! `switch` lowering, and the two-sweep materializer.
//!
//! The materializer mirrors the native parser's order exactly — blocks
//! pre-created, instructions created with empty operand lists in a
//! first sweep (so forward references resolve), constants interned in
//! flat operand order in a second sweep — so a module imported from
//! `emit_llvm` output is structurally identical to one parsed from the
//! native printer's output, value table included.

use std::collections::{HashMap, HashSet};

use rolag_ir::inst::{FloatPredicate, InstData, InstExtra, IntPredicate, Opcode};
use rolag_ir::types::TypeId;
use rolag_ir::{BlockId, Function, Module, ValueId};

use super::lexer::Tok;
use super::{at_type_start, parse_type, Cursor, FnHeader, SkipErr};
use crate::SkipCode;

type Named = HashMap<String, Result<TypeId, SkipErr>>;

#[derive(Debug, Clone)]
pub(crate) enum LOperand {
    Local(String),
    CInt(TypeId, i64),
    CFloat(TypeId, f64),
    CFloatBits(TypeId, u64),
    Ref(String),
    Undef(TypeId),
}

#[derive(Debug, Clone)]
pub(crate) struct LInst {
    line: u32,
    col: u32,
    result: Option<String>,
    opcode: Opcode,
    ty: Option<TypeId>,
    ipred: Option<IntPredicate>,
    fpred: Option<FloatPredicate>,
    elem_ty: Option<TypeId>,
    callee: Option<String>,
    labels: Vec<String>,
    operands: Vec<LOperand>,
}

impl LInst {
    fn new(line: u32, col: u32, result: Option<String>, opcode: Opcode) -> Self {
        LInst {
            line,
            col,
            result,
            opcode,
            ty: None,
            ipred: None,
            fpred: None,
            elem_ty: None,
            callee: None,
            labels: Vec::new(),
            operands: Vec::new(),
        }
    }
}

/// A parsed body instruction: either a directly-representable one or a
/// `switch` awaiting lowering.
enum BInst {
    Plain(LInst),
    Switch {
        line: u32,
        col: u32,
        ty: TypeId,
        val: LOperand,
        default: String,
        cases: Vec<(i64, String)>,
    },
}

/// Fast-math / wrap / precision flags we accept and ignore.
const FLAGS: &[&str] = &[
    "nuw", "nsw", "exact", "fast", "nnan", "ninf", "nsz", "arcp", "contract", "afn", "reassoc",
    "disjoint", "nneg", "samesign", "inbounds", "nusw",
];

/// Parameter/return attributes we accept and ignore at call sites.
const ARG_ATTRS: &[&str] = &[
    "noundef",
    "nonnull",
    "noalias",
    "nocapture",
    "readonly",
    "readnone",
    "writeonly",
    "signext",
    "zeroext",
    "inreg",
    "immarg",
    "returned",
    "dead_on_unwind",
    "writable",
    "captures",
    "dereferenceable",
    "dereferenceable_or_null",
    "align",
    "range",
];

/// Debug/lifetime intrinsics whose calls are dropped (they carry no
/// semantics our IR models).
fn droppable_intrinsic(name: &str) -> bool {
    name.starts_with("llvm.dbg.")
        || name.starts_with("llvm.lifetime.")
        || name.starts_with("llvm.assume")
        || name.starts_with("llvm.experimental.noalias")
}

fn binop_opcode(w: &str) -> Option<Opcode> {
    Some(match w {
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "sdiv" => Opcode::SDiv,
        "udiv" => Opcode::UDiv,
        "srem" => Opcode::SRem,
        "urem" => Opcode::URem,
        "and" => Opcode::And,
        "or" => Opcode::Or,
        "xor" => Opcode::Xor,
        "shl" => Opcode::Shl,
        "lshr" => Opcode::LShr,
        "ashr" => Opcode::AShr,
        "fadd" => Opcode::FAdd,
        "fsub" => Opcode::FSub,
        "fmul" => Opcode::FMul,
        "fdiv" => Opcode::FDiv,
        _ => return None,
    })
}

fn cast_opcode(w: &str) -> Option<Opcode> {
    Some(match w {
        "trunc" => Opcode::Trunc,
        "zext" => Opcode::ZExt,
        "sext" => Opcode::SExt,
        "bitcast" => Opcode::Bitcast,
        "ptrtoint" => Opcode::PtrToInt,
        "inttoptr" => Opcode::IntToPtr,
        "fptosi" => Opcode::FpToSi,
        "sitofp" => Opcode::SiToFp,
        "fpext" => Opcode::FpExt,
        "fptrunc" => Opcode::FpTrunc,
        _ => return None,
    })
}

fn skip_flags(c: &mut Cursor) {
    while let Tok::Word(w) = c.peek() {
        if FLAGS.contains(&w.as_str()) {
            c.bump();
        } else {
            break;
        }
    }
}

fn parse_ty(c: &mut Cursor, module: &mut Module, named: &Named) -> Result<TypeId, SkipErr> {
    parse_type(c, module, named).map_err(|e| e.into_skip())
}

/// Parses one operand whose expected type is `ty`.
fn parse_operand(c: &mut Cursor, module: &Module, ty: TypeId) -> Result<LOperand, SkipErr> {
    match c.peek().clone() {
        Tok::Local(n) => {
            c.bump();
            Ok(LOperand::Local(n))
        }
        Tok::Global(n) => {
            c.bump();
            Ok(LOperand::Ref(n))
        }
        Tok::Int(v) => {
            c.bump();
            if module.types.is_float(ty) {
                Ok(LOperand::CFloat(ty, v as f64))
            } else {
                Ok(LOperand::CInt(ty, v))
            }
        }
        Tok::Float(v) => {
            c.bump();
            Ok(LOperand::CFloat(ty, v))
        }
        Tok::HexBits(bits) => {
            c.bump();
            if module.types.is_float(ty) {
                Ok(LOperand::CFloatBits(ty, bits))
            } else {
                Ok(LOperand::CInt(ty, bits as i64))
            }
        }
        Tok::BigInt => c.err(
            SkipCode::UnsupportedConstant,
            "integer constant wider than 64 bits",
        ),
        Tok::WideHex => c.err(
            SkipCode::UnsupportedType,
            "extended-precision float constant",
        ),
        Tok::Word(w) => match w.as_str() {
            "undef" | "poison" => {
                c.bump();
                Ok(LOperand::Undef(ty))
            }
            "true" => {
                c.bump();
                Ok(LOperand::CInt(ty, 1))
            }
            "false" => {
                c.bump();
                Ok(LOperand::CInt(ty, 0))
            }
            "null" | "none" => c.err(SkipCode::UnsupportedConstant, "null pointer constant"),
            "zeroinitializer" => c.err(SkipCode::UnsupportedConstant, "aggregate constant operand"),
            "asm" => c.err(SkipCode::InlineAsm, "inline assembly"),
            "blockaddress" => c.err(SkipCode::UnsupportedConstant, "blockaddress constant"),
            other => c.err(
                SkipCode::UnsupportedConstant,
                format!("constant expression or unknown constant '{other}'"),
            ),
        },
        Tok::Lt => c.err(SkipCode::UnsupportedType, "vector constant"),
        Tok::LBracket | Tok::LBrace | Tok::CStr(_) => {
            c.err(SkipCode::UnsupportedConstant, "aggregate constant operand")
        }
        other => c.err(
            SkipCode::MalformedBody,
            format!("expected operand, found {other:?}"),
        ),
    }
}

/// Skips call-site parameter attributes (`noundef`, `align 8`,
/// `dereferenceable(16)` ...).
fn skip_arg_attrs(c: &mut Cursor) -> Result<(), SkipErr> {
    while let Tok::Word(w) = c.peek().clone() {
        if super::SEMANTIC_PARAM_ATTRS.contains(&w.as_str()) {
            return c.err(SkipCode::UnsupportedType, format!("{w} argument"));
        }
        if !ARG_ATTRS.contains(&w.as_str()) {
            break;
        }
        c.bump();
        if matches!(c.peek(), Tok::LParen) {
            while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                c.bump();
            }
            c.bump();
        } else if matches!(c.peek(), Tok::Int(_)) {
            c.bump();
        }
    }
    Ok(())
}

/// Parses one instruction line. Returns `None` for dropped calls
/// (debug/lifetime intrinsics).
fn parse_inst(
    c: &mut Cursor,
    module: &mut Module,
    named: &Named,
) -> Result<Option<BInst>, SkipErr> {
    let (line, col) = (c.line(), c.col());
    let mut result = None;
    if let Tok::Local(n) = c.peek().clone() {
        c.bump();
        c.expect(&Tok::Eq, "'='")?;
        result = Some(n);
    }
    let word = match c.next() {
        Tok::Word(w) => w,
        other => {
            return Err(SkipErr::new(
                SkipCode::MalformedBody,
                format!("expected instruction, found {other:?}"),
                line,
                col,
            ))
        }
    };
    let inst = |opcode| LInst::new(line, col, result.clone(), opcode);
    let out = match word.as_str() {
        w if binop_opcode(w).is_some() => {
            let mut i = inst(binop_opcode(w).unwrap());
            skip_flags(c);
            let ty = parse_ty(c, module, named)?;
            i.ty = Some(ty);
            i.operands.push(parse_operand(c, module, ty)?);
            c.expect(&Tok::Comma, "','")?;
            i.operands.push(parse_operand(c, module, ty)?);
            BInst::Plain(i)
        }
        "fneg" => {
            // fneg x == fsub -0.0, x (including for zeros and NaNs).
            let mut i = inst(Opcode::FSub);
            skip_flags(c);
            let ty = parse_ty(c, module, named)?;
            i.ty = Some(ty);
            i.operands.push(LOperand::CFloat(ty, -0.0));
            i.operands.push(parse_operand(c, module, ty)?);
            BInst::Plain(i)
        }
        "icmp" => {
            let mut i = inst(Opcode::Icmp);
            skip_flags(c);
            let pred = match c.next() {
                Tok::Word(p) => IntPredicate::from_mnemonic(&p).ok_or_else(|| {
                    SkipErr::new(
                        SkipCode::UnsupportedPredicate,
                        format!("icmp predicate '{p}'"),
                        line,
                        col,
                    )
                })?,
                other => {
                    return Err(SkipErr::new(
                        SkipCode::MalformedBody,
                        format!("expected icmp predicate, found {other:?}"),
                        line,
                        col,
                    ))
                }
            };
            i.ipred = Some(pred);
            let ty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, ty)?);
            c.expect(&Tok::Comma, "','")?;
            i.operands.push(parse_operand(c, module, ty)?);
            BInst::Plain(i)
        }
        "fcmp" => {
            let mut i = inst(Opcode::Fcmp);
            skip_flags(c);
            let pred = match c.next() {
                Tok::Word(p) => FloatPredicate::from_mnemonic(&p).ok_or_else(|| {
                    SkipErr::new(
                        SkipCode::UnsupportedPredicate,
                        format!("fcmp predicate '{p}' (only the ordered subset is modelled)"),
                        line,
                        col,
                    )
                })?,
                other => {
                    return Err(SkipErr::new(
                        SkipCode::MalformedBody,
                        format!("expected fcmp predicate, found {other:?}"),
                        line,
                        col,
                    ))
                }
            };
            i.fpred = Some(pred);
            let ty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, ty)?);
            c.expect(&Tok::Comma, "','")?;
            i.operands.push(parse_operand(c, module, ty)?);
            BInst::Plain(i)
        }
        "select" => {
            let mut i = inst(Opcode::Select);
            skip_flags(c);
            let cty = parse_ty(c, module, named)?;
            if module.types.int_width(cty) != Some(1) {
                return c.err(SkipCode::UnsupportedType, "non-scalar select condition");
            }
            i.operands.push(parse_operand(c, module, cty)?);
            c.expect(&Tok::Comma, "','")?;
            let ty = parse_ty(c, module, named)?;
            i.ty = Some(ty);
            i.operands.push(parse_operand(c, module, ty)?);
            c.expect(&Tok::Comma, "','")?;
            let _ty2 = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, ty)?);
            BInst::Plain(i)
        }
        w if cast_opcode(w).is_some() => {
            let mut i = inst(cast_opcode(w).unwrap());
            skip_flags(c);
            let src = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, src)?);
            c.expect_word("to")?;
            i.ty = Some(parse_ty(c, module, named)?);
            BInst::Plain(i)
        }
        "fptoui" | "uitofp" | "addrspacecast" => {
            return c.err(SkipCode::UnsupportedOp, format!("{word} cast"))
        }
        "alloca" => {
            let mut i = inst(Opcode::Alloca);
            if matches!(c.peek(), Tok::Word(w) if w == "inalloca") {
                return c.err(SkipCode::UnsupportedOp, "inalloca");
            }
            i.elem_ty = Some(parse_ty(c, module, named)?);
            while matches!(c.peek(), Tok::Comma) {
                c.bump();
                match c.peek().clone() {
                    Tok::Word(w) if w == "align" => {
                        c.bump();
                        c.bump();
                    }
                    Tok::Word(w) if w == "addrspace" => {
                        c.bump();
                        while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                            c.bump();
                        }
                        c.bump();
                    }
                    _ => {
                        let cty = parse_ty(c, module, named)?;
                        let op = parse_operand(c, module, cty)?;
                        i.operands.push(op);
                    }
                }
            }
            BInst::Plain(i)
        }
        "load" => {
            if matches!(c.peek(), Tok::Word(w) if w == "volatile" || w == "atomic") {
                return c.err(SkipCode::Atomics, "volatile or atomic load");
            }
            let mut i = inst(Opcode::Load);
            let ty = parse_ty(c, module, named)?;
            i.ty = Some(ty);
            c.expect(&Tok::Comma, "','")?;
            let pty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, pty)?);
            BInst::Plain(i)
        }
        "store" => {
            if matches!(c.peek(), Tok::Word(w) if w == "volatile" || w == "atomic") {
                return c.err(SkipCode::Atomics, "volatile or atomic store");
            }
            let mut i = inst(Opcode::Store);
            let vty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, vty)?);
            c.expect(&Tok::Comma, "','")?;
            let pty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, pty)?);
            BInst::Plain(i)
        }
        "getelementptr" => {
            let mut i = inst(Opcode::Gep);
            skip_flags(c);
            if matches!(c.peek(), Tok::Word(w) if w == "inrange") {
                c.bump();
                while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                    c.bump();
                }
                c.bump();
            }
            i.elem_ty = Some(parse_ty(c, module, named)?);
            c.expect(&Tok::Comma, "','")?;
            let bty = parse_ty(c, module, named)?;
            i.operands.push(parse_operand(c, module, bty)?);
            while matches!(c.peek(), Tok::Comma) {
                c.bump();
                let ity = parse_ty(c, module, named)?;
                i.operands.push(parse_operand(c, module, ity)?);
            }
            BInst::Plain(i)
        }
        "tail" | "musttail" | "notail" => {
            c.expect_word("call")?;
            return parse_call(c, module, named, line, col, result);
        }
        "call" => return parse_call(c, module, named, line, col, result),
        "phi" => {
            let mut i = inst(Opcode::Phi);
            skip_flags(c);
            let ty = parse_ty(c, module, named)?;
            i.ty = Some(ty);
            loop {
                c.expect(&Tok::LBracket, "'['")?;
                i.operands.push(parse_operand(c, module, ty)?);
                c.expect(&Tok::Comma, "','")?;
                i.labels.push(c.expect_local()?);
                c.expect(&Tok::RBracket, "']'")?;
                if matches!(c.peek(), Tok::Comma) {
                    c.bump();
                } else {
                    break;
                }
            }
            BInst::Plain(i)
        }
        "br" => {
            if matches!(c.peek(), Tok::Word(w) if w == "label") {
                let mut i = inst(Opcode::Br);
                i.labels.push(c.expect_label_ref()?);
                BInst::Plain(i)
            } else {
                let mut i = inst(Opcode::CondBr);
                let cty = parse_ty(c, module, named)?;
                i.operands.push(parse_operand(c, module, cty)?);
                c.expect(&Tok::Comma, "','")?;
                i.labels.push(c.expect_label_ref()?);
                c.expect(&Tok::Comma, "','")?;
                i.labels.push(c.expect_label_ref()?);
                BInst::Plain(i)
            }
        }
        "switch" => {
            let ty = parse_ty(c, module, named)?;
            let val = parse_operand(c, module, ty)?;
            c.expect(&Tok::Comma, "','")?;
            let default = c.expect_label_ref()?;
            c.expect(&Tok::LBracket, "'['")?;
            let mut cases = Vec::new();
            loop {
                c.skip_newlines();
                if matches!(c.peek(), Tok::RBracket) {
                    c.bump();
                    break;
                }
                let _cty = parse_ty(c, module, named)?;
                let value = match c.next() {
                    Tok::Int(v) => v,
                    other => {
                        return Err(SkipErr::new(
                            SkipCode::UnsupportedConstant,
                            format!("switch case constant {other:?}"),
                            line,
                            col,
                        ))
                    }
                };
                c.expect(&Tok::Comma, "','")?;
                cases.push((value, c.expect_label_ref()?));
            }
            BInst::Switch {
                line,
                col,
                ty,
                val,
                default,
                cases,
            }
        }
        "ret" => {
            let mut i = inst(Opcode::Ret);
            if matches!(c.peek(), Tok::Word(w) if w == "void") {
                c.bump();
            } else {
                let ty = parse_ty(c, module, named)?;
                i.operands.push(parse_operand(c, module, ty)?);
            }
            BInst::Plain(i)
        }
        "unreachable" => BInst::Plain(inst(Opcode::Unreachable)),
        "invoke" | "landingpad" | "resume" | "cleanupret" | "catchret" | "catchswitch"
        | "cleanuppad" | "catchpad" => {
            return c.err(SkipCode::ExceptionHandling, format!("{word} instruction"))
        }
        "atomicrmw" | "cmpxchg" | "fence" => {
            return c.err(SkipCode::Atomics, format!("{word} instruction"))
        }
        "indirectbr" => return c.err(SkipCode::IndirectCall, "indirectbr"),
        "va_arg" => return c.err(SkipCode::Varargs, "va_arg"),
        "extractvalue" | "insertvalue" | "extractelement" | "insertelement" | "shufflevector"
        | "freeze" => return c.err(SkipCode::UnsupportedOp, format!("{word} instruction")),
        other => {
            return c.err(
                SkipCode::UnsupportedOp,
                format!("unknown instruction '{other}'"),
            )
        }
    };
    Ok(Some(out))
}

fn parse_call(
    c: &mut Cursor,
    module: &mut Module,
    named: &Named,
    line: u32,
    col: u32,
    result: Option<String>,
) -> Result<Option<BInst>, SkipErr> {
    skip_flags(c);
    // Calling-convention and return-attribute words precede the type.
    while let Tok::Word(w) = c.peek().clone() {
        if at_type_start(c.peek()) {
            break;
        }
        c.bump();
        if matches!(c.peek(), Tok::LParen) && w != "asm" {
            while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                c.bump();
            }
            c.bump();
        } else if matches!(c.peek(), Tok::Int(_)) {
            c.bump();
        }
        if w == "asm" {
            return c.err(SkipCode::InlineAsm, "inline assembly call");
        }
    }
    let ret_ty = parse_ty(c, module, named)?;
    // A parenthesised function type after the return type means a
    // varargs or function-pointer-typed call.
    if matches!(c.peek(), Tok::LParen) {
        let mut depth = 0usize;
        let mut varargs = false;
        loop {
            match c.next() {
                Tok::LParen => depth += 1,
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ellipsis => varargs = true,
                Tok::Newline | Tok::Eof => break,
                _ => {}
            }
        }
        if varargs {
            return Err(SkipErr::new(SkipCode::Varargs, "variadic call", line, col));
        }
    }
    let callee = match c.next() {
        Tok::Global(n) => n,
        Tok::Local(_) => {
            return Err(SkipErr::new(
                SkipCode::IndirectCall,
                "call through a function pointer",
                line,
                col,
            ))
        }
        Tok::Word(w) if w == "asm" => {
            return Err(SkipErr::new(
                SkipCode::InlineAsm,
                "inline assembly call",
                line,
                col,
            ))
        }
        other => {
            return Err(SkipErr::new(
                SkipCode::MalformedBody,
                format!("expected callee, found {other:?}"),
                line,
                col,
            ))
        }
    };
    if droppable_intrinsic(&callee) {
        // Consume the argument list and drop the call.
        c.expect(&Tok::LParen, "'('")?;
        let mut depth = 1usize;
        while depth > 0 {
            match c.next() {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                Tok::Newline | Tok::Eof => break,
                _ => {}
            }
        }
        return Ok(None);
    }
    if callee.starts_with("llvm.") {
        return Err(SkipErr::new(
            SkipCode::UnsupportedOp,
            format!("intrinsic @{callee}"),
            line,
            col,
        ));
    }
    let mut i = LInst::new(line, col, result, Opcode::Call);
    i.ty = Some(ret_ty);
    i.callee = Some(callee);
    c.expect(&Tok::LParen, "'('")?;
    if !matches!(c.peek(), Tok::RParen) {
        loop {
            if matches!(c.peek(), Tok::Word(w) if w == "metadata") {
                return c.err(SkipCode::UnsupportedOp, "metadata call argument");
            }
            let ty = parse_ty(c, module, named)?;
            skip_arg_attrs(c)?;
            i.operands.push(parse_operand(c, module, ty)?);
            if matches!(c.peek(), Tok::Comma) {
                c.bump();
            } else {
                break;
            }
        }
    }
    c.expect(&Tok::RParen, "')'")?;
    Ok(Some(BInst::Plain(i)))
}

/// Parses a function body into labelled blocks of instructions.
fn parse_body(
    c: &mut Cursor,
    module: &mut Module,
    named: &Named,
    header: &FnHeader,
) -> Result<Vec<(String, Vec<BInst>)>, SkipErr> {
    let mut blocks: Vec<(String, Vec<BInst>)> = Vec::new();
    let mut unnamed_next = header.unnamed_next;
    c.skip_newlines();
    loop {
        if matches!(c.peek(), Tok::Eof) {
            break;
        }
        // Block label: `name:`, `N:`, `"quoted":` — or implicit for the
        // entry block, which takes the next unnamed number.
        let label = match (c.peek().clone(), c.peek2().clone()) {
            (Tok::Word(w), Tok::Colon) => {
                c.bump();
                c.bump();
                w
            }
            (Tok::Int(v), Tok::Colon) if v >= 0 => {
                c.bump();
                c.bump();
                v.to_string()
            }
            (Tok::Str(s), Tok::Colon) => {
                c.bump();
                c.bump();
                String::from_utf8_lossy(&s).into_owned()
            }
            _ => {
                if blocks.is_empty() {
                    let n = unnamed_next.to_string();
                    unnamed_next += 1;
                    n
                } else {
                    return c.err(SkipCode::MalformedBody, "expected block label");
                }
            }
        };
        c.skip_newlines();
        let mut insts = Vec::new();
        loop {
            if matches!(c.peek(), Tok::Eof) {
                break;
            }
            // A label line ends the block.
            if matches!(
                (c.peek(), c.peek2()),
                (Tok::Word(_), Tok::Colon) | (Tok::Int(_), Tok::Colon) | (Tok::Str(_), Tok::Colon)
            ) {
                break;
            }
            if let Some(inst) = parse_inst(c, module, named)? {
                insts.push(inst);
            }
            // Trailing metadata / alignment / attribute tokens.
            c.skip_line();
            c.skip_newlines();
        }
        blocks.push((label, insts));
    }
    if blocks.is_empty() {
        return c.err(SkipCode::MalformedBody, "function body has no blocks");
    }
    Ok(blocks)
}

/// Lowers `switch` terminators into `icmp eq` + `condbr` chains,
/// retargeting phi incomings in successor blocks from the switch's
/// block to the chain block that actually jumps there.
fn lower_switches(blocks: Vec<(String, Vec<BInst>)>) -> Result<Vec<(String, Vec<LInst>)>, SkipErr> {
    let mut label_set: HashSet<String> = blocks.iter().map(|(l, _)| l.clone()).collect();
    let mut name_set: HashSet<String> = HashSet::new();
    for (_, insts) in &blocks {
        for inst in insts {
            if let BInst::Plain(i) = inst {
                if let Some(r) = &i.result {
                    name_set.insert(r.clone());
                }
            }
        }
    }
    let fresh = |set: &mut HashSet<String>, prefix: &str| -> String {
        let mut n = 0usize;
        loop {
            let cand = format!("{prefix}{n}");
            if set.insert(cand.clone()) {
                return cand;
            }
            n += 1;
        }
    };

    // (original block, value, target → jumping chain blocks) collected
    // while rewriting, applied to phis afterwards.
    let mut retargets: Vec<(String, HashMap<String, Vec<String>>)> = Vec::new();
    let mut out: Vec<(String, Vec<LInst>)> = Vec::new();
    for (label, insts) in blocks {
        let mut plain: Vec<LInst> = Vec::new();
        let mut switch = None;
        let n = insts.len();
        for (idx, inst) in insts.into_iter().enumerate() {
            match inst {
                BInst::Plain(i) => plain.push(i),
                BInst::Switch {
                    line,
                    col,
                    ty,
                    val,
                    default,
                    cases,
                } => {
                    if idx + 1 != n {
                        return Err(SkipErr::new(
                            SkipCode::MalformedBody,
                            "switch is not the block terminator",
                            line,
                            col,
                        ));
                    }
                    switch = Some((line, col, ty, val, default, cases));
                }
            }
        }
        let Some((line, col, ty, val, default, cases)) = switch else {
            out.push((label, plain));
            continue;
        };
        if cases.is_empty() {
            let mut br = LInst::new(line, col, None, Opcode::Br);
            br.labels.push(default.clone());
            plain.push(br);
            let mut map = HashMap::new();
            map.insert(default, vec![label.clone()]);
            retargets.push((label.clone(), map));
            out.push((label, plain));
            continue;
        }
        // Chain blocks: compare k lives in `label` for k == 0, else in
        // chain block k; the last compare's else edge goes to default.
        let mut chain_names = vec![label.clone()];
        for _ in 1..cases.len() {
            chain_names.push(fresh(&mut label_set, &format!("{label}.sw")));
        }
        let mut edges: HashMap<String, Vec<String>> = HashMap::new();
        let mut pending: Vec<(String, Vec<LInst>)> = Vec::new();
        for (k, (case_val, case_target)) in cases.iter().enumerate() {
            let cmp_name = fresh(&mut name_set, &format!("{label}.swcmp"));
            let mut cmp = LInst::new(line, col, Some(cmp_name.clone()), Opcode::Icmp);
            cmp.ipred = Some(IntPredicate::Eq);
            cmp.operands.push(val.clone());
            cmp.operands.push(LOperand::CInt(ty, *case_val));
            let mut br = LInst::new(line, col, None, Opcode::CondBr);
            br.operands.push(LOperand::Local(cmp_name));
            br.labels.push(case_target.clone());
            let next = if k + 1 < cases.len() {
                chain_names[k + 1].clone()
            } else {
                default.clone()
            };
            br.labels.push(next);
            edges
                .entry(case_target.clone())
                .or_default()
                .push(chain_names[k].clone());
            if k == 0 {
                plain.push(cmp);
                plain.push(br);
            } else {
                pending.push((chain_names[k].clone(), vec![cmp, br]));
            }
        }
        edges
            .entry(default)
            .or_default()
            .push(chain_names[cases.len() - 1].clone());
        retargets.push((label.clone(), edges));
        out.push((label, plain));
        out.extend(pending);
    }

    // Retarget phis: an incoming entry from the switch's block expands
    // to one entry per chain block that jumps to this target.
    for (orig, edges) in retargets {
        for (target, preds) in edges {
            let Some((_, insts)) = out.iter_mut().find(|(l, _)| *l == target) else {
                continue; // unknown label: reported during build
            };
            for inst in insts.iter_mut() {
                if inst.opcode != Opcode::Phi {
                    continue;
                }
                let mut ops = Vec::new();
                let mut labels = Vec::new();
                for (op, lab) in inst.operands.iter().zip(&inst.labels) {
                    if *lab == orig {
                        for p in &preds {
                            ops.push(op.clone());
                            labels.push(p.clone());
                        }
                    } else {
                        ops.push(op.clone());
                        labels.push(lab.clone());
                    }
                }
                inst.operands = ops;
                inst.labels = labels;
            }
        }
    }
    Ok(out)
}

/// Materializes a function from parsed blocks, mirroring the native
/// parser's two-sweep order exactly.
fn build(
    module: &mut Module,
    header: &FnHeader,
    blocks: &[(String, Vec<LInst>)],
) -> Result<Function, SkipErr> {
    let mut func = Function::new(header.name.clone(), header.param_tys.clone(), header.ret_ty);
    let mut locals: HashMap<String, ValueId> = HashMap::new();
    for (i, pname) in header.param_names.iter().enumerate() {
        locals.insert(pname.clone(), func.param(i));
    }
    let mut block_map: HashMap<String, BlockId> = HashMap::new();
    for (label, _) in blocks {
        if block_map.contains_key(label) {
            return Err(SkipErr::new(
                SkipCode::MalformedBody,
                format!("duplicate block label {label}"),
                header.line,
                header.col,
            ));
        }
        let b = func.add_block(label.clone());
        block_map.insert(label.clone(), b);
    }
    let lookup_block = |name: &str, line: u32, col: u32| -> Result<BlockId, SkipErr> {
        block_map.get(name).copied().ok_or_else(|| {
            SkipErr::new(
                SkipCode::MalformedBody,
                format!("unknown block label {name}"),
                line,
                col,
            )
        })
    };

    // First sweep: create instructions with empty operand lists so that
    // forward value references (e.g. phis) resolve.
    let mut created: Vec<rolag_ir::InstId> = Vec::new();
    let mut flat: Vec<&LInst> = Vec::new();
    for (label, insts) in blocks {
        let bb = block_map[label];
        for inst in insts {
            let extra = match inst.opcode {
                Opcode::Icmp => InstExtra::Icmp(inst.ipred.unwrap()),
                Opcode::Fcmp => InstExtra::Fcmp(inst.fpred.unwrap()),
                Opcode::Gep => InstExtra::Gep {
                    elem_ty: inst.elem_ty.unwrap(),
                },
                Opcode::Alloca => InstExtra::Alloca {
                    elem_ty: inst.elem_ty.unwrap(),
                },
                Opcode::Call => {
                    let callee_name = inst.callee.as_ref().unwrap();
                    let callee = module.func_by_name(callee_name).ok_or_else(|| {
                        SkipErr::new(
                            SkipCode::UnknownReference,
                            format!("unknown or skipped callee @{callee_name}"),
                            inst.line,
                            inst.col,
                        )
                    })?;
                    InstExtra::Call { callee }
                }
                Opcode::Phi => {
                    let mut incoming = Vec::new();
                    for l in &inst.labels {
                        incoming.push(lookup_block(l, inst.line, inst.col)?);
                    }
                    InstExtra::Phi { incoming }
                }
                Opcode::Br => InstExtra::Br {
                    dest: lookup_block(&inst.labels[0], inst.line, inst.col)?,
                },
                Opcode::CondBr => InstExtra::CondBr {
                    then_dest: lookup_block(&inst.labels[0], inst.line, inst.col)?,
                    else_dest: lookup_block(&inst.labels[1], inst.line, inst.col)?,
                },
                _ => InstExtra::None,
            };
            let ty = match inst.opcode {
                Opcode::Icmp | Opcode::Fcmp => module.types.i1(),
                Opcode::Gep | Opcode::Alloca => module.types.ptr(),
                Opcode::Store | Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Unreachable => {
                    module.types.void()
                }
                _ => inst.ty.ok_or_else(|| {
                    SkipErr::new(
                        SkipCode::MalformedBody,
                        "missing result type",
                        inst.line,
                        inst.col,
                    )
                })?,
            };
            let (id, value) = func.create_inst(InstData {
                opcode: inst.opcode,
                ty,
                operands: Vec::new(),
                block: bb,
                extra,
            });
            func.append_inst(bb, id);
            if let Some(name) = &inst.result {
                if locals.insert(name.clone(), value).is_some() {
                    return Err(SkipErr::new(
                        SkipCode::MalformedBody,
                        format!("value %{name} defined twice"),
                        inst.line,
                        inst.col,
                    ));
                }
            }
            created.push(id);
            flat.push(inst);
        }
    }

    // Second sweep: resolve operands, interning constants in flat
    // operand order (value-table order matches the native parser's).
    for (id, inst) in created.into_iter().zip(&flat) {
        let mut operands = Vec::with_capacity(inst.operands.len());
        for op in &inst.operands {
            let v = match op {
                LOperand::Local(name) => *locals.get(name).ok_or_else(|| {
                    SkipErr::new(
                        SkipCode::UnknownReference,
                        format!("unknown value %{name}"),
                        inst.line,
                        inst.col,
                    )
                })?,
                LOperand::CInt(ty, v) => func.const_int(*ty, *v),
                LOperand::CFloat(ty, v) => func.const_float(*ty, *v),
                LOperand::CFloatBits(ty, bits) => func.const_float_bits(*ty, *bits),
                LOperand::Ref(name) => {
                    if let Some(g) = module.global_by_name(name) {
                        func.global_addr(g)
                    } else if let Some(f) = module.func_by_name(name) {
                        func.func_addr(f)
                    } else {
                        return Err(SkipErr::new(
                            SkipCode::UnknownReference,
                            format!("unknown or skipped reference @{name}"),
                            inst.line,
                            inst.col,
                        ));
                    }
                }
                LOperand::Undef(ty) => func.undef(*ty),
            };
            operands.push(v);
        }
        func.inst_mut(id).operands = operands;
    }
    Ok(func)
}

/// Parses a body range and materializes the function.
pub(crate) fn parse_and_build(
    c: &mut Cursor,
    module: &mut Module,
    named: &Named,
    header: &FnHeader,
) -> Result<Function, SkipErr> {
    let blocks = parse_body(c, module, named, header)?;
    let blocks = lower_switches(blocks)?;
    build(module, header, &blocks)
}
