//! LLVM-textual-IR subset importer.
//!
//! Imports the slice of LLVM IR our generators and the TSVC kernels
//! exercise: integer/float/pointer scalars, `alloca`/`load`/`store`/
//! `getelementptr`, arithmetic, `icmp`/`fcmp`/`select`, casts, direct
//! `call`s, `br`/`switch`/`ret`/`phi`/`unreachable`, and constant
//! array globals. `switch` is lowered to a compare/branch chain on
//! import (the project IR has no switch).
//!
//! Anything outside the subset is a clean **per-function skip** with a
//! [`SkipCode`] — the function stays registered as an external
//! declaration so callers still resolve — never a panic. Only
//! module-structural problems (lex errors, malformed top level,
//! duplicate symbols) are module-fatal.

mod body;
mod lexer;

use std::collections::HashMap;

use rolag_ir::types::TypeId;
use rolag_ir::{Effects, Function, Module};

use crate::{Diagnostic, Frontend, FrontendResult, Skip, SkipCode};
use lexer::{lex, Sp, Tok};

/// Frontend for the LLVM textual IR subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlvmFrontend;

/// Per-function skip error: reason code plus source span.
#[derive(Debug, Clone)]
pub(crate) struct SkipErr {
    pub code: SkipCode,
    pub detail: String,
    pub line: u32,
    pub col: u32,
}

impl SkipErr {
    pub(crate) fn new(code: SkipCode, detail: impl Into<String>, line: u32, col: u32) -> Self {
        SkipErr {
            code,
            detail: detail.into(),
            line,
            col,
        }
    }
}

/// Type-parse outcome: hard skip or a reference to a named type that is
/// not resolved yet (only possible while resolving typedefs).
pub(crate) enum TyErr {
    Skip(SkipErr),
    Unresolved(String),
}

impl TyErr {
    fn into_skip(self) -> SkipErr {
        match self {
            TyErr::Skip(e) => e,
            TyErr::Unresolved(name) => SkipErr::new(
                SkipCode::UnsupportedType,
                format!("undefined or recursive named type %{name}"),
                0,
                0,
            ),
        }
    }
}

const EOF: Tok = Tok::Eof;

/// Range-bounded cursor over the token stream.
pub(crate) struct Cursor<'a> {
    toks: &'a [Sp],
    pub pos: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(toks: &'a [Sp], start: usize, end: usize) -> Self {
        Cursor {
            toks,
            pos: start,
            end,
        }
    }

    pub(crate) fn peek(&self) -> &Tok {
        if self.pos < self.end {
            &self.toks[self.pos].tok
        } else {
            &EOF
        }
    }

    pub(crate) fn peek2(&self) -> &Tok {
        if self.pos + 1 < self.end {
            &self.toks[self.pos + 1].tok
        } else {
            &EOF
        }
    }

    pub(crate) fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len() - 1))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    pub(crate) fn col(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len() - 1))
            .map(|s| s.col)
            .unwrap_or(0)
    }

    pub(crate) fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.end {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn bump(&mut self) {
        if self.pos < self.end {
            self.pos += 1;
        }
    }

    pub(crate) fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    /// Skips past the next newline (end of the current statement).
    pub(crate) fn skip_line(&mut self) {
        while !matches!(self.peek(), Tok::Newline | Tok::Eof) {
            self.bump();
        }
        if matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    pub(crate) fn err<T>(&self, code: SkipCode, detail: impl Into<String>) -> Result<T, SkipErr> {
        Err(SkipErr::new(code, detail, self.line(), self.col()))
    }

    pub(crate) fn expect(&mut self, want: &Tok, what: &str) -> Result<(), SkipErr> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(
                SkipCode::MalformedBody,
                format!("expected {what}, found {:?}", self.peek()),
            )
        }
    }

    pub(crate) fn expect_word(&mut self, want: &str) -> Result<(), SkipErr> {
        match self.peek() {
            Tok::Word(w) if w == want => {
                self.bump();
                Ok(())
            }
            other => self.err(
                SkipCode::MalformedBody,
                format!("expected '{want}', found {other:?}"),
            ),
        }
    }

    pub(crate) fn expect_local(&mut self) -> Result<String, SkipErr> {
        match self.peek().clone() {
            Tok::Local(n) => {
                self.bump();
                Ok(n)
            }
            other => self.err(
                SkipCode::MalformedBody,
                format!("expected %name, found {other:?}"),
            ),
        }
    }

    /// Consumes `label %name` and returns the label.
    pub(crate) fn expect_label_ref(&mut self) -> Result<String, SkipErr> {
        self.expect_word("label")?;
        self.expect_local()
    }
}

/// True when the token can start a type.
pub(crate) fn at_type_start(t: &Tok) -> bool {
    match t {
        Tok::LBracket | Tok::LBrace | Tok::Lt | Tok::Local(_) => true,
        Tok::Word(w) => is_type_word(w),
        _ => false,
    }
}

fn is_type_word(w: &str) -> bool {
    matches!(
        w,
        "void"
            | "ptr"
            | "float"
            | "double"
            | "half"
            | "bfloat"
            | "fp128"
            | "x86_fp80"
            | "ppc_fp128"
            | "x86_mmx"
            | "x86_amx"
            | "label"
            | "token"
            | "metadata"
            | "opaque"
    ) || (w.len() > 1 && w.starts_with('i') && w[1..].bytes().all(|c| c.is_ascii_digit()))
}

/// Parses a type. Typed pointers (`T*`) collapse to the opaque `ptr`.
pub(crate) fn parse_type(
    c: &mut Cursor,
    module: &mut Module,
    named: &HashMap<String, Result<TypeId, SkipErr>>,
) -> Result<TypeId, TyErr> {
    let (line, col) = (c.line(), c.col());
    let unsup =
        |detail: String| TyErr::Skip(SkipErr::new(SkipCode::UnsupportedType, detail, line, col));
    let mut base = match c.peek().clone() {
        Tok::Word(w) => {
            c.bump();
            match w.as_str() {
                "void" => module.types.void(),
                "ptr" => module.types.ptr(),
                "float" => module.types.float(),
                "double" => module.types.double(),
                _ if w.starts_with('i') && w[1..].bytes().all(|b| b.is_ascii_digit()) => {
                    let width: u32 = w[1..].parse().unwrap_or(0);
                    if !(1..=128).contains(&width) {
                        return Err(unsup(format!("unsupported integer width {w}")));
                    }
                    module.types.int(width as u16)
                }
                other => return Err(unsup(format!("unsupported type '{other}'"))),
            }
        }
        Tok::LBracket => {
            c.bump();
            let len = match c.next() {
                Tok::Int(v) if v >= 0 => v as u64,
                other => return Err(unsup(format!("bad array length {other:?}"))),
            };
            match c.next() {
                Tok::Word(x) if x == "x" => {}
                other => {
                    return Err(unsup(format!(
                        "expected 'x' in array type, found {other:?}"
                    )))
                }
            }
            let elem = parse_type(c, module, named)?;
            if !matches!(c.next(), Tok::RBracket) {
                return Err(unsup("unterminated array type".into()));
            }
            module.types.array(elem, len)
        }
        Tok::LBrace => {
            c.bump();
            let mut fields = Vec::new();
            if !matches!(c.peek(), Tok::RBrace) {
                loop {
                    fields.push(parse_type(c, module, named)?);
                    if matches!(c.peek(), Tok::Comma) {
                        c.bump();
                    } else {
                        break;
                    }
                }
            }
            if !matches!(c.next(), Tok::RBrace) {
                return Err(unsup("unterminated struct type".into()));
            }
            module.types.struct_(fields)
        }
        Tok::Lt => return Err(unsup("vector or packed-struct type".into())),
        Tok::Local(name) => {
            c.bump();
            match named.get(&name) {
                Some(Ok(t)) => *t,
                Some(Err(e)) => return Err(TyErr::Skip(e.clone())),
                None => return Err(TyErr::Unresolved(name)),
            }
        }
        other => return Err(unsup(format!("expected type, found {other:?}"))),
    };
    while matches!(c.peek(), Tok::Star) {
        c.bump();
        base = module.types.ptr();
    }
    Ok(base)
}

/// One sliced top-level item (token index ranges).
enum Item {
    TypeDef {
        name: String,
        start: usize,
        end: usize,
    },
    Global {
        start: usize,
        end: usize,
    },
    Declare {
        start: usize,
        end: usize,
    },
    Define {
        header: (usize, usize),
        body: (usize, usize),
    },
}

/// The item slices, attribute-group effects, and module-level skips of
/// one token stream.
type SplitItems = (Vec<Item>, HashMap<u64, Effects>, Vec<Skip>);

/// Splits the token stream into top-level items; parses `attributes`
/// groups inline (into an effects map). Module-structural problems are
/// fatal.
fn split_items(toks: &[Sp], origin: &str) -> Result<SplitItems, Diagnostic> {
    let mut items = Vec::new();
    let mut groups = HashMap::new();
    let mut skips = Vec::new();
    let mut i = 0usize;
    let fatal = |sp: &Sp, msg: String| Diagnostic {
        origin: origin.to_string(),
        line: sp.line,
        col: sp.col,
        message: msg,
    };
    let line_end = |mut j: usize| {
        while !matches!(toks[j].tok, Tok::Newline | Tok::Eof) {
            j += 1;
        }
        j
    };
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Newline => i += 1,
            Tok::Eof => break,
            Tok::Meta => i = line_end(i) + 1,
            Tok::Word(w) => match w.as_str() {
                "source_filename" | "target" | "uselistorder" | "uselistorder_bb" | "deplibs" => {
                    i = line_end(i) + 1;
                }
                "module" => {
                    skips.push(Skip {
                        symbol: "<module-asm>".into(),
                        code: SkipCode::InlineAsm,
                        detail: "module-level inline assembly dropped".into(),
                        line: toks[i].line,
                        col: toks[i].col,
                    });
                    i = line_end(i) + 1;
                }
                _ if w.starts_with('$') => i = line_end(i) + 1,
                "attributes" => {
                    // attributes #N = { word... }
                    let end = line_end(i);
                    let mut j = i + 1;
                    let mut group = None;
                    if let Tok::AttrRef(n) = toks[j].tok {
                        group = Some(n);
                        j += 1;
                    }
                    let mut effects = None;
                    while j < end {
                        match &toks[j].tok {
                            Tok::Word(a) if a == "readnone" => effects = Some(Effects::ReadNone),
                            Tok::Word(a) if a == "readonly" => effects = Some(Effects::ReadOnly),
                            Tok::Word(a) if a == "memory" => {
                                if let (Tok::LParen, Tok::Word(m)) =
                                    (&toks[j + 1].tok, &toks[j + 2].tok)
                                {
                                    if m == "none" {
                                        effects = Some(Effects::ReadNone);
                                    } else if m == "read" && matches!(toks[j + 3].tok, Tok::RParen)
                                    {
                                        effects = Some(Effects::ReadOnly);
                                    }
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let (Some(n), Some(e)) = (group, effects) {
                        groups.insert(n, e);
                    }
                    i = end + 1;
                }
                "declare" => {
                    let end = line_end(i);
                    items.push(Item::Declare { start: i + 1, end });
                    i = end + 1;
                }
                "define" => {
                    // Header runs to the opening `{`; the body to its
                    // matching `}` (struct braces nest).
                    let mut j = i + 1;
                    while !matches!(toks[j].tok, Tok::Eof) {
                        if matches!(toks[j].tok, Tok::LBrace) {
                            // A `{` opening a struct type is always closed
                            // before the line ends; the function-body `{`
                            // is the last token before a newline.
                            if matches!(toks[j + 1].tok, Tok::Newline) {
                                break;
                            }
                        }
                        j += 1;
                    }
                    if matches!(toks[j].tok, Tok::Eof) {
                        return Err(fatal(&toks[i], "unterminated function definition".into()));
                    }
                    let header = (i + 1, j);
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while depth > 0 {
                        match toks[k].tok {
                            Tok::LBrace => depth += 1,
                            Tok::RBrace => depth -= 1,
                            Tok::Eof => {
                                return Err(fatal(
                                    &toks[i],
                                    "unterminated function definition".into(),
                                ))
                            }
                            _ => {}
                        }
                        if depth == 0 {
                            break;
                        }
                        k += 1;
                    }
                    items.push(Item::Define {
                        header,
                        body: (j + 1, k),
                    });
                    i = line_end(k) + 1;
                }
                other => {
                    return Err(fatal(
                        &toks[i],
                        format!("unexpected top-level token '{other}'"),
                    ))
                }
            },
            Tok::Local(name) => {
                // %name = type ...
                if matches!(toks[i + 1].tok, Tok::Eq)
                    && matches!(&toks[i + 2].tok, Tok::Word(w) if w == "type")
                {
                    let end = line_end(i);
                    items.push(Item::TypeDef {
                        name: name.clone(),
                        start: i + 3,
                        end,
                    });
                    i = end + 1;
                } else {
                    return Err(fatal(&toks[i], "unexpected top-level local".into()));
                }
            }
            Tok::Global(_) => {
                let end = line_end(i);
                items.push(Item::Global { start: i, end });
                i = end + 1;
            }
            other => {
                return Err(fatal(
                    &toks[i],
                    format!("unexpected top-level token {other:?}"),
                ))
            }
        }
    }
    Ok((items, groups, skips))
}

/// Resolves named type definitions to interned [`TypeId`]s with an
/// iterate-to-fixpoint pass (handles forward references; cycles and
/// unsupported bodies poison the name).
fn resolve_named_types(
    items: &[Item],
    toks: &[Sp],
    module: &mut Module,
) -> HashMap<String, Result<TypeId, SkipErr>> {
    let mut pending: Vec<(&String, usize, usize)> = items
        .iter()
        .filter_map(|it| match it {
            Item::TypeDef { name, start, end } => Some((name, *start, *end)),
            _ => None,
        })
        .collect();
    let mut named: HashMap<String, Result<TypeId, SkipErr>> = HashMap::new();
    loop {
        let before = pending.len();
        let mut still = Vec::new();
        for (name, start, end) in pending {
            let mut c = Cursor::new(toks, start, end);
            if matches!(c.peek(), Tok::Word(w) if w == "opaque") {
                named.insert(
                    name.clone(),
                    Err(SkipErr::new(
                        SkipCode::UnsupportedType,
                        format!("opaque type %{name}"),
                        c.line(),
                        c.col(),
                    )),
                );
                continue;
            }
            match parse_type(&mut c, module, &named) {
                Ok(t) if matches!(c.peek(), Tok::Newline | Tok::Eof) => {
                    named.insert(name.clone(), Ok(t));
                }
                Ok(_) => {
                    named.insert(
                        name.clone(),
                        Err(SkipErr::new(
                            SkipCode::UnsupportedType,
                            format!("unsupported type definition %{name}"),
                            c.line(),
                            c.col(),
                        )),
                    );
                }
                Err(TyErr::Skip(e)) => {
                    named.insert(name.clone(), Err(e));
                }
                Err(TyErr::Unresolved(_)) => still.push((name, start, end)),
            }
        }
        if still.is_empty() {
            break;
        }
        if still.len() == before {
            for (name, start, _) in still {
                named.insert(
                    name.clone(),
                    Err(SkipErr::new(
                        SkipCode::UnsupportedType,
                        format!("recursive named type %{name}"),
                        toks[start].line,
                        toks[start].col,
                    )),
                );
            }
            break;
        }
        pending = still;
    }
    named
}

/// Words that may precede the value type of a global definition.
const GLOBAL_QUALIFIERS: &[&str] = &[
    "private",
    "internal",
    "external",
    "linkonce",
    "linkonce_odr",
    "weak",
    "weak_odr",
    "common",
    "appending",
    "extern_weak",
    "available_externally",
    "dso_local",
    "dso_preemptable",
    "hidden",
    "protected",
    "default",
    "thread_local",
    "unnamed_addr",
    "local_unnamed_addr",
    "externally_initialized",
    "addrspace",
    "align",
    "dllimport",
    "dllexport",
];

/// Parses one global definition line into [`rolag_ir::GlobalData`], or a
/// skip reason.
fn parse_global(
    c: &mut Cursor,
    module: &mut Module,
    named: &HashMap<String, Result<TypeId, SkipErr>>,
) -> Result<rolag_ir::GlobalData, SkipErr> {
    let name = match c.next() {
        Tok::Global(n) => n,
        other => {
            return c.err(
                SkipCode::UnsupportedGlobal,
                format!("expected @name, found {other:?}"),
            )
        }
    };
    c.expect(&Tok::Eq, "'='")?;
    let mut is_const = false;
    loop {
        match c.peek().clone() {
            Tok::Word(w) if w == "global" => {
                c.bump();
                break;
            }
            Tok::Word(w) if w == "constant" => {
                is_const = true;
                c.bump();
                break;
            }
            Tok::Word(w) if GLOBAL_QUALIFIERS.contains(&w.as_str()) => {
                c.bump();
                if matches!(c.peek(), Tok::LParen) {
                    // e.g. thread_local(localdynamic), addrspace(1)
                    while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                        c.bump();
                    }
                    c.bump();
                }
            }
            other => {
                return Err(SkipErr::new(
                    SkipCode::UnsupportedGlobal,
                    format!("@{name}: unsupported global qualifier {other:?}"),
                    c.line(),
                    c.col(),
                ))
            }
        }
    }
    let ty = parse_type(c, module, named).map_err(|e| {
        let mut e = e.into_skip();
        e.detail = format!("@{name}: {}", e.detail);
        e
    })?;
    let init = parse_global_init(c, module, named, &name, ty)?;
    Ok(rolag_ir::GlobalData {
        name,
        ty,
        init,
        is_const,
    })
}

fn parse_global_init(
    c: &mut Cursor,
    module: &mut Module,
    named: &HashMap<String, Result<TypeId, SkipErr>>,
    name: &str,
    ty: TypeId,
) -> Result<rolag_ir::GlobalInit, SkipErr> {
    use rolag_ir::GlobalInit;
    let unsup = |c: &Cursor, detail: String| {
        Err(SkipErr::new(
            SkipCode::UnsupportedGlobal,
            format!("@{name}: {detail}"),
            c.line(),
            c.col(),
        ))
    };
    match c.peek().clone() {
        // External declaration (no initializer): model as zero-filled.
        Tok::Newline | Tok::Eof | Tok::Comma => Ok(GlobalInit::Zero),
        Tok::Word(w) if w == "zeroinitializer" || w == "undef" || w == "poison" => {
            c.bump();
            Ok(GlobalInit::Zero)
        }
        Tok::Int(v) => {
            c.bump();
            if module.types.is_int(ty) {
                Ok(GlobalInit::Ints {
                    elem_ty: ty,
                    values: vec![v],
                })
            } else if module.types.is_float(ty) {
                Ok(GlobalInit::Bytes(float_bytes(module, ty, v as f64)))
            } else {
                unsup(c, "integer initializer for non-int type".to_string())
            }
        }
        Tok::Float(v) => {
            c.bump();
            Ok(GlobalInit::Bytes(float_bytes(module, ty, v)))
        }
        Tok::HexBits(bits) => {
            c.bump();
            Ok(GlobalInit::Bytes(float_bytes(
                module,
                ty,
                f64::from_bits(bits),
            )))
        }
        Tok::CStr(bytes) => {
            c.bump();
            Ok(GlobalInit::Bytes(bytes))
        }
        Tok::LBracket => {
            c.bump();
            let mut elem_ty = None;
            let mut ints: Vec<i64> = Vec::new();
            let mut floats: Vec<u8> = Vec::new();
            let mut any_float = false;
            if !matches!(c.peek(), Tok::RBracket) {
                loop {
                    let ety = parse_type(c, module, named).map_err(|e| e.into_skip())?;
                    elem_ty.get_or_insert(ety);
                    match c.next() {
                        Tok::Int(v) => {
                            if module.types.is_float(ety) {
                                any_float = true;
                                floats.extend(float_bytes(module, ety, v as f64));
                            } else {
                                ints.push(v);
                            }
                        }
                        Tok::Float(v) => {
                            any_float = true;
                            floats.extend(float_bytes(module, ety, v));
                        }
                        Tok::HexBits(bits) => {
                            if module.types.is_float(ety) {
                                any_float = true;
                                floats.extend(float_bytes(module, ety, f64::from_bits(bits)));
                            } else {
                                ints.push(bits as i64);
                            }
                        }
                        other => return unsup(c, format!("unsupported array element {other:?}")),
                    }
                    if matches!(c.peek(), Tok::Comma) {
                        c.bump();
                    } else {
                        break;
                    }
                }
            }
            c.expect(&Tok::RBracket, "']'").map_err(|mut e| {
                e.code = SkipCode::UnsupportedGlobal;
                e
            })?;
            if any_float {
                if !ints.is_empty() {
                    return unsup(c, "mixed int/float array initializer".into());
                }
                Ok(GlobalInit::Bytes(floats))
            } else {
                let elem_ty = elem_ty.unwrap_or_else(|| match module.types.kind(ty) {
                    rolag_ir::TypeKind::Array { elem, .. } => *elem,
                    _ => module.types.i8(),
                });
                Ok(GlobalInit::Ints {
                    elem_ty,
                    values: ints,
                })
            }
        }
        other => unsup(c, format!("unsupported initializer {other:?}")),
    }
}

/// Little-endian bytes of a float constant at the width of `ty`.
fn float_bytes(module: &Module, ty: TypeId, v: f64) -> Vec<u8> {
    if matches!(module.types.kind(ty), rolag_ir::TypeKind::Float) {
        (v as f32).to_bits().to_le_bytes().to_vec()
    } else {
        v.to_bits().to_le_bytes().to_vec()
    }
}

/// Parsed function header (declare or define).
struct FnHeader {
    name: String,
    param_tys: Vec<TypeId>,
    param_names: Vec<String>,
    ret_ty: TypeId,
    effects: Effects,
    /// Subset violation found while parsing (function body is skipped,
    /// but the declaration is still registered when the signature is
    /// representable).
    unsupported: Option<SkipErr>,
    line: u32,
    col: u32,
    /// Count of implicitly-numbered (unnamed) values consumed so far.
    unnamed_next: usize,
}

/// Parameter attributes that change call semantics: the callee receives
/// a copy/out-slot rather than the pointer itself, so we skip.
const SEMANTIC_PARAM_ATTRS: &[&str] = &["byval", "sret", "inalloca", "preallocated"];

fn parse_header(
    c: &mut Cursor,
    module: &mut Module,
    named: &HashMap<String, Result<TypeId, SkipErr>>,
    groups: &HashMap<u64, Effects>,
    is_decl: bool,
) -> Result<FnHeader, SkipErr> {
    let (line, col) = (c.line(), c.col());
    // Qualifiers and return attributes precede the return type.
    while !at_type_start(c.peek()) {
        match c.peek().clone() {
            Tok::Word(_) => {
                c.bump();
                if matches!(c.peek(), Tok::LParen) {
                    let mut depth = 0usize;
                    loop {
                        match c.next() {
                            Tok::LParen => depth += 1,
                            Tok::RParen => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Newline | Tok::Eof => break,
                            _ => {}
                        }
                    }
                } else if matches!(c.peek(), Tok::Int(_)) {
                    // e.g. `align 8`, `cc 10`
                    c.bump();
                }
            }
            other => {
                return c.err(
                    SkipCode::MalformedBody,
                    format!("unexpected token {other:?} before return type"),
                )
            }
        }
    }
    let mut unsupported: Option<SkipErr> = None;
    let ret_ty = match parse_type(c, module, named) {
        Ok(t) => t,
        Err(e) => {
            unsupported = Some(e.into_skip());
            module.types.void()
        }
    };
    // If an unsupported return type left tokens behind, scan forward to
    // the function name so we can still report the right symbol.
    while !matches!(c.peek(), Tok::Global(_) | Tok::Newline | Tok::Eof) {
        c.bump();
    }
    let name = match c.next() {
        Tok::Global(n) => n,
        other => {
            return c.err(
                SkipCode::MalformedBody,
                format!("expected function name, found {other:?}"),
            )
        }
    };
    c.expect(&Tok::LParen, "'('")?;
    let mut param_tys = Vec::new();
    let mut param_names = Vec::new();
    let mut unnamed_next = 0usize;
    if !matches!(c.peek(), Tok::RParen) {
        loop {
            if matches!(c.peek(), Tok::Ellipsis) {
                return Err(SkipErr::new(
                    SkipCode::Varargs,
                    format!("@{name} is variadic"),
                    c.line(),
                    c.col(),
                ));
            }
            match parse_type(c, module, named) {
                Ok(t) => param_tys.push(t),
                Err(e) => {
                    let mut e = e.into_skip();
                    e.detail = format!("@{name}: {}", e.detail);
                    return Err(e);
                }
            }
            // Parameter attributes.
            while let Tok::Word(w) = c.peek().clone() {
                if SEMANTIC_PARAM_ATTRS.contains(&w.as_str()) && unsupported.is_none() {
                    unsupported = Some(SkipErr::new(
                        SkipCode::UnsupportedType,
                        format!("@{name}: {w} parameter"),
                        c.line(),
                        c.col(),
                    ));
                }
                c.bump();
                if matches!(c.peek(), Tok::LParen) {
                    while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                        c.bump();
                    }
                    c.bump();
                } else if w == "align" && matches!(c.peek(), Tok::Int(_)) {
                    c.bump();
                }
            }
            let pname = if let Tok::Local(n) = c.peek().clone() {
                c.bump();
                n
            } else {
                let n = unnamed_next.to_string();
                unnamed_next += 1;
                n
            };
            param_names.push(pname);
            if matches!(c.peek(), Tok::Comma) {
                c.bump();
            } else {
                break;
            }
        }
    }
    c.expect(&Tok::RParen, "')'")?;
    // Trailing attributes: effects for declarations only (definitions
    // lose effects through the native print/parse cycle, so imports
    // mirror that and stay conservative).
    let mut effects = Effects::ReadWrite;
    if is_decl {
        while !matches!(c.peek(), Tok::Newline | Tok::Eof) {
            match c.next() {
                Tok::Word(w) if w == "readnone" => effects = Effects::ReadNone,
                Tok::Word(w) if w == "readonly" => effects = Effects::ReadOnly,
                Tok::Word(w) if w == "memory" => {
                    if matches!(c.peek(), Tok::LParen) {
                        c.bump();
                        let mut words = Vec::new();
                        while !matches!(c.peek(), Tok::RParen | Tok::Newline | Tok::Eof) {
                            if let Tok::Word(m) = c.peek() {
                                words.push(m.clone());
                            }
                            c.bump();
                        }
                        c.bump();
                        if words == ["none"] {
                            effects = Effects::ReadNone;
                        } else if words == ["read"] {
                            effects = Effects::ReadOnly;
                        }
                    }
                }
                Tok::AttrRef(n) => {
                    if let Some(e) = groups.get(&n) {
                        effects = *e;
                    }
                }
                _ => {}
            }
        }
    }
    Ok(FnHeader {
        name,
        param_tys,
        param_names,
        ret_ty,
        effects,
        unsupported,
        line,
        col,
        unnamed_next,
    })
}

/// Extracts `; ModuleID = '...'` from the raw text (comments are
/// dropped by the lexer, so this runs on the source).
fn module_name(source: &str, origin: &str) -> String {
    for line in source.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("; ModuleID = '") {
            if let Some(end) = rest.rfind('\'') {
                return rest[..end].to_string();
            }
        }
        if !t.is_empty() && !t.starts_with(';') {
            break;
        }
    }
    let base = origin.rsplit('/').next().unwrap_or(origin);
    let stem = base.strip_suffix(".ll").unwrap_or(base);
    if stem.is_empty() || stem == "<stdin>" {
        "llvm-import".to_string()
    } else {
        stem.to_string()
    }
}

impl Frontend for LlvmFrontend {
    fn name(&self) -> &'static str {
        "llvm"
    }

    fn parse(&self, source: &[u8], origin: &str) -> Result<FrontendResult, Diagnostic> {
        let text = std::str::from_utf8(source).map_err(|e| Diagnostic {
            origin: origin.to_string(),
            line: 0,
            col: 0,
            message: format!("input is not UTF-8: {e}"),
        })?;
        let toks = lex(text).map_err(|e| Diagnostic {
            origin: origin.to_string(),
            line: e.line,
            col: e.col,
            message: e.message,
        })?;
        let (items, groups, mut skips) = split_items(&toks, origin)?;
        let mut module = Module::new(module_name(text, origin));
        let named = resolve_named_types(&items, &toks, &mut module);

        let fatal = |line: u32, col: u32, message: String| Diagnostic {
            origin: origin.to_string(),
            line,
            col,
            message,
        };

        // Globals, in source order.
        for item in &items {
            if let Item::Global { start, end } = item {
                let mut c = Cursor::new(&toks, *start, *end);
                let (line, col) = (c.line(), c.col());
                match parse_global(&mut c, &mut module, &named) {
                    Ok(data) => {
                        if module.global_by_name(&data.name).is_some() {
                            return Err(fatal(
                                line,
                                col,
                                format!("global @{} defined twice", data.name),
                            ));
                        }
                        module.add_global(data);
                    }
                    Err(e) => skips.push(Skip {
                        symbol: format!("<global:{}>", global_symbol(&toks, *start)),
                        code: e.code,
                        detail: e.detail,
                        line: e.line,
                        col: e.col,
                    }),
                }
            }
        }

        // Function headers, in source order. Every representable header
        // is registered (as a declaration) so calls resolve even when a
        // body is later skipped.
        let mut headers: Vec<Option<FnHeader>> = Vec::new();
        for item in &items {
            let (range, is_decl) = match item {
                Item::Declare { start, end } => ((*start, *end), true),
                Item::Define { header, .. } => (*header, false),
                _ => continue,
            };
            let mut c = Cursor::new(&toks, range.0, range.1);
            match parse_header(&mut c, &mut module, &named, &groups, is_decl) {
                Ok(h) => {
                    if module.func_by_name(&h.name).is_some() {
                        return Err(fatal(
                            h.line,
                            h.col,
                            format!("function @{} defined twice", h.name),
                        ));
                    }
                    if module.global_by_name(&h.name).is_some() {
                        return Err(fatal(
                            h.line,
                            h.col,
                            format!("@{} defined as both a global and a function", h.name),
                        ));
                    }
                    module.add_func(Function::declare(
                        h.name.clone(),
                        h.param_tys.clone(),
                        h.ret_ty,
                        h.effects,
                    ));
                    headers.push(Some(h));
                }
                Err(e) => {
                    skips.push(Skip {
                        symbol: global_symbol(&toks, range.0),
                        code: e.code,
                        detail: e.detail,
                        line: e.line,
                        col: e.col,
                    });
                    headers.push(None);
                }
            }
        }

        // Function bodies.
        let mut hi = 0usize;
        for item in &items {
            let body_range = match item {
                Item::Declare { .. } => {
                    hi += 1;
                    continue;
                }
                Item::Define { body, .. } => *body,
                _ => continue,
            };
            let header = headers[hi].take();
            hi += 1;
            let Some(h) = header else { continue };
            if let Some(e) = h.unsupported {
                skips.push(Skip {
                    symbol: h.name.clone(),
                    code: e.code,
                    detail: e.detail,
                    line: e.line,
                    col: e.col,
                });
                continue;
            }
            let mut c = Cursor::new(&toks, body_range.0, body_range.1);
            match body::parse_and_build(&mut c, &mut module, &named, &h) {
                Ok(func) => {
                    let id = module.func_by_name(&h.name).expect("registered above");
                    module.replace_func(id, func);
                }
                Err(e) => skips.push(Skip {
                    symbol: h.name.clone(),
                    code: e.code,
                    detail: e.detail,
                    line: e.line,
                    col: e.col,
                }),
            }
        }

        Ok(FrontendResult { module, skips })
    }
}

/// Best-effort symbol name from an item's token range (for skip records
/// when the header itself failed to parse).
fn global_symbol(toks: &[Sp], start: usize) -> String {
    for sp in &toks[start..] {
        match &sp.tok {
            Tok::Global(n) => return n.clone(),
            Tok::Newline | Tok::Eof => break,
            _ => {}
        }
    }
    "<unknown>".to_string()
}
