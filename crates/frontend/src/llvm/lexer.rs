//! Lexer for the LLVM textual IR subset.
//!
//! Tokens carry 1-based line/column spans. Comments (`;` to end of
//! line) are dropped; newlines are significant (statement separators),
//! matching the native lexer's conventions.

/// One LLVM token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare word: keywords, opcodes, type names, attribute words.
    Word(String),
    /// `%name` local value or label reference (quotes decoded).
    Local(String),
    /// `@name` global/function reference (quotes decoded).
    Global(String),
    /// Integer literal that fits `i64`.
    Int(i64),
    /// Integer literal wider than `i64` (kept for a clean skip).
    BigInt,
    /// `0x` + up to 16 hex digits: IEEE-754 double bits.
    HexBits(u64),
    /// `0xK`/`0xL`/`0xM`/`0xH`/`0xR` wide-float payloads (unsupported).
    WideHex,
    /// Decimal float literal.
    Float(f64),
    /// `"..."` string (escapes decoded to bytes).
    Str(Vec<u8>),
    /// `c"..."` constant byte string.
    CStr(Vec<u8>),
    /// `#N` attribute-group reference.
    AttrRef(u64),
    /// `!name` / `!N` metadata reference (payload ignored).
    Meta,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `:`
    Colon,
    /// `...`
    Ellipsis,
    /// End of line.
    Newline,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Sp {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Lex error with a position.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Message.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'$' | b'.' | b'_' | b'-')
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || matches!(c, b'$' | b'.' | b'_')
}

/// Lexes LLVM IR text into spanned tokens.
pub fn lex(input: &str) -> Result<Vec<Sp>, LexError> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($t:expr, $l:expr, $c:expr) => {
            toks.push(Sp {
                tok: $t,
                line: $l,
                col: $c,
            })
        };
    }
    while i < b.len() {
        let (l0, c0) = (line, col);
        let c = b[i];
        match c {
            b'\n' => {
                if !matches!(toks.last().map(|s: &Sp| &s.tok), Some(Tok::Newline) | None) {
                    push!(Tok::Newline, l0, c0);
                }
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b';' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
            }
            b'%' | b'@' => {
                let global = c == b'@';
                i += 1;
                col += 1;
                let name = if i < b.len() && b[i] == b'"' {
                    let (s, ni, nc) = lex_string(b, i, line, col)?;
                    i = ni;
                    col = nc;
                    String::from_utf8_lossy(&s).into_owned()
                } else {
                    let start = i;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                        col += 1;
                    }
                    if i == start {
                        return Err(LexError {
                            message: format!("empty {} name", if global { "@" } else { "%" }),
                            line: l0,
                            col: c0,
                        });
                    }
                    String::from_utf8_lossy(&b[start..i]).into_owned()
                };
                push!(
                    if global {
                        Tok::Global(name)
                    } else {
                        Tok::Local(name)
                    },
                    l0,
                    c0
                );
            }
            b'"' => {
                let (s, ni, nc) = lex_string(b, i, line, col)?;
                i = ni;
                col = nc;
                push!(Tok::Str(s), l0, c0);
            }
            b'c' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let (s, ni, nc) = lex_string(b, i + 1, line, col + 1)?;
                i = ni;
                col = nc;
                push!(Tok::CStr(s), l0, c0);
            }
            b'#' => {
                i += 1;
                col += 1;
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let n: u64 = input[start..i].parse().map_err(|_| LexError {
                    message: "bad attribute group number".into(),
                    line: l0,
                    col: c0,
                })?;
                push!(Tok::AttrRef(n), l0, c0);
            }
            b'!' => {
                i += 1;
                col += 1;
                while i < b.len() && (is_ident_char(b[i]) || b[i] == b'\\') {
                    i += 1;
                    col += 1;
                }
                push!(Tok::Meta, l0, c0);
            }
            b'0' if i + 1 < b.len() && b[i + 1] == b'x' => {
                i += 2;
                col += 2;
                if i < b.len() && matches!(b[i], b'K' | b'L' | b'M' | b'H' | b'R') {
                    i += 1;
                    col += 1;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                        col += 1;
                    }
                    push!(Tok::WideHex, l0, c0);
                } else {
                    let start = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                        col += 1;
                    }
                    match u64::from_str_radix(&input[start..i], 16) {
                        Ok(v) => push!(Tok::HexBits(v), l0, c0),
                        Err(_) => push!(Tok::BigInt, l0, c0),
                    }
                }
            }
            b'-' | b'+' if i + 1 < b.len() && b[i + 1].is_ascii_digit() => {
                let (tok, ni, nc) = lex_number(input, i, col);
                i = ni;
                col = nc;
                push!(tok, l0, c0);
            }
            _ if c.is_ascii_digit() => {
                let (tok, ni, nc) = lex_number(input, i, col);
                i = ni;
                col = nc;
                push!(tok, l0, c0);
            }
            b'.' if i + 2 < b.len() && b[i + 1] == b'.' && b[i + 2] == b'.' => {
                i += 3;
                col += 3;
                push!(Tok::Ellipsis, l0, c0);
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                    col += 1;
                }
                push!(
                    Tok::Word(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    l0,
                    c0
                );
            }
            _ => {
                let tok = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    b',' => Tok::Comma,
                    b'=' => Tok::Eq,
                    b'*' => Tok::Star,
                    b':' => Tok::Colon,
                    b'^' => {
                        // Module summary entries: skip the line.
                        while i < b.len() && b[i] != b'\n' {
                            i += 1;
                            col += 1;
                        }
                        continue;
                    }
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character {:?}", other as char),
                            line: l0,
                            col: c0,
                        })
                    }
                };
                i += 1;
                col += 1;
                push!(tok, l0, c0);
            }
        }
    }
    if !matches!(toks.last().map(|s| &s.tok), Some(Tok::Newline) | None) {
        push!(Tok::Newline, line, col);
    }
    push!(Tok::Eof, line, col);
    Ok(toks)
}

/// Lexes a `"..."` string starting at the opening quote; returns the
/// decoded bytes, the index past the closing quote, and the new column.
fn lex_string(
    b: &[u8],
    start: usize,
    line: u32,
    col: u32,
) -> Result<(Vec<u8>, usize, u32), LexError> {
    let mut i = start + 1;
    let mut c = col + 1;
    let mut out = Vec::new();
    while i < b.len() {
        match b[i] {
            b'"' => return Ok((out, i + 1, c + 1)),
            b'\n' => break,
            b'\\' => {
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    out.push(b'\\');
                    i += 2;
                    c += 2;
                } else if i + 2 < b.len()
                    && b[i + 1].is_ascii_hexdigit()
                    && b[i + 2].is_ascii_hexdigit()
                {
                    let hex = std::str::from_utf8(&b[i + 1..i + 3]).unwrap();
                    out.push(u8::from_str_radix(hex, 16).unwrap());
                    i += 3;
                    c += 3;
                } else {
                    return Err(LexError {
                        message: "bad string escape".into(),
                        line,
                        col: c,
                    });
                }
            }
            other => {
                out.push(other);
                i += 1;
                c += 1;
            }
        }
    }
    Err(LexError {
        message: "unterminated string".into(),
        line,
        col,
    })
}

/// Lexes a decimal integer or float starting at `i` (which may point at
/// a sign). Returns the token, the index past the literal, and the new
/// column.
fn lex_number(input: &str, i: usize, col: u32) -> (Tok, usize, u32) {
    let b = input.as_bytes();
    let mut j = i;
    if matches!(b[j], b'-' | b'+') {
        j += 1;
    }
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_float = false;
    if j < b.len() && b[j] == b'.' {
        is_float = true;
        j += 1;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    if j < b.len() && matches!(b[j], b'e' | b'E') {
        let mut k = j + 1;
        if k < b.len() && matches!(b[k], b'-' | b'+') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let text = &input[i..j];
    let ncol = col + (j - i) as u32;
    let tok = if is_float {
        match text.parse::<f64>() {
            Ok(v) => Tok::Float(v),
            Err(_) => Tok::BigInt,
        }
    } else {
        match text.parse::<i64>() {
            Ok(v) => Tok::Int(v),
            Err(_) => Tok::BigInt,
        }
    };
    (tok, j, ncol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_core_tokens() {
        let t = kinds("define i32 @f(i32 %x) {\n  %y = add nsw i32 %x, -1\n}\n");
        assert!(t.contains(&Tok::Word("define".into())));
        assert!(t.contains(&Tok::Global("f".into())));
        assert!(t.contains(&Tok::Local("x".into())));
        assert!(t.contains(&Tok::Int(-1)));
        assert!(t.contains(&Tok::LBrace));
    }

    #[test]
    fn lexes_floats_hex_strings() {
        let t =
            kinds("1.5 2.000000e+00 0x3FF0000000000000 0xK4000 c\"ab\\00\" \"q r\" #7 !dbg ...");
        assert!(t.contains(&Tok::Float(1.5)));
        assert!(t.contains(&Tok::Float(2.0)));
        assert!(t.contains(&Tok::HexBits(0x3FF0000000000000)));
        assert!(t.contains(&Tok::WideHex));
        assert!(t.contains(&Tok::CStr(vec![b'a', b'b', 0])));
        assert!(t.contains(&Tok::Str(b"q r".to_vec())));
        assert!(t.contains(&Tok::AttrRef(7)));
        assert!(t.contains(&Tok::Meta));
        assert!(t.contains(&Tok::Ellipsis));
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let t = kinds("; c1\n\n\nadd ; tail\n");
        assert_eq!(t, vec![Tok::Word("add".into()), Tok::Newline, Tok::Eof]);
    }

    #[test]
    fn quoted_names_decode() {
        let t = kinds("%\"a b\" @\"x\\22y\"");
        assert!(t.contains(&Tok::Local("a b".into())));
        assert!(t.contains(&Tok::Global("x\"y".into())));
    }
}
