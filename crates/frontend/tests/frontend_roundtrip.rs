//! Acceptance check for the LLVM importer: every TSVC kernel, rendered
//! to the LLVM subset and imported back, rolls to a byte-identical
//! module compared with rolling the native text round-trip.
//!
//! Both sides go through a text round-trip (`print_module` → native
//! parse vs `emit_llvm` → import) so metadata the formats cannot carry
//! (definition effects) is lost symmetrically.

use rolag::{roll_module, RolagOptions};
use rolag_frontend::emit::emit_llvm;
use rolag_frontend::llvm::LlvmFrontend;
use rolag_frontend::Frontend;
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};

#[test]
fn tsvc_llvm_roundtrip_rolls_identically() {
    let opts = RolagOptions::default();
    let mut checked = 0;
    for spec in all_kernels() {
        let module = build_kernel_module(&spec);

        let mut native = parse_module(&print_module(&module))
            .unwrap_or_else(|e| panic!("{}: native reparse failed: {e:?}", spec.name));

        let ll = emit_llvm(&module);
        let imported = LlvmFrontend
            .parse(ll.as_bytes(), &format!("{}.ll", spec.name))
            .unwrap_or_else(|e| panic!("{}: import failed: {e}", spec.name));
        assert!(
            imported.skips.is_empty(),
            "{}: importer skipped {:?}",
            spec.name,
            imported
                .skips
                .iter()
                .map(|s| format!("{}: {} ({})", s.symbol, s.code.code(), s.detail))
                .collect::<Vec<_>>()
        );
        let mut llvm_side = imported.module;

        assert_eq!(
            print_module(&native),
            print_module(&llvm_side),
            "{}: imported module differs before rolling",
            spec.name
        );

        roll_module(&mut native, &opts);
        roll_module(&mut llvm_side, &opts);
        assert_eq!(
            print_module(&native),
            print_module(&llvm_side),
            "{}: rolled modules differ",
            spec.name
        );
        checked += 1;
    }
    assert!(
        checked > 100,
        "expected the full kernel suite, got {checked}"
    );
}
