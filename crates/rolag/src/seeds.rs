//! Seed collection (§IV-A).
//!
//! Scans a basic block for groups of instructions likely to lead to
//! isomorphic code: stores grouped by base address and stored type, calls
//! grouped by callee, and roots of reduction trees. Alternating groups are
//! additionally proposed as joint candidates (§IV-C6).

use std::collections::HashMap;

use rolag_analysis::alias::{resolve_pointer, BaseObject};
use rolag_ir::{BlockId, Function, InstExtra, InstId, Module, Opcode, TypeId, ValueDef, ValueId};

use crate::options::RolagOptions;

/// One rolling candidate for the alignment-graph builder.
///
/// Candidates are structural values over stable arena ids, so they are
/// hashable and comparable: the incremental fixpoint engine uses them
/// directly as memoization keys (a candidate re-collected from an unchanged
/// block compares equal to its previous incarnation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// One or more seed groups (more than one = a joint candidate whose
    /// groups alternate in the block). Each inner vector holds one seed
    /// value per lane, in block order.
    Seeds {
        /// The block the seeds live in.
        block: BlockId,
        /// Seed groups in emission order.
        groups: Vec<Vec<ValueId>>,
    },
    /// A reduction tree (§IV-C5).
    Reduction {
        /// The block the tree lives in.
        block: BlockId,
        /// The associative operation.
        opcode: Opcode,
        /// Internal tree instructions; `internal[0]` is the tree root.
        internal: Vec<InstId>,
        /// Leaf values, one per lane.
        leaves: Vec<ValueId>,
        /// A loop-carried or external value entering the chain (the
        /// accumulator of a partially unrolled reduction loop). Becomes the
        /// rolled accumulator's initial value, keeping the evaluation order
        /// — and therefore floating-point results — exact.
        carry: Option<ValueId>,
        /// Element type.
        ty: TypeId,
    },
}

impl Candidate {
    /// The block this candidate targets.
    pub fn block(&self) -> BlockId {
        match self {
            Candidate::Seeds { block, .. } => *block,
            Candidate::Reduction { block, .. } => *block,
        }
    }

    /// Number of lanes (rolled-loop iterations) of the candidate.
    pub fn lanes(&self) -> usize {
        match self {
            Candidate::Seeds { groups, .. } => groups[0].len(),
            Candidate::Reduction { leaves, .. } => leaves.len(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Store(BaseObject, TypeId),
    Call(rolag_ir::FuncId),
}

/// Alternative seed groupings of a base candidate for the beam-search
/// engine (`rolag::search`): the greedy engine proposes exactly one grouping
/// per region, but a group that fails as a whole may roll as a permutation
/// or a subset. Each variant is a legal candidate in its own right — it goes
/// through the same alignment, scheduling, codegen, and validation stages as
/// a base candidate, so enumeration here can be aggressive.
///
/// Variants (single-group `Seeds` candidates only; joint and reduction
/// candidates already encode their own structure):
///
/// - **Lane reorder**: lanes sorted by the seed stores' resolved constant
///   pointer offsets. Shuffled stores to `a[3], a[0], a[2], a[1]` roll as a
///   sequence once the lanes are in address order.
/// - **Sub-group splits**: the first and second halves as independent
///   groups, when both halves still clear `min_lanes`.
/// - **Trimmed groups**: the group minus its first (resp. last) lane — one
///   poisoned lane (a dependence cycle, a mismatched shape) otherwise sinks
///   the whole group.
///
/// The result is deduplicated against the base grouping and bounded (at
/// most five variants), deterministic, and in a fixed order.
pub fn candidate_variants(
    module: &Module,
    func: &Function,
    cand: &Candidate,
    opts: &RolagOptions,
) -> Vec<Candidate> {
    let Candidate::Seeds { block, groups } = cand else {
        return Vec::new();
    };
    let [lanes] = groups.as_slice() else {
        return Vec::new();
    };
    let block = *block;
    let n = lanes.len();
    let mut out: Vec<Candidate> = Vec::new();
    let push = |variant: Vec<ValueId>, out: &mut Vec<Candidate>| {
        if variant.len() < opts.min_lanes || variant == *lanes {
            return;
        }
        let c = Candidate::Seeds {
            block,
            groups: vec![variant],
        };
        if !out.contains(&c) {
            out.push(c);
        }
    };

    // Lane reorder by resolved constant store offset: only meaningful (and
    // only well-defined) when every lane is a store whose address resolves
    // to a constant offset from a common base.
    let offsets: Option<Vec<i64>> = lanes
        .iter()
        .map(|&v| {
            let ValueDef::Inst(i) = func.value(v) else {
                return None;
            };
            let data = func.inst(*i);
            if data.opcode != Opcode::Store {
                return None;
            }
            resolve_pointer(module, func, data.operands[1]).offset
        })
        .collect();
    if let Some(offsets) = offsets {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&k| (offsets[k], k));
        push(order.iter().map(|&k| lanes[k]).collect(), &mut out);
    }

    // Sub-group splits: both halves must clear the lane gate on their own.
    let half = n / 2;
    if half >= opts.min_lanes && n - half >= opts.min_lanes {
        push(lanes[..half].to_vec(), &mut out);
        push(lanes[half..].to_vec(), &mut out);
    }

    // Trimmed groups: drop the first (resp. last) lane.
    if n > opts.min_lanes {
        push(lanes[1..].to_vec(), &mut out);
        push(lanes[..n - 1].to_vec(), &mut out);
    }

    out.truncate(5);
    out
}

/// Collects rolling candidates for every block of `func`.
pub fn collect_candidates(module: &Module, func: &Function, opts: &RolagOptions) -> Vec<Candidate> {
    let mut out = Vec::new();
    for block in func.block_ids() {
        collect_in_block(module, func, block, opts, &mut out);
    }
    out
}

/// Collects the candidates of one block into a fresh vector — the unit of
/// caching for the incremental fixpoint engine ([`collect_candidates`] is
/// exactly the per-block lists concatenated in block order).
pub fn collect_block_candidates(
    module: &Module,
    func: &Function,
    block: BlockId,
    opts: &RolagOptions,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    collect_in_block(module, func, block, opts, &mut out);
    out
}

/// Collects rolling candidates inside one block, appending to `out`.
pub fn collect_in_block(
    module: &Module,
    func: &Function,
    block: BlockId,
    opts: &RolagOptions,
    out: &mut Vec<Candidate>,
) {
    // --- store and call groups, with their positions -----------------------
    let mut groups: Vec<(GroupKey, Vec<(usize, InstId)>)> = Vec::new();
    let mut index: HashMap<GroupKey, usize> = HashMap::new();
    for (pos, &i) in func.block(block).insts.iter().enumerate() {
        let data = func.inst(i);
        let key = match data.opcode {
            Opcode::Store => {
                let base = resolve_pointer(module, func, data.operands[1]).base;
                let vty = func.value_ty(data.operands[0], &module.types);
                GroupKey::Store(base, vty)
            }
            Opcode::Call => {
                let InstExtra::Call { callee } = data.extra else {
                    continue;
                };
                GroupKey::Call(callee)
            }
            _ => continue,
        };
        let slot = *index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push((pos, i));
    }
    let big: Vec<&(GroupKey, Vec<(usize, InstId)>)> = groups
        .iter()
        .filter(|(_, seeds)| seeds.len() >= opts.min_lanes)
        .collect();

    // --- joint candidates: alternating groups of equal size (§IV-C6) -------
    // All maximal k-way round-robins are proposed first (k >= 2), then the
    // pairwise ones not subsumed by a larger joint.
    if opts.enable_joint {
        let mut by_size: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, (_, seeds)) in big.iter().enumerate() {
            by_size.entry(seeds.len()).or_default().push(idx);
        }
        for indices in by_size.values() {
            if indices.len() < 2 {
                continue;
            }
            // Widest-first: try the full set, then all pairs.
            let mut proposed_full = false;
            if indices.len() > 2 {
                let groups: Vec<&Vec<(usize, InstId)>> =
                    indices.iter().map(|&i| &big[i].1).collect();
                if let Some(ordered) = alternation_k(&groups) {
                    out.push(Candidate::Seeds {
                        block,
                        groups: ordered
                            .iter()
                            .map(|g| g.iter().map(|&(_, i)| func.inst_result(i)).collect())
                            .collect(),
                    });
                    proposed_full = true;
                }
            }
            if !proposed_full {
                for a in 0..indices.len() {
                    for b in a + 1..indices.len() {
                        let groups = [&big[indices[a]].1, &big[indices[b]].1];
                        if let Some(ordered) = alternation_k(&groups[..]) {
                            out.push(Candidate::Seeds {
                                block,
                                groups: ordered
                                    .iter()
                                    .map(|g| g.iter().map(|&(_, i)| func.inst_result(i)).collect())
                                    .collect(),
                            });
                        }
                    }
                }
            }
        }
    }

    // --- plain groups, larger first ----------------------------------------
    let mut plain: Vec<&(GroupKey, Vec<(usize, InstId)>)> = big.clone();
    plain.sort_by_key(|(_, seeds)| (usize::MAX - seeds.len(), seeds[0].0));
    for (_, seeds) in plain {
        out.push(Candidate::Seeds {
            block,
            groups: vec![seeds.iter().map(|&(_, i)| func.inst_result(i)).collect()],
        });
    }

    // --- reduction trees (§IV-C5) -------------------------------------------
    if opts.enable_reductions {
        collect_reductions(module, func, block, opts, out);
    }

    // --- value chains (EXTENSION: paper future work, Fig. 20b) --------------
    if opts.enable_value_chains {
        collect_value_chains(func, block, opts, out);
    }
}

/// EXTENSION (§V-C future work): chains of `select`s or non-associative
/// binops where each link consumes the previous one — e.g. the select chain
/// a partially unrolled min/max loop leaves behind. The chain members
/// become a seed group; the link itself is recognized by the recurrence
/// node during alignment.
fn collect_value_chains(
    func: &Function,
    block: BlockId,
    opts: &RolagOptions,
    out: &mut Vec<Candidate>,
) {
    let uses = func.compute_uses();
    let insts = &func.block(block).insts;
    let in_block: std::collections::HashSet<InstId> = insts.iter().copied().collect();
    let eligible = |op: Opcode| {
        matches!(op, Opcode::Select) || (op.is_binop() && !op.is_associative(opts.fast_math))
    };
    // next[i] = the unique same-opcode user of i inside the block.
    let link_of = |i: InstId| -> Option<InstId> {
        let op = func.inst(i).opcode;
        let result = func.inst_result(i);
        let users: Vec<InstId> = uses
            .of(result)
            .iter()
            .map(|&(u, _)| u)
            .filter(|u| in_block.contains(u) && func.inst(*u).opcode == op)
            .collect();
        // The link is the unique same-opcode user; other users (e.g. the
        // compare feeding the next select) are resolved by the alignment
        // graph itself.
        match users.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    };
    // Heads: eligible instructions not linked from an earlier chain member.
    let mut linked: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    for &i in insts {
        if eligible(func.inst(i).opcode) {
            if let Some(n) = link_of(i) {
                linked.insert(n);
            }
        }
    }
    for &head in insts {
        if !eligible(func.inst(head).opcode) || linked.contains(&head) {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(next) = link_of(cur) {
            chain.push(next);
            cur = next;
        }
        if chain.len() >= opts.min_lanes.max(3) {
            out.push(Candidate::Seeds {
                block,
                groups: vec![chain.iter().map(|&i| func.inst_result(i)).collect()],
            });
        }
    }
}

/// If the position-sorted groups strictly alternate in round-robin order
/// (g0[0] < g1[0] < ... < gk[0] < g0[1] < ...), returns them in leading
/// order; otherwise `None`.
fn alternation_k<'g>(groups: &[&'g Vec<(usize, InstId)>]) -> Option<Vec<&'g Vec<(usize, InstId)>>> {
    let mut ordered: Vec<&Vec<(usize, InstId)>> = groups.to_vec();
    ordered.sort_by_key(|g| g[0].0);
    let n = ordered[0].len();
    let mut prev = None;
    for lane in 0..n {
        for g in &ordered {
            let pos = g[lane].0;
            if let Some(p) = prev {
                if pos <= p {
                    return None;
                }
            }
            prev = Some(pos);
        }
    }
    Some(ordered)
}

fn collect_reductions(
    _module: &Module,
    func: &Function,
    block: BlockId,
    opts: &RolagOptions,
    out: &mut Vec<Candidate>,
) {
    let uses = func.compute_uses();
    let insts = &func.block(block).insts;
    let in_block: std::collections::HashSet<InstId> = insts.iter().copied().collect();
    for &i in insts {
        let data = func.inst(i);
        let opcode = data.opcode;
        if !opcode.is_binop() || !opcode.is_associative(opts.fast_math) || !opcode.is_commutative()
        {
            continue;
        }
        // Roots: results not consumed by another same-opcode inst in the
        // block.
        let result = func.inst_result(i);
        let is_root = !uses
            .of(result)
            .iter()
            .any(|&(user, _)| in_block.contains(&user) && func.inst(user).opcode == opcode);
        if !is_root {
            continue;
        }
        // Gather the tree: internal nodes are same-opcode, single-use
        // instructions of this block.
        let mut internal = vec![i];
        let mut leaves: Vec<ValueId> = Vec::new();
        let mut stack = vec![i];
        while let Some(n) = stack.pop() {
            for &op in &func.inst(n).operands {
                let as_internal = match func.value(op) {
                    ValueDef::Inst(inner)
                        if in_block.contains(inner)
                            && func.inst(*inner).opcode == opcode
                            && uses.count(op) == 1 =>
                    {
                        Some(*inner)
                    }
                    _ => None,
                };
                match as_internal {
                    Some(inner) => {
                        internal.push(inner);
                        stack.push(inner);
                    }
                    None => leaves.push(op),
                }
            }
        }
        // A tree of fewer than 3 leaves is just one operation.
        if leaves.len() < 3 || leaves.len() < opts.min_lanes {
            continue;
        }
        // Canonicalize leaf order by block position (associativity and
        // commutativity allow it): this lets strided leaves align their
        // index groups into sequences rather than shuffled mismatch arrays.
        let pos_map: HashMap<InstId, usize> = insts
            .iter()
            .enumerate()
            .map(|(p, &inst)| (inst, p))
            .collect();
        let leaf_pos = |v: ValueId, func: &Function| match func.value(v) {
            ValueDef::Inst(inner) => {
                if func.inst(*inner).opcode == Opcode::Phi {
                    // Phis sort first: they are carry candidates.
                    0
                } else {
                    pos_map.get(inner).copied().unwrap_or(usize::MAX)
                }
            }
            _ => 0,
        };
        leaves.sort_by_key(|&v| leaf_pos(v, func));
        // A single non-rollable leaf (a phi of this block, or a value from
        // outside) is the accumulator carried into a partially unrolled
        // reduction; split it off as the chain's entry value.
        let is_plain = |v: ValueId| match func.value(v) {
            ValueDef::Inst(inner) => {
                in_block.contains(inner) && func.inst(*inner).opcode != Opcode::Phi
            }
            _ => false,
        };
        let odd: Vec<usize> = (0..leaves.len())
            .filter(|&k| !is_plain(leaves[k]))
            .collect();
        let carry = if odd.len() == 1 && leaves.len() >= 4 {
            Some(leaves.remove(odd[0]))
        } else {
            None
        };
        out.push(Candidate::Reduction {
            block,
            opcode,
            internal,
            leaves,
            carry,
            ty: data.ty,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn candidates(text: &str) -> (Module, Vec<Candidate>) {
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let opts = RolagOptions::default();
        let c = collect_candidates(&m, f, &opts);
        (m.clone(), c)
    }

    #[test]
    fn stores_group_by_base_and_type() {
        let (_m, c) = candidates(
            r#"
module "t"
global @a : [8 x i32] = zero
global @b : [8 x i32] = zero
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  %b0 = gep i32, @b, i64 0
  store i32 9, %b0
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  %b1 = gep i32, @b, i64 1
  store i32 8, %b1
  %a2 = gep i32, @a, i64 2
  store i32 3, %a2
  ret
}
"#,
        );
        // Groups: stores-to-@a (3 lanes), stores-to-@b (2 lanes). They do
        // not strictly alternate (a,b,a,b,a has unequal sizes), so no joint.
        let seeds: Vec<_> = c
            .iter()
            .filter_map(|c| match c {
                Candidate::Seeds { groups, .. } => Some(groups),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].len(), 1);
        assert_eq!(seeds[0][0].len(), 3, "larger group first");
        assert_eq!(seeds[1][0].len(), 2);
    }

    #[test]
    fn calls_group_by_callee_and_joint_detected() {
        let (_m, c) = candidates(
            r#"
module "t"
declare @sink(i32 %p0) -> void readwrite
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  call void @sink(i32 0)
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  call void @sink(i32 1)
  ret
}
"#,
        );
        let joints: Vec<_> = c
            .iter()
            .filter_map(|c| match c {
                Candidate::Seeds { groups, .. } if groups.len() == 2 => Some(groups),
                _ => None,
            })
            .collect();
        assert_eq!(joints.len(), 1, "stores and calls alternate");
        assert_eq!(joints[0][0].len(), 2);
        // Plain candidates for each group also exist.
        let plains = c
            .iter()
            .filter(|c| matches!(c, Candidate::Seeds { groups, .. } if groups.len() == 1))
            .count();
        assert_eq!(plains, 2);
    }

    #[test]
    fn reduction_tree_found_with_root_first() {
        let (m, c) = candidates(
            r#"
module "t"
func @f(ptr %p0, ptr %p1) -> i32 {
entry:
  %a0 = load i32, %p0
  %b0 = load i32, %p1
  %m0 = mul i32 %a0, %b0
  %g1 = gep i32, %p0, i64 1
  %a1 = load i32, %g1
  %h1 = gep i32, %p1, i64 1
  %b1 = load i32, %h1
  %m1 = mul i32 %a1, %b1
  %g2 = gep i32, %p0, i64 2
  %a2 = load i32, %g2
  %h2 = gep i32, %p1, i64 2
  %b2 = load i32, %h2
  %m2 = mul i32 %a2, %b2
  %s0 = add i32 %m0, %m1
  %s1 = add i32 %s0, %m2
  ret %s1
}
"#,
        );
        let reds: Vec<_> = c
            .iter()
            .filter_map(|c| match c {
                Candidate::Reduction {
                    opcode,
                    internal,
                    leaves,
                    ..
                } => Some((opcode, internal, leaves)),
                _ => None,
            })
            .collect();
        assert_eq!(reds.len(), 1);
        let (op, internal, leaves) = &reds[0];
        assert_eq!(**op, Opcode::Add);
        assert_eq!(internal.len(), 2, "two adds");
        assert_eq!(leaves.len(), 3, "three muls");
        // internal[0] is the root (the final add).
        let f = m.func(m.func_by_name("f").unwrap());
        let root_val = f.inst_result(internal[0]);
        let ret = f.live_insts().last().unwrap();
        assert_eq!(f.inst(ret).operands[0], root_val);
    }

    #[test]
    fn small_groups_are_ignored() {
        let (_m, c) = candidates(
            r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  ret
}
"#,
        );
        assert!(c.is_empty());
    }

    #[test]
    fn variants_enumerate_reorder_split_and_trims() {
        // 4 stores to @a in shuffled address order: the lane-reorder
        // variant must sort them; splits and trims must also appear.
        let (m, c) = candidates(
            r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  %a3 = gep i32, @a, i64 3
  store i32 3, %a3
  %a0 = gep i32, @a, i64 0
  store i32 0, %a0
  %a2 = gep i32, @a, i64 2
  store i32 2, %a2
  %a1 = gep i32, @a, i64 1
  store i32 1, %a1
  ret
}
"#,
        );
        let f = m.func(m.func_by_name("f").unwrap());
        let opts = RolagOptions::default();
        let base = c
            .iter()
            .find(|c| matches!(c, Candidate::Seeds { groups, .. } if groups.len() == 1))
            .expect("one plain store group");
        let variants = candidate_variants(&m, f, base, &opts);
        assert!(!variants.is_empty());
        assert!(variants.len() <= 5, "variant fan-out must stay bounded");
        let Candidate::Seeds { groups, .. } = base else {
            unreachable!()
        };
        let lanes = &groups[0];
        let lane_sets: Vec<Vec<ValueId>> = variants
            .iter()
            .map(|v| match v {
                Candidate::Seeds { groups, .. } => groups[0].clone(),
                _ => unreachable!("variants are single-group seeds"),
            })
            .collect();
        // Lane reorder: same 4 lanes, sorted by offset 0,1,2,3 — i.e. the
        // block-order lanes at positions 1,3,2,0.
        let reordered = vec![lanes[1], lanes[3], lanes[2], lanes[0]];
        assert!(lane_sets.contains(&reordered), "offset-sorted reorder");
        // Splits: both halves.
        assert!(lane_sets.contains(&lanes[..2].to_vec()), "first half");
        assert!(lane_sets.contains(&lanes[2..].to_vec()), "second half");
        // Trims: drop-first and drop-last.
        assert!(lane_sets.contains(&lanes[1..].to_vec()), "drop-first");
        assert!(lane_sets.contains(&lanes[..3].to_vec()), "drop-last");
        // No variant duplicates the base grouping, and none is too small.
        for set in &lane_sets {
            assert_ne!(set, lanes);
            assert!(set.len() >= opts.min_lanes);
        }
    }

    #[test]
    fn variants_skip_joint_and_reduction_candidates() {
        let (m, c) = candidates(
            r#"
module "t"
func @f(i32 %p0, i32 %p1, i32 %p2, i32 %p3) -> i32 {
entry:
  %s0 = add i32 %p0, %p1
  %s1 = add i32 %s0, %p2
  %s2 = add i32 %s1, %p3
  ret %s2
}
"#,
        );
        let f = m.func(m.func_by_name("f").unwrap());
        let opts = RolagOptions::default();
        let red = c
            .iter()
            .find(|c| matches!(c, Candidate::Reduction { .. }))
            .expect("reduction tree");
        assert!(candidate_variants(&m, f, red, &opts).is_empty());
    }

    #[test]
    fn variants_of_in_order_stores_have_no_reorder() {
        // Already in address order: the offset sort is the identity and
        // must be deduplicated away; splits and trims remain.
        let (m, c) = candidates(
            r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 0, %a0
  %a1 = gep i32, @a, i64 1
  store i32 1, %a1
  %a2 = gep i32, @a, i64 2
  store i32 2, %a2
  %a3 = gep i32, @a, i64 3
  store i32 3, %a3
  ret
}
"#,
        );
        let f = m.func(m.func_by_name("f").unwrap());
        let opts = RolagOptions::default();
        let base = c
            .iter()
            .find(|c| matches!(c, Candidate::Seeds { groups, .. } if groups.len() == 1))
            .unwrap();
        let Candidate::Seeds { groups, .. } = base else {
            unreachable!()
        };
        let lanes = &groups[0];
        let variants = candidate_variants(&m, f, base, &opts);
        for v in &variants {
            let Candidate::Seeds { groups, .. } = v else {
                unreachable!()
            };
            assert!(groups[0].len() < lanes.len(), "identity reorder deduped");
        }
        assert_eq!(variants.len(), 4, "two splits + two trims");
    }

    #[test]
    fn multi_use_subtrees_become_leaves() {
        // %s0 has two uses -> it cannot be an internal node; the tree seen
        // from the final add has leaves {%s0, %s0, %p2} (>=3 leaves).
        let (_m, c) = candidates(
            r#"
module "t"
func @f(i32 %p0, i32 %p1, i32 %p2) -> i32 {
entry:
  %s0 = add i32 %p0, %p1
  %d = add i32 %s0, %s0
  %r = add i32 %d, %p2
  ret %r
}
"#,
        );
        let reds: Vec<_> = c
            .iter()
            .filter_map(|c| match c {
                Candidate::Reduction {
                    leaves, internal, ..
                } => Some((leaves, internal)),
                _ => None,
            })
            .collect();
        assert_eq!(reds.len(), 1);
        assert_eq!(reds[0].0.len(), 3);
        assert_eq!(reds[0].1.len(), 2, "root and %d; %s0 stays a leaf");
    }
}
