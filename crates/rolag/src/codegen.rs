//! Loop code generation (§IV-E, Fig. 14).
//!
//! Splits the target block into preheader / loop / exit, emits one copy of
//! every alignment-graph node inside the loop, materializes mismatching
//! nodes as arrays (global constant arrays in `.rodata`, or stack arrays
//! filled in the preheader), lowers recurrences and reductions to phis, and
//! routes externally used values through exit-side arrays (or directly, when
//! only the final iteration's value escapes).

use std::collections::HashMap;

use rolag_ir::{
    BlockId, Builder, Function, GlobalData, GlobalId, GlobalInit, InstData, InstExtra, InstId,
    IntPredicate, Module, Opcode, TypeId, ValueDef, ValueId,
};

use crate::align::{AlignGraph, NodeId, NodeKind};
use crate::schedule::Schedule;

/// What code generation produced.
#[derive(Debug, Clone)]
pub struct RollOutcome {
    /// The preheader (the original block, truncated).
    pub preheader: BlockId,
    /// The new single-block loop.
    pub loop_block: BlockId,
    /// The exit block holding the block's original tail.
    pub exit_block: BlockId,
    /// Constant-data globals created for mismatching nodes. The caller pops
    /// them from the module if it discards this attempt.
    pub new_globals: Vec<GlobalId>,
}

enum MismatchLowering {
    /// Global constant array in `.rodata`.
    Const(GlobalId),
    /// Stack array filled in the preheader.
    Stack(ValueId),
}

/// Generates the rolled loop. Returns `None` (leaving `func` in an
/// unspecified state — the caller works on a clone) when the graph contains
/// shapes the generator cannot lower, e.g. mismatching lanes of differing
/// types.
pub fn generate(
    module: &mut Module,
    func: &mut Function,
    block: BlockId,
    graph: &AlignGraph,
    schedule: &Schedule,
) -> Option<RollOutcome> {
    let lanes = graph.lanes as i64;

    // ---- pre-checks and constant-array planning ----------------------------
    // Every mismatching node needs a uniform element type; all-constant
    // integer mismatches become global constant arrays.
    let mut const_plans: Vec<(NodeId, TypeId, Vec<i64>)> = Vec::new();
    for node in graph.node_ids() {
        if !matches!(graph.node(node).kind, NodeKind::Mismatch) {
            continue;
        }
        let lanes_v = &graph.node(node).lanes;
        let ty = func.value_ty(lanes_v[0], &module.types);
        if lanes_v
            .iter()
            .any(|&v| func.value_ty(v, &module.types) != ty)
        {
            return None;
        }
        if module.types.size_of(ty) == 0 {
            return None;
        }
        let consts: Option<Vec<i64>> = lanes_v
            .iter()
            .map(|&v| match func.value(v) {
                ValueDef::ConstInt { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        if let Some(values) = consts {
            if module.types.is_int(ty) {
                const_plans.push((node, ty, values));
            }
        }
    }
    let mut new_globals = Vec::new();
    let mut lowering: HashMap<NodeId, MismatchLowering> = HashMap::new();
    for (node, ty, values) in const_plans {
        let name = module.fresh_global_name("rolag.cdata");
        let arr_ty = module.types.array(ty, values.len() as u64);
        let gid = module.add_global(GlobalData {
            name,
            ty: arr_ty,
            init: GlobalInit::Ints {
                elem_ty: ty,
                values,
            },
            is_const: true,
        });
        new_globals.push(gid);
        lowering.insert(node, MismatchLowering::Const(gid));
    }

    // ---- external uses of rolled values ------------------------------------
    // Uses of a claimed lane value by instructions that survive (preheader,
    // exit, or other blocks). Computed before the block is torn apart.
    let uses = func.compute_uses();
    // node -> lanes with external users (deterministically ordered).
    let mut ext_map: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (&inst, &(node, lane)) in &graph.claimed {
        let result = func.inst_result(inst);
        let has_ext = uses
            .of(result)
            .iter()
            .any(|&(user, _)| !schedule.graph_insts.contains(&user));
        if has_ext {
            ext_map.entry(node).or_default().push(lane);
        }
    }
    // Reduction roots always escape through their final accumulator.
    for node in graph.node_ids() {
        if let NodeKind::Reduction { .. } = graph.node(node).kind {
            ext_map.entry(node).or_default();
        }
    }
    let mut ext_lanes: Vec<(NodeId, Vec<usize>)> = ext_map.into_iter().collect();
    ext_lanes.sort_by_key(|(n, _)| *n);
    for (_, lanes_used) in ext_lanes.iter_mut() {
        lanes_used.sort_unstable();
    }

    // ---- tear the block apart ----------------------------------------------
    let original: Vec<InstId> = func.block(block).insts.clone();
    for &i in &original {
        func.remove_inst(i);
    }
    let suffix = func.num_blocks();
    let loop_block = func.add_block(format!("rolag.loop.{suffix}"));
    let exit_block = func.add_block(format!("rolag.exit.{suffix}"));
    for &i in &schedule.before {
        func.append_inst(block, i);
    }

    let types_i64 = module.types.i64();
    let types_i1 = module.types.i1();
    let _ = types_i1;

    // ---- preheader: mismatch stack arrays & external-use arrays ------------
    let mut b = Builder::on(func, &mut module.types);
    b.switch_to(block);
    for node in graph.node_ids() {
        if lowering.contains_key(&node) || !matches!(graph.node(node).kind, NodeKind::Mismatch) {
            continue;
        }
        let values = graph.node(node).lanes.clone();
        let ty = b.func.value_ty(values[0], b.types);
        let count = b.iconst(types_i64, lanes);
        let arr = b.alloca(ty, Some(count));
        for (k, &v) in values.iter().enumerate() {
            let idx = b.iconst(types_i64, k as i64);
            let slot = b.gep(ty, arr, &[idx]);
            b.store(v, slot);
        }
        lowering.insert(node, MismatchLowering::Stack(arr));
    }
    // Out-arrays for nodes where a non-final lane escapes.
    let mut out_arrays: HashMap<NodeId, (ValueId, TypeId)> = HashMap::new();
    for (node, lanes_used) in &ext_lanes {
        let needs_array = lanes_used.iter().any(|&k| k + 1 < graph.lanes);
        if !needs_array {
            continue;
        }
        let node_ty = b.func.value_ty(graph.node(*node).lanes[0], b.types);
        let count = b.iconst(types_i64, lanes);
        let arr = b.alloca(node_ty, Some(count));
        out_arrays.insert(*node, (arr, node_ty));
    }
    b.br(loop_block);

    // ---- loop: induction variable and phis ----------------------------------
    b.switch_to(loop_block);
    let zero = b.iconst(types_i64, 0);
    let iv = b.phi(types_i64, &[(zero, block), (zero, loop_block)]);

    // Pre-create recurrence and reduction phis (phis must head the block).
    let mut node_phi: HashMap<NodeId, ValueId> = HashMap::new();
    for node in graph.node_ids() {
        match &graph.node(node).kind {
            NodeKind::Recurrence { init, .. } => {
                let init = *init;
                let ty = b.func.value_ty(init, b.types);
                let phi = b.phi(ty, &[(init, block), (init, loop_block)]);
                node_phi.insert(node, phi);
            }
            NodeKind::Reduction {
                opcode, ty, carry, ..
            } => {
                let (opcode, ty, carry) = (*opcode, *ty, *carry);
                let init = match carry {
                    Some(v) => v,
                    None => neutral_value(&mut b, opcode, ty)?,
                };
                let phi = b.phi(ty, &[(init, block), (init, loop_block)]);
                node_phi.insert(node, phi);
            }
            _ => {}
        }
    }

    // ---- loop body -----------------------------------------------------------
    let mut emitted: HashMap<NodeId, ValueId> = HashMap::new();
    let mut phi_patches: Vec<(ValueId, ValueId)> = Vec::new(); // (phi, loop value)
    for node in graph.emission_order() {
        let value = emit_node(
            &mut b,
            graph,
            node,
            iv,
            &lowering,
            &node_phi,
            &emitted,
            &mut phi_patches,
        )?;
        emitted.insert(node, value);
    }
    // Patch recurrence phis with their target's in-loop value; reductions
    // were patched during emission.
    for node in graph.node_ids() {
        if let NodeKind::Recurrence { target, .. } = graph.node(node).kind {
            let phi = node_phi[&node];
            let target_value = *emitted.get(&target)?;
            phi_patches.push((phi, target_value));
        }
    }

    // Out-array stores (ordered by node id for determinism).
    let mut out_list: Vec<(NodeId, (ValueId, TypeId))> =
        out_arrays.iter().map(|(&n, &a)| (n, a)).collect();
    out_list.sort_by_key(|(n, _)| *n);
    for (node, (arr, ty)) in &out_list {
        let value = *emitted.get(node)?;
        let slot = b.gep(*ty, *arr, &[iv]);
        b.store(value, slot);
    }

    // Latch.
    let one = b.iconst(types_i64, 1);
    let ivn = b.add(iv, one);
    let count = b.iconst(types_i64, lanes);
    let cmp = b.icmp(IntPredicate::Ult, ivn, count);
    b.cond_br(cmp, loop_block, exit_block);

    // Patch the iv phi and the other loop phis.
    patch_phi(b.func, iv, loop_block, ivn);
    for (phi, v) in phi_patches {
        patch_phi(b.func, phi, loop_block, v);
    }

    // ---- exit: extract escaped values, then the original tail ----------------
    b.switch_to(exit_block);
    let mut replacements: Vec<(ValueId, ValueId)> = Vec::new();
    for (node, lanes_used) in &ext_lanes {
        let node = *node;
        let node_data = graph.node(node);
        // Reduction: the escaped value is the accumulator's final value.
        if let NodeKind::Reduction { internal, .. } = &node_data.kind {
            let root_value = b.func.inst_result(internal[0]);
            replacements.push((root_value, emitted[&node]));
            continue;
        }
        for &k in lanes_used {
            let old = lane_value(graph, node, k)?;
            let new = if k + 1 == graph.lanes {
                emitted[&node] // final-iteration value flows out directly
            } else {
                let (arr, ty) = out_arrays[&node];
                let idx = b.iconst(types_i64, k as i64);
                let slot = b.gep(ty, arr, &[idx]);
                b.load(ty, slot)
            };
            replacements.push((old, new));
        }
    }
    for &i in &schedule.after {
        b.func.append_inst(exit_block, i);
    }
    for (old, new) in replacements {
        b.func.replace_all_uses(old, new);
    }

    // Successors' phis must see the exit block as their predecessor now.
    let term = func.terminator(exit_block)?;
    for succ in func.inst(term).successors() {
        let phis: Vec<InstId> = func.block(succ).insts.clone();
        for i in phis {
            if func.inst(i).opcode != Opcode::Phi {
                continue;
            }
            if let InstExtra::Phi { incoming } = &mut func.inst_mut(i).extra {
                for inb in incoming.iter_mut() {
                    if *inb == block {
                        *inb = exit_block;
                    }
                }
            }
        }
    }

    Some(RollOutcome {
        preheader: block,
        loop_block,
        exit_block,
        new_globals,
    })
}

/// The value a node's lane `k` had in the original code.
fn lane_value(graph: &AlignGraph, node: NodeId, k: usize) -> Option<ValueId> {
    graph.node(node).lanes.get(k).copied()
}

fn neutral_value(b: &mut Builder<'_>, opcode: Opcode, ty: TypeId) -> Option<ValueId> {
    use rolag_ir::NeutralElement::*;
    Some(match opcode.neutral_element()? {
        Zero => b.iconst(ty, 0),
        One => b.iconst(ty, 1),
        AllOnes => b.iconst(ty, -1),
        FZero => b.fconst(ty, 0.0),
        FOne => b.fconst(ty, 1.0),
    })
}

fn patch_phi(func: &mut Function, phi_value: ValueId, from_block: BlockId, new_value: ValueId) {
    let inst = func
        .value(phi_value)
        .as_inst()
        .expect("phi value is an instruction");
    let data = func.inst_mut(inst);
    let InstExtra::Phi { incoming } = &data.extra else {
        panic!("not a phi");
    };
    let arm = incoming
        .iter()
        .position(|&b| b == from_block)
        .expect("phi has loop arm");
    data.operands[arm] = new_value;
}

#[allow(clippy::too_many_arguments)]
fn emit_node(
    b: &mut Builder<'_>,
    graph: &AlignGraph,
    node: NodeId,
    iv: ValueId,
    lowering: &HashMap<NodeId, MismatchLowering>,
    node_phi: &HashMap<NodeId, ValueId>,
    emitted: &HashMap<NodeId, ValueId>,
    phi_patches: &mut Vec<(ValueId, ValueId)>,
) -> Option<ValueId> {
    let data = graph.node(node);
    match &data.kind {
        NodeKind::Identical => Some(data.lanes[0]),
        NodeKind::Sequence { start, step, ty } => {
            let (start, step, ty) = (*start, *step, *ty);
            let iv_t = cast_iv(b, iv, ty)?;
            let val = match (start, step) {
                (0, 1) => iv_t,
                (0, s) => {
                    let c = b.iconst(ty, s);
                    b.mul(iv_t, c)
                }
                (st, 1) => {
                    let c = b.iconst(ty, st);
                    b.add(iv_t, c)
                }
                (st, s) => {
                    let c = b.iconst(ty, s);
                    let m = b.mul(iv_t, c);
                    let c2 = b.iconst(ty, st);
                    b.add(m, c2)
                }
            };
            Some(val)
        }
        NodeKind::Mismatch => {
            let ty = b.func.value_ty(data.lanes[0], b.types);
            match lowering.get(&node)? {
                MismatchLowering::Const(gid) => {
                    let base = b.global(*gid);
                    let slot = b.gep(ty, base, &[iv]);
                    Some(b.load(ty, slot))
                }
                MismatchLowering::Stack(arr) => {
                    let arr = *arr;
                    let slot = b.gep(ty, arr, &[iv]);
                    Some(b.load(ty, slot))
                }
            }
        }
        NodeKind::Match { opcode } => {
            let opcode = *opcode;
            let lane0 = b.func.value(data.lanes[0]).as_inst()?;
            let proto = b.func.inst(lane0).clone();
            let operands: Vec<ValueId> = data
                .children
                .iter()
                .map(|c| emitted.get(c).copied())
                .collect::<Option<Vec<_>>>()?;
            let (_, v) = b.emit_raw(InstData {
                opcode,
                ty: proto.ty,
                operands,
                block: b.current(),
                extra: proto.extra,
            });
            Some(v)
        }
        NodeKind::GepNeutral { elem_ty } => {
            let elem_ty = *elem_ty;
            let base = *emitted.get(&data.children[0])?;
            let idx = *emitted.get(&data.children[1])?;
            Some(b.gep(elem_ty, base, &[idx]))
        }
        NodeKind::BinOpNeutral { opcode, .. } => {
            let opcode = *opcode;
            let lhs = *emitted.get(&data.children[0])?;
            let rhs = *emitted.get(&data.children[1])?;
            Some(b.binop(opcode, lhs, rhs))
        }
        NodeKind::Recurrence { .. } => Some(node_phi[&node]),
        NodeKind::Reduction { opcode, .. } => {
            let opcode = *opcode;
            let acc = node_phi[&node];
            let leaf = *emitted.get(&data.children[0])?;
            let new = b.binop(opcode, acc, leaf);
            phi_patches.push((acc, new));
            Some(new)
        }
    }
}

/// Brings the `i64` induction variable into the sequence's integer type.
fn cast_iv(b: &mut Builder<'_>, iv: ValueId, ty: TypeId) -> Option<ValueId> {
    let width = b.types.int_width(ty)?;
    match width.cmp(&64) {
        std::cmp::Ordering::Equal => Some(iv),
        std::cmp::Ordering::Less => Some(b.trunc(iv, ty)),
        std::cmp::Ordering::Greater => Some(b.sext(iv, ty)),
    }
}
