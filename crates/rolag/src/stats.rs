//! Pass statistics, including the node-kind breakdown of profitable
//! alignment graphs (Figs. 16 and 19 in the paper).

use std::fmt;
use std::ops::AddAssign;

/// Counters for the kinds of alignment-graph nodes (profitable graphs only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeKindCounts {
    /// Exactly matching instruction groups.
    pub matching: u64,
    /// Identical-value groups (loop invariants).
    pub identical: u64,
    /// Mismatching groups handled through arrays.
    pub mismatching: u64,
    /// Monotonic integer sequences (§IV-C1).
    pub sequence: u64,
    /// Neutral pointer operations (§IV-C2).
    pub gep_neutral: u64,
    /// Binary operations padded with neutral elements (§IV-C3).
    pub binop_neutral: u64,
    /// Recurrences from chained dependences (§IV-C4).
    pub recurrence: u64,
    /// Reduction trees (§IV-C5).
    pub reduction: u64,
}

impl NodeKindCounts {
    /// Total nodes counted.
    pub fn total(&self) -> u64 {
        self.matching
            + self.identical
            + self.mismatching
            + self.sequence
            + self.gep_neutral
            + self.binop_neutral
            + self.recurrence
            + self.reduction
    }

    /// `(label, count)` rows in the order the paper's figures use.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("matching", self.matching),
            ("identical", self.identical),
            ("mismatching", self.mismatching),
            ("sequence", self.sequence),
            ("gep-neutral", self.gep_neutral),
            ("binop-neutral", self.binop_neutral),
            ("recurrence", self.recurrence),
            ("reduction", self.reduction),
        ]
    }
}

impl AddAssign for NodeKindCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.matching += rhs.matching;
        self.identical += rhs.identical;
        self.mismatching += rhs.mismatching;
        self.sequence += rhs.sequence;
        self.gep_neutral += rhs.gep_neutral;
        self.binop_neutral += rhs.binop_neutral;
        self.recurrence += rhs.recurrence;
        self.reduction += rhs.reduction;
    }
}

/// Aggregate statistics of one pass run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RolagStats {
    /// Alignment graphs attempted.
    pub attempted: u64,
    /// Graphs rejected by the scheduling analysis.
    pub rejected_schedule: u64,
    /// Graphs generated but rejected by the profitability analysis.
    pub rejected_profit: u64,
    /// Loops committed (successful rolls).
    pub rolled: u64,
    /// Node-kind breakdown over committed (profitable) graphs.
    pub nodes: NodeKindCounts,
    /// Estimated text size before the pass.
    pub size_before: u64,
    /// Estimated text size after the pass.
    pub size_after: u64,
}

impl RolagStats {
    /// Percentage reduction of the estimated text size.
    pub fn reduction_percent(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        100.0 * (self.size_before as f64 - self.size_after as f64) / self.size_before as f64
    }
}

impl AddAssign for RolagStats {
    fn add_assign(&mut self, rhs: Self) {
        self.attempted += rhs.attempted;
        self.rejected_schedule += rhs.rejected_schedule;
        self.rejected_profit += rhs.rejected_profit;
        self.rolled += rhs.rolled;
        self.nodes += rhs.nodes;
        self.size_before += rhs.size_before;
        self.size_after += rhs.size_after;
    }
}

impl fmt::Display for RolagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rolled {} / {} attempts ({} schedule-rejected, {} unprofitable), size {} -> {} ({:+.2}%)",
            self.rolled,
            self.attempted,
            self.rejected_schedule,
            self.rejected_profit,
            self.size_before,
            self.size_after,
            -self.reduction_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rows() {
        let c = NodeKindCounts {
            matching: 3,
            sequence: 2,
            ..Default::default()
        };
        assert_eq!(c.total(), 5);
        assert_eq!(c.rows()[0], ("matching", 3));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = RolagStats {
            rolled: 1,
            size_before: 100,
            size_after: 80,
            ..Default::default()
        };
        let b = RolagStats {
            rolled: 2,
            size_before: 50,
            size_after: 50,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.rolled, 3);
        assert_eq!(a.size_before, 150);
    }

    #[test]
    fn reduction_percent() {
        let s = RolagStats {
            size_before: 200,
            size_after: 150,
            ..Default::default()
        };
        assert!((s.reduction_percent() - 25.0).abs() < 1e-9);
        let z = RolagStats::default();
        assert_eq!(z.reduction_percent(), 0.0);
    }
}
