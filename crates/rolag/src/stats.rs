//! Pass statistics, including the node-kind breakdown of profitable
//! alignment graphs (Figs. 16 and 19 in the paper).

use std::fmt;
use std::ops::AddAssign;

/// Counters for the kinds of alignment-graph nodes (profitable graphs only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeKindCounts {
    /// Exactly matching instruction groups.
    pub matching: u64,
    /// Identical-value groups (loop invariants).
    pub identical: u64,
    /// Mismatching groups handled through arrays.
    pub mismatching: u64,
    /// Monotonic integer sequences (§IV-C1).
    pub sequence: u64,
    /// Neutral pointer operations (§IV-C2).
    pub gep_neutral: u64,
    /// Binary operations padded with neutral elements (§IV-C3).
    pub binop_neutral: u64,
    /// Recurrences from chained dependences (§IV-C4).
    pub recurrence: u64,
    /// Reduction trees (§IV-C5).
    pub reduction: u64,
}

impl NodeKindCounts {
    /// Total nodes counted.
    pub fn total(&self) -> u64 {
        self.matching
            + self.identical
            + self.mismatching
            + self.sequence
            + self.gep_neutral
            + self.binop_neutral
            + self.recurrence
            + self.reduction
    }

    /// `(label, count)` rows in the order the paper's figures use.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("matching", self.matching),
            ("identical", self.identical),
            ("mismatching", self.mismatching),
            ("sequence", self.sequence),
            ("gep-neutral", self.gep_neutral),
            ("binop-neutral", self.binop_neutral),
            ("recurrence", self.recurrence),
            ("reduction", self.reduction),
        ]
    }
}

impl AddAssign for NodeKindCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.matching += rhs.matching;
        self.identical += rhs.identical;
        self.mismatching += rhs.mismatching;
        self.sequence += rhs.sequence;
        self.gep_neutral += rhs.gep_neutral;
        self.binop_neutral += rhs.binop_neutral;
        self.recurrence += rhs.recurrence;
        self.reduction += rhs.reduction;
    }
}

/// Wall-clock nanoseconds spent in each stage of the pass (Fig. 5's
/// pipeline), accumulated across every candidate attempt.
///
/// Timings are observability data, not results: they are carried inside
/// [`RolagStats`] but deliberately excluded from its [`PartialEq`], so a
/// parallel run with identical outcomes compares equal to a serial one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Seed collection (candidate discovery per block).
    pub seeds_ns: u64,
    /// Alignment-graph construction.
    pub align_ns: u64,
    /// Scheduling analysis.
    pub schedule_ns: u64,
    /// Speculative loop code generation.
    pub codegen_ns: u64,
    /// Per-rewrite translation validation (`rolag-tv`), when enabled.
    pub tv_ns: u64,
    /// Cost-model size lookups and delta sums (profitability decisions).
    /// Every `BlockSizeCache` / size-sketch query the engine issues is
    /// inside this window — sweep-baseline walks included — so the stage
    /// breakdown attributes *all* size-model time here.
    pub cost_ns: u64,
    /// Post-roll simplify + DCE cleanup.
    pub cleanup_ns: u64,
    /// Incremental change tracking: structural block diffs, affected-set
    /// and dirty-closure computation, and cache invalidation after a
    /// commit. Zero on the full-rescan reference engine.
    pub track_ns: u64,
}

impl StageTimings {
    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.seeds_ns
            + self.align_ns
            + self.schedule_ns
            + self.codegen_ns
            + self.tv_ns
            + self.cost_ns
            + self.cleanup_ns
            + self.track_ns
    }

    /// `(stage, nanoseconds)` rows in pipeline order, for CSV dumps.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("seeds", self.seeds_ns),
            ("align", self.align_ns),
            ("schedule", self.schedule_ns),
            ("codegen", self.codegen_ns),
            ("tv", self.tv_ns),
            ("cost", self.cost_ns),
            ("cleanup", self.cleanup_ns),
            ("track", self.track_ns),
        ]
    }
}

impl AddAssign for StageTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.seeds_ns += rhs.seeds_ns;
        self.align_ns += rhs.align_ns;
        self.schedule_ns += rhs.schedule_ns;
        self.codegen_ns += rhs.codegen_ns;
        self.tv_ns += rhs.tv_ns;
        self.cost_ns += rhs.cost_ns;
        self.cleanup_ns += rhs.cleanup_ns;
        self.track_ns += rhs.track_ns;
    }
}

/// Cache-effectiveness counters of the incremental fixpoint engine.
///
/// Like [`StageTimings`], these are observability data, not results: the
/// full-rescan reference engine never touches the caches, so the counters
/// are carried inside [`RolagStats`] but excluded from its [`PartialEq`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointCacheStats {
    /// Blocks whose candidate list was served from the per-block cache.
    pub cand_blocks_reused: u64,
    /// Blocks whose candidate list was (re)collected with `collect_in_block`.
    pub cand_blocks_scanned: u64,
    /// Block size estimates served from the per-block size cache.
    pub size_blocks_reused: u64,
    /// Block size estimates computed fresh.
    pub size_blocks_computed: u64,
    /// Candidate attempts skipped by replaying a memoized reject verdict.
    pub memo_hits: u64,
    /// Candidate attempts actually executed (memo misses, including the
    /// attempts that end up committing).
    pub memo_misses: u64,
}

impl FixpointCacheStats {
    /// Fraction of per-block candidate lookups served from cache.
    pub fn candidate_hit_rate(&self) -> f64 {
        ratio(self.cand_blocks_reused, self.cand_blocks_scanned)
    }

    /// Fraction of block-size lookups served from cache.
    pub fn size_hit_rate(&self) -> f64 {
        ratio(self.size_blocks_reused, self.size_blocks_computed)
    }

    /// Fraction of candidate attempts skipped via verdict memoization.
    pub fn memo_hit_rate(&self) -> f64 {
        ratio(self.memo_hits, self.memo_misses)
    }

    /// `(counter, value)` rows for CSV dumps.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cand_blocks_reused", self.cand_blocks_reused),
            ("cand_blocks_scanned", self.cand_blocks_scanned),
            ("size_blocks_reused", self.size_blocks_reused),
            ("size_blocks_computed", self.size_blocks_computed),
            ("memo_hits", self.memo_hits),
            ("memo_misses", self.memo_misses),
        ]
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

impl AddAssign for FixpointCacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cand_blocks_reused += rhs.cand_blocks_reused;
        self.cand_blocks_scanned += rhs.cand_blocks_scanned;
        self.size_blocks_reused += rhs.size_blocks_reused;
        self.size_blocks_computed += rhs.size_blocks_computed;
        self.memo_hits += rhs.memo_hits;
        self.memo_misses += rhs.memo_misses;
    }
}

/// Counters of the beam-search engine (`rolag::search`).
///
/// Like [`StageTimings`] and [`FixpointCacheStats`], these are
/// observability data, not results: the greedy engine never explores
/// alternatives, and a width-1 beam delegates to greedy wholesale, so the
/// counters are carried inside [`RolagStats`] but excluded from its
/// [`PartialEq`] (beam:1 must be stats-identical to greedy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates (base groupings plus variants) speculated on the journal.
    pub explored: u64,
    /// Profitable speculations dropped because the beam shortlist was full.
    pub pruned: u64,
    /// Speculations the translation validator refused during search; each
    /// is rolled back and, in the audit configuration, cross-checked
    /// dynamically (`tests/tv_false_rejects.rs`).
    pub tv_rejected: u64,
    /// Functions where the beam's end state measured strictly smaller than
    /// the greedy trial's and was adopted in its place.
    pub adopted: u64,
}

impl SearchStats {
    /// `(counter, value)` rows for CSV/JSON dumps.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("explored", self.explored),
            ("pruned", self.pruned),
            ("tv_rejected", self.tv_rejected),
            ("adopted", self.adopted),
        ]
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.explored += rhs.explored;
        self.pruned += rhs.pruned;
        self.tv_rejected += rhs.tv_rejected;
        self.adopted += rhs.adopted;
    }
}

/// Aggregate statistics of one pass run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RolagStats {
    /// Alignment graphs attempted.
    pub attempted: u64,
    /// Candidates rejected by the lane-count gate before any graph was
    /// built (fewer lanes than `RolagOptions::min_lanes`).
    pub rejected_lanes: u64,
    /// Graphs rejected by the scheduling analysis.
    pub rejected_schedule: u64,
    /// Graphs generated but rejected by the profitability analysis.
    pub rejected_profit: u64,
    /// Generated rewrites proven correct by the translation validator
    /// (only counted when `RolagOptions::validate` is on).
    pub tv_validated: u64,
    /// Generated rewrites the translation validator refused to prove;
    /// these are rejected before the cost model sees them.
    pub tv_rejected: u64,
    /// Loops committed (successful rolls).
    pub rolled: u64,
    /// Node-kind breakdown over committed (profitable) graphs.
    pub nodes: NodeKindCounts,
    /// Estimated text size before the pass.
    pub size_before: u64,
    /// Estimated text size after the pass.
    pub size_after: u64,
    /// Functions skipped because the engine panicked on them; the original
    /// function was kept verbatim (see `roll_function_rescued`).
    pub rescued: u64,
    /// Per-stage wall-clock breakdown (excluded from equality).
    pub timings: StageTimings,
    /// Incremental-engine cache counters (excluded from equality).
    pub cache: FixpointCacheStats,
    /// Beam-search counters (excluded from equality; all-zero under the
    /// greedy engine and under width-1 beams, which delegate to greedy).
    pub search: SearchStats,
}

impl PartialEq for RolagStats {
    /// Compares pass *outcomes* only; wall-clock [`StageTimings`] are
    /// nondeterministic and intentionally ignored.
    fn eq(&self, other: &Self) -> bool {
        self.attempted == other.attempted
            && self.rejected_lanes == other.rejected_lanes
            && self.rejected_schedule == other.rejected_schedule
            && self.rejected_profit == other.rejected_profit
            && self.tv_validated == other.tv_validated
            && self.tv_rejected == other.tv_rejected
            && self.rolled == other.rolled
            && self.nodes == other.nodes
            && self.size_before == other.size_before
            && self.size_after == other.size_after
            && self.rescued == other.rescued
    }
}

impl Eq for RolagStats {}

impl RolagStats {
    /// Percentage reduction of the estimated text size.
    pub fn reduction_percent(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        100.0 * (self.size_before as f64 - self.size_after as f64) / self.size_before as f64
    }
}

impl AddAssign for RolagStats {
    fn add_assign(&mut self, rhs: Self) {
        self.attempted += rhs.attempted;
        self.rejected_lanes += rhs.rejected_lanes;
        self.rejected_schedule += rhs.rejected_schedule;
        self.rejected_profit += rhs.rejected_profit;
        self.tv_validated += rhs.tv_validated;
        self.tv_rejected += rhs.tv_rejected;
        self.rolled += rhs.rolled;
        self.nodes += rhs.nodes;
        self.size_before += rhs.size_before;
        self.size_after += rhs.size_after;
        self.rescued += rhs.rescued;
        self.timings += rhs.timings;
        self.cache += rhs.cache;
        self.search += rhs.search;
    }
}

impl fmt::Display for RolagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rolled {} / {} attempts ({} lane-rejected, {} schedule-rejected, {} unprofitable), size {} -> {} ({:+.2}%)",
            self.rolled,
            self.attempted,
            self.rejected_lanes,
            self.rejected_schedule,
            self.rejected_profit,
            self.size_before,
            self.size_after,
            -self.reduction_percent()
        )?;
        if self.tv_validated > 0 || self.tv_rejected > 0 {
            write!(
                f,
                ", tv {} validated / {} rejected",
                self.tv_validated, self.tv_rejected
            )?;
        }
        if self.rescued > 0 {
            write!(f, ", {} function(s) rescued after a panic", self.rescued)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rows() {
        let c = NodeKindCounts {
            matching: 3,
            sequence: 2,
            ..Default::default()
        };
        assert_eq!(c.total(), 5);
        assert_eq!(c.rows()[0], ("matching", 3));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = RolagStats {
            rolled: 1,
            size_before: 100,
            size_after: 80,
            ..Default::default()
        };
        let b = RolagStats {
            rolled: 2,
            size_before: 50,
            size_after: 50,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.rolled, 3);
        assert_eq!(a.size_before, 150);
    }

    #[test]
    fn equality_ignores_timings() {
        let mut a = RolagStats {
            rolled: 2,
            size_before: 10,
            size_after: 8,
            ..Default::default()
        };
        let mut b = a;
        a.timings.seeds_ns = 1_000;
        b.timings.codegen_ns = 999_999;
        assert_eq!(a, b, "wall-clock differences must not break equality");
        b.rolled = 3;
        assert_ne!(a, b, "outcome differences must break equality");
    }

    #[test]
    fn timing_rows_cover_all_stages() {
        let t = StageTimings {
            seeds_ns: 1,
            align_ns: 2,
            schedule_ns: 3,
            codegen_ns: 4,
            tv_ns: 7,
            cost_ns: 5,
            cleanup_ns: 6,
            track_ns: 8,
        };
        assert_eq!(t.total_ns(), 36);
        let rows = t.rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.iter().map(|&(_, v)| v).sum::<u64>(), t.total_ns());
    }

    #[test]
    fn equality_ignores_cache_counters() {
        let a = RolagStats {
            rolled: 2,
            ..Default::default()
        };
        let mut b = a;
        b.cache.memo_hits = 41;
        b.cache.cand_blocks_reused = 7;
        assert_eq!(a, b, "cache counters must not break equality");
    }

    #[test]
    fn equality_ignores_search_counters() {
        // beam:1 delegates to the greedy engine and must compare
        // stats-equal to it, so search counters are observability only.
        let a = RolagStats {
            rolled: 2,
            ..Default::default()
        };
        let mut b = a;
        b.search.explored = 12;
        b.search.tv_rejected = 3;
        b.search.adopted = 1;
        assert_eq!(a, b, "search counters must not break equality");
    }

    #[test]
    fn search_counters_accumulate_and_row() {
        let mut a = SearchStats {
            explored: 2,
            pruned: 1,
            ..Default::default()
        };
        a += SearchStats {
            explored: 3,
            tv_rejected: 4,
            adopted: 1,
            ..Default::default()
        };
        assert_eq!(a.explored, 5);
        assert_eq!(a.tv_rejected, 4);
        assert_eq!(a.rows().len(), 4);
        assert_eq!(a.rows()[0], ("explored", 5));
    }

    #[test]
    fn cache_rates_and_rows() {
        let c = FixpointCacheStats {
            memo_hits: 3,
            memo_misses: 1,
            ..Default::default()
        };
        assert!((c.memo_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(c.candidate_hit_rate(), 0.0);
        assert_eq!(c.rows().len(), 6);
    }

    #[test]
    fn reduction_percent() {
        let s = RolagStats {
            size_before: 200,
            size_after: 150,
            ..Default::default()
        };
        assert!((s.reduction_percent() - 25.0).abs() < 1e-9);
        let z = RolagStats::default();
        assert_eq!(z.reduction_percent(), 0.0);
    }
}
