//! The RoLAG pass driver (Fig. 5).
//!
//! For every basic block: collect seed groups, build an alignment graph,
//! run the scheduling analysis, speculatively generate the rolled loop, and
//! keep whichever version the code-size cost model says is smaller. Commits
//! strictly decrease the size estimate, so the pass terminates.

use std::time::Instant;

use rolag_ir::{Effects, FuncId, Function, Module};
use rolag_transforms::{cleanup_in_place, effects_table};

use crate::align::GraphBuilder;
use crate::codegen;
use crate::options::RolagOptions;
use crate::schedule;
use crate::seeds::{collect_candidates, Candidate};
use crate::stats::RolagStats;

/// Runs `f`, adding its wall-clock to `slot`.
fn timed<R>(slot: &mut u64, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    *slot += start.elapsed().as_nanos() as u64;
    result
}

/// Runs RoLAG on one function. Returns per-function statistics.
///
/// Convenience wrapper around [`roll_function_with`] that snapshots the
/// module's call-effects table itself. When rolling many functions, compute
/// the table once with [`rolag_transforms::effects_table`] and call
/// [`roll_function_with`] directly — the table is loop-invariant (rolling
/// never changes a function's effects annotation).
pub fn roll_function(module: &mut Module, id: FuncId, opts: &RolagOptions) -> RolagStats {
    let effects = effects_table(module);
    roll_function_with(module, id, opts, &effects)
}

/// Runs RoLAG on one function using a pre-computed call-effects table.
pub fn roll_function_with(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    let mut stats = RolagStats::default();
    if module.func(id).is_declaration {
        return stats;
    }
    let mut work = module.func(id).clone();
    stats.size_before = timed(&mut stats.timings.cost_ns, || {
        opts.target.function_estimate(module, &work) as u64
    });

    loop {
        let candidates = timed(&mut stats.timings.seeds_ns, || {
            collect_candidates(module, &work, opts)
        });
        // `work` is invariant within a sweep, so the profitability baseline
        // is too: compute it once per sweep, not once per candidate.
        let old_size = timed(&mut stats.timings.cost_ns, || {
            opts.target.function_estimate(module, &work) as u64
        });
        let mut committed = false;
        for cand in candidates {
            stats.attempted += 1;
            match try_candidate(module, &work, &cand, opts, effects, &mut stats, old_size) {
                Attempt::Committed { func, kinds } => {
                    work = func;
                    stats.rolled += 1;
                    stats.nodes += kinds;
                    committed = true;
                    break;
                }
                Attempt::LanesRejected => stats.rejected_lanes += 1,
                Attempt::ScheduleRejected => stats.rejected_schedule += 1,
                Attempt::Unprofitable => stats.rejected_profit += 1,
            }
        }
        if !committed {
            break;
        }
    }

    stats.size_after = timed(&mut stats.timings.cost_ns, || {
        opts.target.function_estimate(module, &work) as u64
    });
    module.replace_func(id, work);
    stats
}

#[allow(clippy::large_enum_variant)] // transient, one per candidate
enum Attempt {
    Committed {
        func: Function,
        kinds: crate::stats::NodeKindCounts,
    },
    LanesRejected,
    ScheduleRejected,
    Unprofitable,
}

fn try_candidate(
    module: &mut Module,
    work: &Function,
    cand: &Candidate,
    opts: &RolagOptions,
    effects: &[Effects],
    stats: &mut RolagStats,
    old_size: u64,
) -> Attempt {
    let block = cand.block();

    // Lane gate first: it needs no IR at all, so reject before paying for
    // the function clone.
    let lanes = cand.lanes();
    if lanes < opts.min_lanes {
        return Attempt::LanesRejected;
    }
    let mut attempt = work.clone();

    // Build the alignment graph (interning synthetic constants into the
    // attempt as needed).
    let graph = {
        let align_start = Instant::now();
        let mut builder = GraphBuilder::new(module, &mut attempt, block, opts, lanes);
        let built = match cand {
            Candidate::Seeds { groups, .. } => {
                groups.iter().all(|g| builder.build_seed_root(g).is_some())
            }
            Candidate::Reduction {
                opcode,
                internal,
                leaves,
                carry,
                ty,
                ..
            } => builder
                .build_reduction_root(*opcode, internal.clone(), leaves, *carry, *ty)
                .is_some(),
        };
        let graph = if built { Some(builder.finish()) } else { None };
        stats.timings.align_ns += align_start.elapsed().as_nanos() as u64;
        match graph {
            Some(g) => g,
            None => return Attempt::ScheduleRejected,
        }
    };

    let sched = timed(&mut stats.timings.schedule_ns, || {
        schedule::analyze(module, &attempt, block, &graph)
    });
    let Some(sched) = sched else {
        return Attempt::ScheduleRejected;
    };

    let before_globals = module.num_globals();
    let outcome = timed(&mut stats.timings.codegen_ns, || {
        codegen::generate(module, &mut attempt, block, &graph, &sched)
    });
    let Some(outcome) = outcome else {
        // Roll back any globals created before the generator bailed.
        rollback_globals(module, before_globals);
        return Attempt::ScheduleRejected;
    };

    if opts.cleanup {
        timed(&mut stats.timings.cleanup_ns, || {
            cleanup_in_place(&mut attempt, &mut module.types, effects)
        });
    }

    // Profitability (§IV-F): text estimate plus the constant data the roll
    // added to `.rodata`. The baseline `old_size` comes in from the sweep.
    let profitable = timed(&mut stats.timings.cost_ns, || {
        let rodata: u64 = outcome
            .new_globals
            .iter()
            .map(|&g| module.global_size(g))
            .sum();
        let new_size = opts.target.function_estimate(module, &attempt) as u64 + rodata;
        new_size < old_size
    });

    if profitable {
        Attempt::Committed {
            func: attempt,
            kinds: graph.count_kinds(),
        }
    } else {
        rollback_globals(module, before_globals);
        Attempt::Unprofitable
    }
}

fn rollback_globals(module: &mut Module, keep: usize) {
    while module.num_globals() > keep {
        let last = rolag_ir::GlobalId::from_index(module.num_globals() - 1);
        module.pop_global(last);
    }
}

/// Runs RoLAG on every function of the module, returning aggregate
/// statistics. The call-effects table is computed once and shared across
/// all functions.
pub fn roll_module(module: &mut Module, opts: &RolagOptions) -> RolagStats {
    let effects = effects_table(module);
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut total = RolagStats::default();
    for id in ids {
        total += roll_function_with(module, id, opts, &effects);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::{equivalent, IValue, Interpreter};
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    /// Rolls, verifies, and checks behavioural equivalence on the given
    /// entry points/arguments. Returns (module, stats).
    fn roll_and_check(text: &str, runs: &[(&str, Vec<IValue>)]) -> (Module, RolagStats) {
        let orig = parse_module(text).unwrap();
        let mut rolled = orig.clone();
        let opts = RolagOptions::default();
        let stats = roll_module(&mut rolled, &opts);
        verify_module(&rolled).expect("rolled module verifies");
        for (entry, args) in runs {
            let mut ia = Interpreter::new(&orig);
            let mut ib = Interpreter::new(&rolled);
            let oa = ia.run(entry, args).unwrap();
            let ob = ib.run(entry, args).unwrap();
            assert!(
                equivalent(&oa, &ob),
                "behaviour changed for {entry}: {oa:?} vs {ob:?}"
            );
        }
        (rolled, stats)
    }

    #[test]
    fn rolls_long_store_sequence() {
        // 8 stores a[i] = i*7: clearly profitable.
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        let (m, stats) = roll_and_check(&text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 1);
        assert!(stats.size_after < stats.size_before);
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.num_blocks(), 3, "pre/loop/exit");
        // A committed roll exercises every stage, so every timer ticks.
        assert!(stats.timings.seeds_ns > 0);
        assert!(stats.timings.align_ns > 0);
        assert!(stats.timings.schedule_ns > 0);
        assert!(stats.timings.codegen_ns > 0);
        assert!(stats.timings.cost_ns > 0);
        assert!(stats.timings.cleanup_ns > 0);
    }

    #[test]
    fn short_sequences_are_unprofitable() {
        let text = r#"
module "t"
global @a : [2 x i32] = zero
func @f() -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 7, %g1
  ret
}
"#;
        let (_, stats) = roll_and_check(text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 0);
        assert!(stats.rejected_profit >= 1);
    }
}
