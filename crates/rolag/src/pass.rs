//! The RoLAG pass driver (Fig. 5).
//!
//! For every basic block: collect seed groups, build an alignment graph,
//! run the scheduling analysis, speculatively generate the rolled loop, and
//! keep whichever version the code-size cost model says is smaller. Commits
//! strictly decrease the size estimate, so the pass terminates.
//!
//! The fixpoint runs on an **incremental engine**: after a commit, only the
//! dirty blocks (see [`crate::incremental`]) are re-scanned for candidates,
//! profitability works on per-block size deltas instead of whole-function
//! walks, and reject verdicts are memoized so a failed candidate is not
//! rebuilt on every sweep. The engine is byte-identical and
//! outcome-stats-identical to the retained full-rescan reference
//! ([`roll_function_full_rescan`]), enforced by `tests/incremental_fixpoint.rs`.

use std::time::Instant;

use rolag_ir::{BlockId, Effects, FuncId, Function, GlobalId, Module};
use rolag_transforms::{cleanup_in_place, effects_table};

use crate::align::{build_candidate_graph, AlignGraph};
use crate::codegen::{self, RollOutcome};
use crate::incremental::{
    dirty_closure, measure_affected_blocks, size_affected_blocks, speculated_changed_blocks,
    FunctionCache, MemoEntry, MemoVerdict,
};
use crate::options::RolagOptions;
use crate::schedule::{self, Schedule};
use crate::seeds::{collect_block_candidates, collect_candidates, Candidate};
use crate::stats::RolagStats;

/// Runs `f`, adding its wall-clock to `slot`.
pub(crate) fn timed<R>(slot: &mut u64, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    *slot += start.elapsed().as_nanos() as u64;
    result
}

/// The sweep-boundary function size under the engine's cost regime:
/// the incremental caches in release, cross-checked against a fresh
/// full computation in debug builds — every debug-mode test corpus
/// thereby audits the incremental engine's bookkeeping for free.
fn cached_function_size(
    module: &Module,
    work: &Function,
    opts: &RolagOptions,
    cache: &mut FunctionCache,
) -> u64 {
    if opts.measured_cost {
        let size = cache.sketch.measure(module, work) as u64;
        debug_assert_eq!(
            size,
            rolag_lower::measure_function(module, work) as u64,
            "incremental size sketch diverged from a full lowering"
        );
        size
    } else {
        let size = cache.sizes.function_estimate(opts.target, module, work) as u64;
        debug_assert_eq!(
            size,
            opts.target.function_estimate(module, work) as u64,
            "block size cache diverged from a fresh estimate"
        );
        size
    }
}

/// The full-rescan reference engine's function size: always computed from
/// scratch.
pub(crate) fn fresh_function_size(module: &Module, work: &Function, opts: &RolagOptions) -> u64 {
    if opts.measured_cost {
        rolag_lower::measure_function(module, work) as u64
    } else {
        opts.target.function_estimate(module, work) as u64
    }
}

/// Runs RoLAG on one function. Returns per-function statistics.
///
/// Convenience wrapper around [`roll_function_with`] that snapshots the
/// module's call-effects table itself. When rolling many functions, compute
/// the table once with [`rolag_transforms::effects_table`] and call
/// [`roll_function_with`] directly — the table is loop-invariant (rolling
/// never changes a function's effects annotation).
pub fn roll_function(module: &mut Module, id: FuncId, opts: &RolagOptions) -> RolagStats {
    let effects = effects_table(module);
    roll_function_with(module, id, opts, &effects)
}

/// Runs RoLAG on one function using a pre-computed call-effects table.
///
/// This is the incremental engine: identical decisions and output to
/// [`roll_function_full_rescan`], with per-block caches carrying candidate
/// lists, size estimates, and reject verdicts across fixpoint sweeps.
pub fn roll_function_with(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    // Beam search (width >= 2) runs its own engine; width-1 beams fall
    // through to the greedy body below, which makes `beam:1` byte- and
    // stats-identical to greedy by construction (tests/search_conformance).
    if opts.search.is_beam() {
        return crate::search::search_function_with(module, id, opts, effects);
    }
    let mut stats = RolagStats::default();
    if module.func(id).is_declaration {
        return stats;
    }
    let mut work = module.func(id).clone();
    // At most one more clone per *function* (not per candidate): candidates
    // speculate on `work` in place under a snapshot journal, and the shadow
    // stays byte-identical to the pre-candidate state — the validator's
    // reference and the old side of change tracking and size deltas. A
    // commit syncs it from the journal's log in O(touched). Materialized
    // lazily by the first candidate that reaches codegen, so functions
    // whose candidates never pass the cheap gates stay clone-free — and the
    // post-commit sync is deferred the same way: the commit stashes its log
    // in `pending_log`, and the next codegen-reaching candidate replays it
    // before opening its window. A function whose sweep ends after a commit
    // never pays for the sync at all.
    let mut shadow: Option<Function> = None;
    let mut pending_log: Option<rolag_ir::SpeculationLog> = None;
    let mut cache = FunctionCache::default();

    let cost_start = Instant::now();
    stats.size_before = cached_function_size(module, &work, opts, &mut cache);
    stats.timings.cost_ns += cost_start.elapsed().as_nanos() as u64;
    let mut old_size = stats.size_before;

    loop {
        // Assemble the sweep's candidates: cached per-block lists for clean
        // blocks, fresh collection for dirty or new ones, concatenated in
        // block order — exactly the list `collect_candidates` would build.
        let seeds_start = Instant::now();
        let mut candidates: Vec<Candidate> = Vec::new();
        for b in work.block_ids() {
            if let Some(list) = cache.cands.get(&b) {
                stats.cache.cand_blocks_reused += 1;
                candidates.extend(list.iter().cloned());
            } else {
                stats.cache.cand_blocks_scanned += 1;
                let list = collect_block_candidates(module, &work, b, opts);
                candidates.extend(list.iter().cloned());
                cache.cands.insert(b, list);
            }
        }
        stats.timings.seeds_ns += seeds_start.elapsed().as_nanos() as u64;

        let mut committed = false;
        for cand in candidates {
            stats.attempted += 1;
            // Replay a memoized reject without rebuilding the attempt. The
            // first (executed) attempt already interned its constants and
            // rolled back its globals, so skipping the re-run leaves the
            // module exactly as the reference engine would.
            if let Some(entry) = cache.memo.get(&cand) {
                stats.cache.memo_hits += 1;
                match entry.verdict {
                    MemoVerdict::Schedule => stats.rejected_schedule += 1,
                    MemoVerdict::Unprofitable => {
                        stats.rejected_profit += 1;
                        // The executed attempt validated before the cost
                        // model rejected it; the reference engine re-runs
                        // (and re-validates) it every sweep.
                        if opts.validate {
                            stats.tv_validated += 1;
                        }
                    }
                    MemoVerdict::Validator => stats.tv_rejected += 1,
                }
                continue;
            }
            stats.cache.memo_misses += 1;
            let block = cand.block();
            match try_candidate_incremental(
                module,
                &mut work,
                &mut shadow,
                &mut pending_log,
                &cand,
                opts,
                effects,
                &mut stats,
                old_size,
                &mut cache,
            ) {
                IncrAttempt::Committed {
                    log,
                    kinds,
                    changed,
                    sketch,
                } => {
                    // `work` already holds the committed state; the shadow
                    // still holds the pre-candidate state until the stashed
                    // log is replayed onto it lazily, which is exactly the
                    // old/new pair the dirty closure wants.
                    let shadow = shadow
                        .as_mut()
                        .expect("a committed attempt materialized the shadow");
                    let track_start = Instant::now();
                    let dirty = dirty_closure(shadow, &work, &changed);
                    let sketch_adopted = sketch.is_some();
                    if let Some(s) = sketch {
                        // The attempt's trial sketch is exact for the
                        // committed function; adopt it instead of
                        // re-selecting the changed blocks next sweep. Its
                        // clean-block summaries are Arc-shared with the
                        // sweep sketch, so the carry copies pointers, not
                        // fragment vectors.
                        cache.sketch = s;
                        #[cfg(debug_assertions)]
                        {
                            // Counters are saved around the audit so debug
                            // and release report identical cache stats.
                            let (hits, misses) = (cache.sketch.hits, cache.sketch.misses);
                            let carried = cache.sketch.measure(module, &work);
                            debug_assert_eq!(
                                carried,
                                rolag_lower::measure_function(module, &work),
                                "sketch carried across a commit diverged from a full lowering"
                            );
                            cache.sketch.hits = hits;
                            cache.sketch.misses = misses;
                        }
                    }
                    cache.invalidate(&dirty, work.revision(), sketch_adopted);
                    pending_log = Some(log);
                    stats.timings.track_ns += track_start.elapsed().as_nanos() as u64;
                    stats.rolled += 1;
                    stats.nodes += kinds;
                    committed = true;
                    break;
                }
                // The lane gate is cheaper than a memo lookup; never cached.
                IncrAttempt::LanesRejected => stats.rejected_lanes += 1,
                IncrAttempt::ScheduleRejected => {
                    stats.rejected_schedule += 1;
                    cache.memo.insert(
                        cand,
                        MemoEntry {
                            verdict: MemoVerdict::Schedule,
                            deps: vec![block],
                        },
                    );
                }
                IncrAttempt::Unprofitable { deps } => {
                    stats.rejected_profit += 1;
                    cache.memo.insert(
                        cand,
                        MemoEntry {
                            verdict: MemoVerdict::Unprofitable,
                            deps,
                        },
                    );
                }
                IncrAttempt::ValidatorRejected => {
                    stats.tv_rejected += 1;
                    // The validator reads other blocks only through
                    // def-use edges, the same cross-block inputs as the
                    // scheduling verdict, so the dirty closure covers it.
                    cache.memo.insert(
                        cand,
                        MemoEntry {
                            verdict: MemoVerdict::Validator,
                            deps: vec![block],
                        },
                    );
                }
            }
        }
        if !committed {
            break;
        }
        let cost_start = Instant::now();
        old_size = cached_function_size(module, &work, opts, &mut cache);
        stats.timings.cost_ns += cost_start.elapsed().as_nanos() as u64;
    }

    // `work` did not change since `old_size` was last computed (constant
    // interning during rejected graph builds never alters block content).
    stats.size_after = old_size;
    stats.cache.size_blocks_reused += cache.sizes.hits + cache.sketch.hits;
    stats.cache.size_blocks_computed += cache.sizes.misses + cache.sketch.misses;
    module.replace_func(id, work);
    stats
}

/// Runs RoLAG on one function with the pre-incremental full-rescan loop:
/// every sweep re-collects all candidates and every profitability decision
/// walks the whole function. Retained as the executable specification the
/// incremental engine is tested against; prefer [`roll_function_with`].
pub fn roll_function_full_rescan(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    let mut stats = RolagStats::default();
    if module.func(id).is_declaration {
        return stats;
    }
    let mut work = module.func(id).clone();
    stats.size_before = timed(&mut stats.timings.cost_ns, || {
        fresh_function_size(module, &work, opts)
    });

    loop {
        let candidates = timed(&mut stats.timings.seeds_ns, || {
            collect_candidates(module, &work, opts)
        });
        // `work` is invariant within a sweep, so the profitability baseline
        // is too: compute it once per sweep, not once per candidate.
        let old_size = timed(&mut stats.timings.cost_ns, || {
            fresh_function_size(module, &work, opts)
        });
        let mut committed = false;
        for cand in candidates {
            stats.attempted += 1;
            match try_candidate(
                module, &mut work, &cand, opts, effects, &mut stats, old_size,
            ) {
                Attempt::Committed { func, kinds } => {
                    work = func;
                    stats.rolled += 1;
                    stats.nodes += kinds;
                    committed = true;
                    break;
                }
                Attempt::LanesRejected => stats.rejected_lanes += 1,
                Attempt::ScheduleRejected => stats.rejected_schedule += 1,
                Attempt::ValidatorRejected => stats.tv_rejected += 1,
                Attempt::Unprofitable => stats.rejected_profit += 1,
            }
        }
        if !committed {
            break;
        }
    }

    stats.size_after = timed(&mut stats.timings.cost_ns, || {
        fresh_function_size(module, &work, opts)
    });
    module.replace_func(id, work);
    stats
}

#[allow(clippy::large_enum_variant)] // transient, one per candidate
enum Attempt {
    Committed {
        func: Function,
        kinds: crate::stats::NodeKindCounts,
    },
    LanesRejected,
    ScheduleRejected,
    ValidatorRejected,
    Unprofitable,
}

enum IncrAttempt {
    Committed {
        /// The committed speculation window's touch set: `work` already
        /// holds the new state in place; the caller replays the log onto
        /// the shadow clone.
        log: rolag_ir::SpeculationLog,
        kinds: crate::stats::NodeKindCounts,
        /// Blocks of the pre-candidate state the attempt changed, plus the
        /// attempt's new blocks (the commit's change set, reused for
        /// invalidation).
        changed: Vec<BlockId>,
        /// `measured_cost` only: the trial size sketch, already exact for
        /// the committed state (the commit adopts it wholesale).
        sketch: Option<rolag_lower::SizeSketch>,
    },
    LanesRejected,
    ScheduleRejected,
    ValidatorRejected,
    Unprofitable {
        /// Blocks the profitability verdict depends on.
        deps: Vec<BlockId>,
    },
}

/// Graph build stage, shared by both engines. Builds against the *shared*
/// working function (cheap-reject: no clone yet); interning synthetic
/// constants into it is inert (see [`build_candidate_graph`]).
pub(crate) fn build_graph(
    module: &Module,
    work: &mut Function,
    cand: &Candidate,
    opts: &RolagOptions,
    stats: &mut RolagStats,
) -> Option<AlignGraph> {
    timed(&mut stats.timings.align_ns, || {
        build_candidate_graph(module, work, cand, opts)
    })
}

/// Scheduling stage, shared by both engines.
pub(crate) fn analyze_schedule(
    module: &Module,
    work: &Function,
    block: BlockId,
    graph: &AlignGraph,
    stats: &mut RolagStats,
) -> Option<Schedule> {
    timed(&mut stats.timings.schedule_ns, || {
        schedule::analyze(module, work, block, graph)
    })
}

/// Why [`generate_and_cleanup`] bailed on an attempt.
enum GenReject {
    /// The code generator refused the schedule.
    Codegen,
    /// The translation validator refused to prove the generated rewrite.
    Validator,
}

/// Builds the untrusted hint packet [`validate_rewrite`] needs: the lane
/// count, the generated block ids, the first rewrite-created global, and
/// the lane every claimed instruction was assigned to.
pub(crate) fn rewrite_hints(
    graph: &AlignGraph,
    block: BlockId,
    outcome: &RollOutcome,
    opts: &RolagOptions,
    before_globals: usize,
) -> rolag_tv::RewriteHints {
    rolag_tv::RewriteHints {
        lanes: graph.lanes,
        block,
        loop_block: outcome.loop_block,
        exit_block: outcome.exit_block,
        first_new_global: before_globals,
        fast_math: opts.fast_math,
        claimed_lanes: graph
            .claimed
            .iter()
            .map(|(&i, &(_, lane))| (i, lane))
            .collect(),
    }
}

/// Codegen + (optional) translation validation + cleanup on the cloned
/// attempt, shared by both engines. Rolls back any globals the generator
/// created before bailing. Validation runs on the raw generated code,
/// before cleanup, so the validator sees exactly what codegen emitted.
#[allow(clippy::too_many_arguments)] // one slot per pipeline stage input
fn generate_and_cleanup(
    module: &mut Module,
    orig: &Function,
    attempt: &mut Function,
    block: BlockId,
    graph: &AlignGraph,
    sched: &Schedule,
    opts: &RolagOptions,
    effects: &[Effects],
    stats: &mut RolagStats,
    before_globals: usize,
) -> Result<RollOutcome, GenReject> {
    let outcome = timed(&mut stats.timings.codegen_ns, || {
        codegen::generate(module, attempt, block, graph, sched)
    });
    let Some(outcome) = outcome else {
        rollback_globals(module, before_globals);
        return Err(GenReject::Codegen);
    };
    if opts.validate {
        let hints = rewrite_hints(graph, block, &outcome, opts, before_globals);
        let verdict = timed(&mut stats.timings.tv_ns, || {
            rolag_tv::validate_rewrite(module, orig, attempt, &hints)
        });
        match verdict {
            Ok(()) => stats.tv_validated += 1,
            Err(_) => {
                rollback_globals(module, before_globals);
                return Err(GenReject::Validator);
            }
        }
    }
    if opts.cleanup {
        timed(&mut stats.timings.cleanup_ns, || {
            cleanup_in_place(attempt, &mut module.types, effects)
        });
    }
    Ok(outcome)
}

fn try_candidate(
    module: &mut Module,
    work: &mut Function,
    cand: &Candidate,
    opts: &RolagOptions,
    effects: &[Effects],
    stats: &mut RolagStats,
    old_size: u64,
) -> Attempt {
    let block = cand.block();

    // Lane gate first: it needs no IR at all, so reject before any work.
    if cand.lanes() < opts.min_lanes {
        return Attempt::LanesRejected;
    }

    // Cheap-reject: graph build and scheduling read the shared working
    // function; the function clone is deferred to scheduling survivors.
    let Some(graph) = build_graph(module, work, cand, opts, stats) else {
        return Attempt::ScheduleRejected;
    };
    let Some(sched) = analyze_schedule(module, work, block, &graph, stats) else {
        return Attempt::ScheduleRejected;
    };

    let mut attempt = work.clone();
    let before_globals = module.num_globals();
    let outcome = match generate_and_cleanup(
        module,
        work,
        &mut attempt,
        block,
        &graph,
        &sched,
        opts,
        effects,
        stats,
        before_globals,
    ) {
        Ok(outcome) => outcome,
        Err(GenReject::Codegen) => return Attempt::ScheduleRejected,
        Err(GenReject::Validator) => return Attempt::ValidatorRejected,
    };

    // Profitability (§IV-F): text size plus the constant data the roll
    // added to `.rodata`. The baseline `old_size` comes in from the sweep.
    let profitable = timed(&mut stats.timings.cost_ns, || {
        let rodata: u64 = outcome
            .new_globals
            .iter()
            .map(|&g| module.global_size(g))
            .sum();
        let new_size = fresh_function_size(module, &attempt, opts) + rodata;
        new_size < old_size
    });

    if profitable {
        Attempt::Committed {
            func: attempt,
            kinds: graph.count_kinds(),
        }
    } else {
        rollback_globals(module, before_globals);
        Attempt::Unprofitable
    }
}

/// The incremental engine's candidate attempt: identical stages and
/// decisions to [`try_candidate`], but the speculative rewrite mutates
/// `work` **in place** under a [`rolag_ir::Function::snapshot`] journal —
/// no body clone per candidate — with `shadow` (a clone of the pre-candidate
/// state, maintained by the caller via [`rolag_ir::Function::apply_log`])
/// standing in for the original wherever both versions are needed at once:
/// the translation validator's reference, the old side of the change
/// tracking, and the old-side terms of the size delta. Profitability is a
/// per-block size delta against the sweep's cached estimates, and rejects
/// report the blocks their verdict depends on for memoization.
#[allow(clippy::too_many_arguments)] // mirror of try_candidate + cache
fn try_candidate_incremental(
    module: &mut Module,
    work: &mut Function,
    shadow: &mut Option<Function>,
    pending_log: &mut Option<rolag_ir::SpeculationLog>,
    cand: &Candidate,
    opts: &RolagOptions,
    effects: &[Effects],
    stats: &mut RolagStats,
    old_size: u64,
    cache: &mut FunctionCache,
) -> IncrAttempt {
    let block = cand.block();

    if cand.lanes() < opts.min_lanes {
        return IncrAttempt::LanesRejected;
    }

    let Some(graph) = build_graph(module, work, cand, opts, stats) else {
        return IncrAttempt::ScheduleRejected;
    };
    let Some(sched) = analyze_schedule(module, work, block, &graph, stats) else {
        return IncrAttempt::ScheduleRejected;
    };

    // Graph builds intern synthetic constants into the shared `work` —
    // inert, and deliberately persistent across rejected candidates (memo
    // replay relies on it). Materialize the shadow on first use (a fresh
    // clone already carries them); on reuse, catch it up so the two are
    // exact clones when the speculation window opens: replaying a stashed
    // commit log brings over the commit's touches *and* everything interned
    // since (apply_log copies the whole appended value tail), otherwise
    // only the interned constants need absorbing. Rejected candidates roll
    // `work` back in full, so a single pending log always bridges the gap.
    match shadow.as_mut() {
        Some(s) => match pending_log.take() {
            Some(log) => s.apply_log(work, &log),
            None => s.absorb_interned_values(work),
        },
        None => {
            *pending_log = None;
            *shadow = Some(work.clone());
        }
    }
    let shadow = shadow.as_mut().expect("just materialized");
    let num_work_blocks = work.num_blocks();

    let before_globals = module.num_globals();
    let token = work.snapshot();
    let outcome = match generate_and_cleanup(
        module,
        shadow,
        work,
        block,
        &graph,
        &sched,
        opts,
        effects,
        stats,
        before_globals,
    ) {
        Ok(outcome) => outcome,
        Err(GenReject::Codegen) => {
            work.rollback(token);
            return IncrAttempt::ScheduleRejected;
        }
        Err(GenReject::Validator) => {
            work.rollback(token);
            return IncrAttempt::ValidatorRejected;
        }
    };

    // Change tracking: which blocks the attempt rewrote (read off the
    // journal in O(touched)), and which clean blocks the cost regime's
    // one-hop couplings drag in.
    let track_start = Instant::now();
    let changed = speculated_changed_blocks(shadow, work);
    let affected = if opts.measured_cost {
        measure_affected_blocks(shadow, work, &changed)
    } else {
        size_affected_blocks(shadow, work, &changed)
    };
    stats.timings.track_ns += track_start.elapsed().as_nanos() as u64;

    let cost_start = Instant::now();
    let rodata: u64 = outcome
        .new_globals
        .iter()
        .map(|&g| module.global_size(g))
        .sum();
    let (profitable, trial_sketch) = if opts.measured_cost {
        // Measured delta: clone the sweep's sketch, drop exactly the
        // summaries the attempt can have perturbed, and recombine. Clean
        // blocks keep their machine code verbatim; the global spill scan
        // reruns over the recombined intervals, so non-local register
        // pressure effects are priced exactly.
        let mut trial = cache.sketch.clone();
        for &b in changed.iter().chain(affected.iter()) {
            trial.invalidate(b);
        }
        trial.carry_to(work.revision());
        let new_size = trial.measure(module, work) as u64 + rodata;
        (new_size < old_size, Some(trial))
    } else {
        // Estimated delta: `new_size = old_size − Σ old(changed ∪ affected)
        // + Σ new(changed ∪ affected) + rodata`. Blocks outside the two
        // sets have identical content and an unchanged one-hop gep-folding
        // neighbourhood, so their estimates cancel exactly — the sum never
        // walks them. The old-side terms come from the sweep cache against
        // the shadow (sweep-invariant revision, so repeated attempts hit);
        // the new-side terms share one use map of the speculative state.
        let uses = work.compute_uses();
        let mut delta = 0i64;
        for &b in changed.iter().filter(|b| b.index() < num_work_blocks) {
            delta -= cache.sizes.get(opts.target, module, shadow, b) as i64;
        }
        for &b in &affected {
            delta -= cache.sizes.get(opts.target, module, shadow, b) as i64;
        }
        for &b in changed.iter().chain(affected.iter()) {
            stats.cache.size_blocks_computed += 1;
            delta += opts.target.block_estimate_with(module, work, &uses, b) as i64;
        }
        let new_size = (old_size as i64 + delta + rodata as i64) as u64;
        debug_assert_eq!(
            new_size,
            opts.target.function_estimate(module, work) as u64 + rodata,
            "per-block size delta diverged from the full walk"
        );
        (new_size < old_size, None)
    };
    stats.timings.cost_ns += cost_start.elapsed().as_nanos() as u64;

    if profitable {
        let log = work.commit(token);
        IncrAttempt::Committed {
            log,
            kinds: graph.count_kinds(),
            changed,
            sketch: trial_sketch,
        }
    } else {
        work.rollback(token);
        rollback_globals(module, before_globals);
        let deps = if opts.measured_cost {
            // The measured verdict hangs off the *global* spill scan: a
            // content change anywhere in the function can shift register
            // pressure under the attempt. Depend on every block.
            work.block_ids().collect()
        } else {
            // The estimated verdict depends on the candidate block, every
            // pre-existing block the attempt rewrote, and every block
            // whose size fed the delta: `old_size` and the would-be
            // `new_size` shift by the same amount under commits outside
            // these blocks, so the sign of the delta is stable.
            let mut deps = vec![block];
            deps.extend(
                changed
                    .iter()
                    .copied()
                    .filter(|b| b.index() < num_work_blocks && *b != block),
            );
            deps.extend(affected.iter().copied().filter(|b| *b != block));
            deps
        };
        IncrAttempt::Unprofitable { deps }
    }
}

pub(crate) fn rollback_globals(module: &mut Module, keep: usize) {
    while module.num_globals() > keep {
        let last = rolag_ir::GlobalId::from_index(module.num_globals() - 1);
        module.pop_global(last);
    }
}

/// Runs RoLAG on every function of the module, returning aggregate
/// statistics. The call-effects table is computed once and shared across
/// all functions.
pub fn roll_module(module: &mut Module, opts: &RolagOptions) -> RolagStats {
    let effects = effects_table(module);
    roll_module_with(module, opts, &effects)
}

/// [`roll_module`] with a caller-supplied call-effects table, e.g. one
/// served from a pass manager's analysis cache. No registered pass changes
/// a function's effects annotation, so a table computed earlier in the
/// pipeline stays exact.
pub fn roll_module_with(
    module: &mut Module,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut total = RolagStats::default();
    for id in ids {
        total += roll_function_rescued(module, id, opts, effects);
    }
    total
}

/// Runs `engine` on function `id` with per-function panic isolation: if the
/// engine panics, the module is restored to its pre-call state (the
/// original function kept verbatim, speculative globals rolled back) and
/// the returned stats count one `rescued` function. One pathological
/// function thus degrades into a skipped roll instead of killing the whole
/// module run.
pub(crate) fn rescue_panics(
    module: &mut Module,
    id: FuncId,
    engine: impl FnOnce(&mut Module) -> RolagStats,
) -> RolagStats {
    let func_snapshot = module.func(id).clone();
    let globals_snapshot = module.num_globals();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine(module))) {
        Ok(stats) => stats,
        Err(_) => {
            while module.num_globals() > globals_snapshot {
                module.pop_global(GlobalId::from_index(module.num_globals() - 1));
            }
            module.replace_func(id, func_snapshot);
            RolagStats {
                rescued: 1,
                ..Default::default()
            }
        }
    }
}

/// [`roll_function_with`] wrapped in [`rescue_panics`]: an engine panic
/// keeps the original function and counts `rescued` instead of unwinding
/// out of the module driver.
pub fn roll_function_rescued(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    rescue_panics(module, id, |m| roll_function_with(m, id, opts, effects))
}

/// [`roll_module`] on the full-rescan reference engine
/// ([`roll_function_full_rescan`]); used by the equivalence tests and the
/// `fixpoint` bench.
pub fn roll_module_full_rescan(module: &mut Module, opts: &RolagOptions) -> RolagStats {
    let effects = effects_table(module);
    roll_module_full_rescan_with(module, opts, &effects)
}

/// [`roll_module_full_rescan`] with a caller-supplied call-effects table
/// (the full-rescan twin of [`roll_module_with`]).
pub fn roll_module_full_rescan_with(
    module: &mut Module,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut total = RolagStats::default();
    for id in ids {
        total += rescue_panics(module, id, |m| {
            roll_function_full_rescan(m, id, opts, effects)
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::{equivalent, IValue, Interpreter};
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    /// Rolls, verifies, and checks behavioural equivalence on the given
    /// entry points/arguments. Returns (module, stats).
    fn roll_and_check(text: &str, runs: &[(&str, Vec<IValue>)]) -> (Module, RolagStats) {
        let orig = parse_module(text).unwrap();
        let mut rolled = orig.clone();
        let opts = RolagOptions::default();
        let stats = roll_module(&mut rolled, &opts);
        verify_module(&rolled).expect("rolled module verifies");
        for (entry, args) in runs {
            let mut ia = Interpreter::new(&orig);
            let mut ib = Interpreter::new(&rolled);
            let oa = ia.run(entry, args).unwrap();
            let ob = ib.run(entry, args).unwrap();
            assert!(
                equivalent(&oa, &ob),
                "behaviour changed for {entry}: {oa:?} vs {ob:?}"
            );
        }
        (rolled, stats)
    }

    #[test]
    fn rolls_long_store_sequence() {
        // 8 stores a[i] = i*7: clearly profitable.
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        let (m, stats) = roll_and_check(&text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 1);
        assert!(stats.size_after < stats.size_before);
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.num_blocks(), 3, "pre/loop/exit");
        // A committed roll exercises every stage, so every timer ticks.
        assert!(stats.timings.seeds_ns > 0);
        assert!(stats.timings.align_ns > 0);
        assert!(stats.timings.schedule_ns > 0);
        assert!(stats.timings.codegen_ns > 0);
        assert!(stats.timings.cost_ns > 0);
        assert!(stats.timings.cleanup_ns > 0);
        assert!(stats.timings.track_ns > 0);
    }

    /// Regression (BENCH_fixpoint tsvc24 `memo_hit_rate: 0.0`): a
    /// single-block function whose fixpoint commits once legitimately
    /// reports zero memo hits. The commit rewrites the only block, so
    /// every verdict memoized against it dies with the commit's dirty set,
    /// and the verdicts of the final (commit-free) sweep have no later
    /// sweep to replay in. The TSVC kernels are exactly this shape. This
    /// is not a keying bug: a reject in a block untouched by the commit
    /// survives and replays (`rejects_outside_the_commit_replay_from_memo`).
    #[test]
    fn single_commit_single_block_fixpoints_report_zero_memo_hits() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nglobal @t : [2 x i32] = zero\n\
             func @f() -> void {\nentry:\n",
        );
        // One block holding an unprofitable pair and a profitable run of 8:
        // sweep 1 commits the run (larger groups go first), sweep 2 rejects
        // the pair and memoizes a verdict nothing ever reads back.
        text.push_str("  %t0 = gep i32, @t, i64 0\n  store i32 1, %t0\n");
        text.push_str("  %t1 = gep i32, @t, i64 1\n  store i32 8, %t1\n");
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        let (_, stats) = roll_and_check(&text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 1, "fixture must commit exactly once");
        assert_eq!(
            stats.cache.memo_hits, 0,
            "the commit rewrote the only block; nothing survives to replay"
        );
        assert!(stats.cache.memo_misses > 0, "verdicts were still memoized");
    }

    /// Counterpart: with the directed dirty set, a reject memoized in a
    /// block the commit does not touch survives the commit and is replayed
    /// in the next sweep — the undirected closure used to kill it whenever
    /// the blocks shared any definition chain.
    #[test]
    fn rejects_outside_the_commit_replay_from_memo() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nglobal @t : [2 x i32] = zero\n\
             func @f() -> void {\nentry:\n",
        );
        // The pair lives in its own block, value-disconnected from the run.
        text.push_str("  %t0 = gep i32, @t, i64 0\n  store i32 1, %t0\n");
        text.push_str("  %t1 = gep i32, @t, i64 1\n  store i32 8, %t1\n  br big\nbig:\n");
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        let (_, stats) = roll_and_check(&text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 1);
        assert!(
            stats.cache.memo_hits > 0,
            "the pair's sweep-1 reject must replay in sweep 2: {:?}",
            stats.cache
        );
    }

    /// Measured-cost mode rolls and the committed output stays behaviourally
    /// correct; the sketch counters surface through the size-cache rows.
    #[test]
    fn measured_cost_mode_rolls_profitably() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        let orig = parse_module(&text).unwrap();
        let mut rolled = orig.clone();
        let stats = roll_module(&mut rolled, &RolagOptions::measured());
        verify_module(&rolled).expect("rolled module verifies");
        assert_eq!(stats.rolled, 1);
        assert!(
            stats.size_after < stats.size_before,
            "measured sizes must shrink: {} -> {}",
            stats.size_before,
            stats.size_after
        );
        let mut ia = Interpreter::new(&orig);
        let mut ib = Interpreter::new(&rolled);
        let oa = ia.run("f", &[]).unwrap();
        let ob = ib.run("f", &[]).unwrap();
        assert!(equivalent(&oa, &ob));
    }

    /// Measured-cost mode, two profitable rolls in value-disconnected
    /// blocks: the sketch adopted at the first commit must carry the clean
    /// block's summaries into the second commit's sweeps (served as hits,
    /// not re-selected), and the result must stay byte-identical and
    /// outcome-identical to the full-rescan reference.
    #[test]
    fn measured_sketch_carries_across_disjoint_commits() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nglobal @b : [8 x i32] = zero\n\
             func @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  br next\nnext:\n");
        for i in 0..8 {
            text.push_str(&format!("  %h{i} = gep i32, @b, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %h{i}\n", i * 3));
        }
        text.push_str("  ret\n}\n");
        let opts = RolagOptions::measured();

        let mut incremental = parse_module(&text).unwrap();
        let stats = roll_module(&mut incremental, &opts);
        let mut reference = parse_module(&text).unwrap();
        let ref_stats = roll_module_full_rescan(&mut reference, &opts);

        assert_eq!(stats.rolled, 2, "both blocks must roll: {stats:?}");
        assert_eq!(stats, ref_stats, "outcome stats diverged from reference");
        assert_eq!(
            rolag_ir::printer::print_module(&incremental),
            rolag_ir::printer::print_module(&reference),
            "incremental output diverged from full rescan"
        );
        assert!(
            stats.cache.size_blocks_reused > 0,
            "carried sketch summaries must serve measured sizes: {:?}",
            stats.cache
        );
    }

    #[test]
    fn short_sequences_are_unprofitable() {
        let text = r#"
module "t"
global @a : [2 x i32] = zero
func @f() -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 7, %g1
  ret
}
"#;
        let (_, stats) = roll_and_check(text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 0);
        assert!(stats.rejected_profit >= 1);
    }

    /// A roll in one block must not invalidate the cached candidates of
    /// value-disconnected blocks: the second sweep reuses them, and a third
    /// sweep replays memoized verdicts instead of re-running attempts.
    #[test]
    fn caches_survive_commits_in_disconnected_blocks() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nglobal @b : [8 x i32] = zero\n\
             func @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  br next\nnext:\n");
        for i in 0..8 {
            text.push_str(&format!("  %h{i} = gep i32, @b, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %h{i}\n", i * 3));
        }
        text.push_str("  ret\n}\n");
        let (_, stats) = roll_and_check(&text, &[("f", vec![])]);
        assert_eq!(stats.rolled, 2);
        assert!(
            stats.cache.cand_blocks_reused > 0,
            "clean blocks must serve candidates from cache: {:?}",
            stats.cache
        );
        assert!(
            stats.cache.size_blocks_reused > 0,
            "clean blocks must serve sizes from cache: {:?}",
            stats.cache
        );
    }

    /// With validation on, every committed (and cost-rejected) rewrite is
    /// proven by the translation validator, output is byte-identical to a
    /// validation-off run, and the `tv` timer ticks.
    #[test]
    fn validation_gates_every_commit() {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");

        let mut plain = parse_module(&text).unwrap();
        let plain_stats = roll_module(&mut plain, &RolagOptions::default());

        let mut validated = parse_module(&text).unwrap();
        let stats = roll_module(&mut validated, &RolagOptions::validated());

        assert_eq!(stats.rolled, plain_stats.rolled);
        assert_eq!(stats.tv_rejected, 0, "false reject on a clean roll");
        assert!(stats.tv_validated >= stats.rolled);
        assert!(stats.timings.tv_ns > 0, "validation time was not recorded");
        assert_eq!(
            rolag_ir::printer::print_module(&plain),
            rolag_ir::printer::print_module(&validated),
            "validation must not change the output"
        );
        let shown = stats.to_string();
        assert!(shown.contains("tv 1 validated / 0 rejected"), "{shown}");
    }

    /// A panicking engine must leave the module byte-identical — including
    /// rolling back any globals it speculatively added — and report the
    /// function as rescued rather than unwinding.
    #[test]
    fn rescue_panics_restores_the_module() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> void {
entry:
  ret
}
"#;
        let mut module = parse_module(text).unwrap();
        let id = module.func_ids().next().unwrap();
        let before = rolag_ir::printer::print_module(&module);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let stats = rescue_panics(&mut module, id, |m| {
            let word = m.types.int(32);
            m.add_global(rolag_ir::GlobalData {
                name: "speculative".into(),
                ty: word,
                init: rolag_ir::GlobalInit::Zero,
                is_const: true,
            });
            panic!("boom");
        });
        std::panic::set_hook(hook);
        assert_eq!(stats.rescued, 1);
        assert_eq!(stats.rolled, 0);
        assert_eq!(rolag_ir::printer::print_module(&module), before);
    }
}
