//! Pass configuration.

use rolag_analysis::cost::TargetKind;

/// Options controlling the RoLAG pass.
///
/// The `enable_*` switches exist for the paper's ablation discussion
/// (disabling the special nodes drops profitable TSVC rolls from 84 to 19,
/// §V-C / Fig. 19).
#[derive(Debug, Clone)]
pub struct RolagOptions {
    /// Allow re-association of floating-point reduction trees (the paper
    /// requires an explicit fast-math opt-in, §IV-C5).
    pub fast_math: bool,
    /// Minimum number of lanes (loop iterations) worth attempting.
    pub min_lanes: usize,
    /// Monotonic integer sequence nodes (§IV-C1).
    pub enable_sequences: bool,
    /// Neutral pointer operation nodes (§IV-C2).
    pub enable_gep_neutral: bool,
    /// Neutral-element padding for binary operations (§IV-C3).
    pub enable_binop_neutral: bool,
    /// Similarity-maximizing operand reordering for commutative ops
    /// (§IV-C3).
    pub enable_commutative: bool,
    /// Recurrence nodes for chained dependences (§IV-C4).
    pub enable_recurrences: bool,
    /// Reduction-tree rolling (§IV-C5).
    pub enable_reductions: bool,
    /// Joint alignment of alternating seed groups (§IV-C6).
    pub enable_joint: bool,
    /// Mismatching nodes (handled through arrays). Disabling restricts the
    /// graph to exact matches.
    pub enable_mismatch: bool,
    /// Run simplify+DCE on functions changed by the pass.
    pub cleanup: bool,
    /// Statically validate every generated rewrite with the `rolag-tv`
    /// translation validator before the cost model may commit it; rewrites
    /// that fail to validate are rejected and counted in
    /// `RolagStats::tv_rejected`.
    pub validate: bool,
    /// EXTENSION (paper future work, §V-C / Fig. 20b): seed alignment from
    /// chains of `select`s and non-associative binops, enabling select-based
    /// min/max reductions to roll. Off by default to match the paper's
    /// evaluated configuration.
    pub enable_value_chains: bool,
    /// Lowering target whose size model drives profitability (§IV-F uses
    /// "the compiler's target-specific cost model").
    pub target: TargetKind,
    /// Use the `rolag-lower` binary-size simulator (isel + regalloc spill
    /// sizing) instead of the cheap TTI-style estimate when judging
    /// profitability. Closes the estimate/measurement gap of §V-A at the
    /// price of re-lowering changed blocks; the incremental engine keeps a
    /// per-block regalloc sketch so unchanged blocks are never re-selected.
    pub measured_cost: bool,
}

impl Default for RolagOptions {
    fn default() -> Self {
        RolagOptions {
            fast_math: true,
            min_lanes: 2,
            enable_sequences: true,
            enable_gep_neutral: true,
            enable_binop_neutral: true,
            enable_commutative: true,
            enable_recurrences: true,
            enable_reductions: true,
            enable_joint: true,
            enable_mismatch: true,
            cleanup: true,
            validate: false,
            enable_value_chains: false,
            target: TargetKind::default(),
            measured_cost: false,
        }
    }
}

impl RolagOptions {
    /// The paper's future-work configuration: everything on, including the
    /// select/min-max chain extension.
    pub fn with_extensions() -> Self {
        RolagOptions {
            enable_value_chains: true,
            ..RolagOptions::default()
        }
    }
}

impl RolagOptions {
    /// The ablation configuration used by Fig. 19's discussion: all special
    /// nodes disabled, leaving only exact matching.
    pub fn no_special_nodes() -> Self {
        RolagOptions {
            enable_sequences: false,
            enable_gep_neutral: false,
            enable_binop_neutral: false,
            enable_commutative: false,
            enable_recurrences: false,
            enable_reductions: false,
            enable_joint: false,
            // Mismatching nodes are one of the two *base* kinds (Fig. 7b),
            // not a special node, so the ablation keeps them.
            ..RolagOptions::default()
        }
    }

    /// The default configuration with per-rewrite translation validation
    /// switched on (the `tv` pass spelling).
    pub fn validated() -> Self {
        RolagOptions {
            validate: true,
            ..RolagOptions::default()
        }
    }

    /// The default configuration with the lowered-size simulator driving
    /// profitability instead of the TTI estimate.
    pub fn measured() -> Self {
        RolagOptions {
            measured_cost: true,
            ..RolagOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = RolagOptions::default();
        assert!(o.enable_sequences && o.enable_reductions && o.enable_joint);
        assert_eq!(o.min_lanes, 2);
    }

    #[test]
    fn ablation_disables_special_nodes_only() {
        let o = RolagOptions::no_special_nodes();
        assert!(!o.enable_sequences && !o.enable_recurrences);
        assert!(o.cleanup);
        assert_eq!(o.min_lanes, 2);
    }
}
