//! Pass configuration.

use rolag_analysis::cost::TargetKind;

/// Alignment-search strategy (ROADMAP item 5).
///
/// `Greedy` is the paper's behaviour: one seed grouping per region, first
/// profitable candidate wins. `Beam` additionally enumerates alternative
/// seed groupings (lane reorderings, sub-group splits, trimmed groups; see
/// `seeds::candidate_variants`), speculates each on the journal, gates every
/// survivor through the translation validator, and commits whichever
/// validated candidate the cost model scores smallest.
///
/// The variant is part of `RolagOptions`' `Debug` output and therefore of
/// the memo-store options fingerprint: greedy and beam results never share
/// a cache slot, so `rolag-serve` / `roll_module_par` replay byte-identically
/// per configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchConfig {
    /// The paper's greedy engine (the default).
    #[default]
    Greedy,
    /// Beam search over alignment choices.
    Beam {
        /// Number of speculated candidates kept alive per step. Width 1 is
        /// defined to be byte- and stats-identical to `Greedy` (enforced by
        /// `tests/search_conformance.rs`).
        width: usize,
        /// Greedy-rollout depth used to score shortlisted candidates
        /// (commits simulated past the speculated candidate). `0` means
        /// unbounded: roll out until the fixpoint dries up.
        depth: usize,
    },
}

impl SearchConfig {
    /// Default rollout depth when a spec names only the width.
    pub const DEFAULT_DEPTH: usize = 4;

    /// Parse a `--search` spec: `greedy`, `beam:<width>`, or
    /// `beam:<width>:<depth>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "greedy" {
            return Ok(SearchConfig::Greedy);
        }
        if let Some(rest) = spec.strip_prefix("beam:") {
            let mut parts = rest.splitn(2, ':');
            let width_s = parts.next().unwrap_or("");
            let width: usize = width_s
                .parse()
                .map_err(|_| format!("invalid beam width {width_s:?} in --search {spec:?}"))?;
            if width == 0 {
                return Err(format!("beam width must be >= 1 in --search {spec:?}"));
            }
            let depth = match parts.next() {
                Some(d) => d
                    .parse()
                    .map_err(|_| format!("invalid beam depth {d:?} in --search {spec:?}"))?,
                None => Self::DEFAULT_DEPTH,
            };
            return Ok(SearchConfig::Beam { width, depth });
        }
        Err(format!(
            "unknown search spec {spec:?} (expected greedy, beam:<width>, or beam:<width>:<depth>)"
        ))
    }

    /// The canonical spec string `parse` accepts back.
    pub fn spec(&self) -> String {
        match self {
            SearchConfig::Greedy => "greedy".to_string(),
            SearchConfig::Beam { width, depth } => format!("beam:{width}:{depth}"),
        }
    }

    /// True when this configuration actually runs the beam engine (width
    /// >= 2); width-1 beams delegate to the greedy engine wholesale.
    pub fn is_beam(&self) -> bool {
        matches!(self, SearchConfig::Beam { width, .. } if *width >= 2)
    }
}

/// Options controlling the RoLAG pass.
///
/// The `enable_*` switches exist for the paper's ablation discussion
/// (disabling the special nodes drops profitable TSVC rolls from 84 to 19,
/// §V-C / Fig. 19).
#[derive(Debug, Clone)]
pub struct RolagOptions {
    /// Allow re-association of floating-point reduction trees (the paper
    /// requires an explicit fast-math opt-in, §IV-C5).
    pub fast_math: bool,
    /// Minimum number of lanes (loop iterations) worth attempting.
    pub min_lanes: usize,
    /// Monotonic integer sequence nodes (§IV-C1).
    pub enable_sequences: bool,
    /// Neutral pointer operation nodes (§IV-C2).
    pub enable_gep_neutral: bool,
    /// Neutral-element padding for binary operations (§IV-C3).
    pub enable_binop_neutral: bool,
    /// Similarity-maximizing operand reordering for commutative ops
    /// (§IV-C3).
    pub enable_commutative: bool,
    /// Recurrence nodes for chained dependences (§IV-C4).
    pub enable_recurrences: bool,
    /// Reduction-tree rolling (§IV-C5).
    pub enable_reductions: bool,
    /// Joint alignment of alternating seed groups (§IV-C6).
    pub enable_joint: bool,
    /// Mismatching nodes (handled through arrays). Disabling restricts the
    /// graph to exact matches.
    pub enable_mismatch: bool,
    /// Run simplify+DCE on functions changed by the pass.
    pub cleanup: bool,
    /// Statically validate every generated rewrite with the `rolag-tv`
    /// translation validator before the cost model may commit it; rewrites
    /// that fail to validate are rejected and counted in
    /// `RolagStats::tv_rejected`.
    pub validate: bool,
    /// EXTENSION (paper future work, §V-C / Fig. 20b): seed alignment from
    /// chains of `select`s and non-associative binops, enabling select-based
    /// min/max reductions to roll. Off by default to match the paper's
    /// evaluated configuration.
    pub enable_value_chains: bool,
    /// Lowering target whose size model drives profitability (§IV-F uses
    /// "the compiler's target-specific cost model").
    pub target: TargetKind,
    /// Use the `rolag-lower` binary-size simulator (isel + regalloc spill
    /// sizing) instead of the cheap TTI-style estimate when judging
    /// profitability. Closes the estimate/measurement gap of §V-A at the
    /// price of re-lowering changed blocks; the incremental engine keeps a
    /// per-block regalloc sketch so unchanged blocks are never re-selected.
    pub measured_cost: bool,
    /// Alignment-search strategy (greedy, or validator-gated beam search
    /// over alternative seed groupings). Part of the options fingerprint:
    /// memo/serve cache slots are keyed per search configuration.
    pub search: SearchConfig,
}

impl Default for RolagOptions {
    fn default() -> Self {
        RolagOptions {
            fast_math: true,
            min_lanes: 2,
            enable_sequences: true,
            enable_gep_neutral: true,
            enable_binop_neutral: true,
            enable_commutative: true,
            enable_recurrences: true,
            enable_reductions: true,
            enable_joint: true,
            enable_mismatch: true,
            cleanup: true,
            validate: false,
            enable_value_chains: false,
            target: TargetKind::default(),
            measured_cost: false,
            search: SearchConfig::Greedy,
        }
    }
}

impl RolagOptions {
    /// The paper's future-work configuration: everything on, including the
    /// select/min-max chain extension.
    pub fn with_extensions() -> Self {
        RolagOptions {
            enable_value_chains: true,
            ..RolagOptions::default()
        }
    }
}

impl RolagOptions {
    /// The ablation configuration used by Fig. 19's discussion: all special
    /// nodes disabled, leaving only exact matching.
    pub fn no_special_nodes() -> Self {
        RolagOptions {
            enable_sequences: false,
            enable_gep_neutral: false,
            enable_binop_neutral: false,
            enable_commutative: false,
            enable_recurrences: false,
            enable_reductions: false,
            enable_joint: false,
            // Mismatching nodes are one of the two *base* kinds (Fig. 7b),
            // not a special node, so the ablation keeps them.
            ..RolagOptions::default()
        }
    }

    /// The default configuration with per-rewrite translation validation
    /// switched on (the `tv` pass spelling).
    pub fn validated() -> Self {
        RolagOptions {
            validate: true,
            ..RolagOptions::default()
        }
    }

    /// The default configuration with the lowered-size simulator driving
    /// profitability instead of the TTI estimate.
    pub fn measured() -> Self {
        RolagOptions {
            measured_cost: true,
            ..RolagOptions::default()
        }
    }

    /// The default configuration with a beam search of the given width
    /// (default rollout depth).
    pub fn searched(width: usize) -> Self {
        RolagOptions {
            search: SearchConfig::Beam {
                width,
                depth: SearchConfig::DEFAULT_DEPTH,
            },
            ..RolagOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = RolagOptions::default();
        assert!(o.enable_sequences && o.enable_reductions && o.enable_joint);
        assert_eq!(o.min_lanes, 2);
    }

    #[test]
    fn ablation_disables_special_nodes_only() {
        let o = RolagOptions::no_special_nodes();
        assert!(!o.enable_sequences && !o.enable_recurrences);
        assert!(o.cleanup);
        assert_eq!(o.min_lanes, 2);
    }

    #[test]
    fn search_spec_round_trips() {
        assert_eq!(SearchConfig::parse("greedy").unwrap(), SearchConfig::Greedy);
        assert_eq!(
            SearchConfig::parse("beam:4").unwrap(),
            SearchConfig::Beam {
                width: 4,
                depth: SearchConfig::DEFAULT_DEPTH
            }
        );
        assert_eq!(
            SearchConfig::parse("beam:2:7").unwrap(),
            SearchConfig::Beam { width: 2, depth: 7 }
        );
        for spec in ["greedy", "beam:4:4", "beam:2:7"] {
            let cfg = SearchConfig::parse(spec).unwrap();
            assert_eq!(SearchConfig::parse(&cfg.spec()).unwrap(), cfg);
        }
        assert!(SearchConfig::parse("beam:0").is_err());
        assert!(SearchConfig::parse("beam:x").is_err());
        assert!(SearchConfig::parse("dfs").is_err());
    }

    #[test]
    fn beam_width_one_is_not_a_beam() {
        assert!(!SearchConfig::Beam { width: 1, depth: 4 }.is_beam());
        assert!(SearchConfig::Beam { width: 2, depth: 4 }.is_beam());
        assert!(!SearchConfig::Greedy.is_beam());
    }

    #[test]
    fn search_is_part_of_the_debug_fingerprint() {
        // The memo/serve stores key entries on `format!("{opts:?}")`; two
        // configurations differing only in search must never share a slot.
        let greedy = RolagOptions::default();
        let beam = RolagOptions::searched(4);
        assert_ne!(format!("{greedy:?}"), format!("{beam:?}"));
    }
}
