//! Bottom-up alignment-graph construction (§IV-B, Fig. 6).
//!
//! Starting from a group of seed instructions, the builder follows use-def
//! chains towards operands, classifying each operand group as a matching,
//! identical, mismatching, or special node. Groups are memoized so shared
//! subgraphs become shared nodes (a DAG), and instructions are *claimed* by
//! the node lane that will regenerate them, which prevents one instruction
//! from being rolled into two different iterations.

use rolag_ir::{
    BlockId, Function, InstExtra, InstId, Module, NeutralElement, Opcode, TypeId, ValueDef, ValueId,
};

use crate::align::graph::{AlignGraph, AlignNode, NodeId, NodeKind};
use crate::options::RolagOptions;
use crate::seeds::Candidate;

/// Builds the alignment graph of a collected [`Candidate`] against `func`,
/// returning `None` when any root fails to build.
///
/// The builder mutates `func` only to intern constants, which is inert for
/// printing (the printer numbers instruction results by block layout and
/// prints constants by content) and idempotent, so callers may build
/// against the shared working function rather than a speculative clone.
pub fn build_candidate_graph(
    module: &Module,
    func: &mut Function,
    cand: &Candidate,
    opts: &RolagOptions,
) -> Option<AlignGraph> {
    let mut builder = GraphBuilder::new(module, func, cand.block(), opts, cand.lanes());
    let built = match cand {
        Candidate::Seeds { groups, .. } => {
            groups.iter().all(|g| builder.build_seed_root(g).is_some())
        }
        Candidate::Reduction {
            opcode,
            internal,
            leaves,
            carry,
            ty,
            ..
        } => builder
            .build_reduction_root(*opcode, internal.clone(), leaves, *carry, *ty)
            .is_some(),
    };
    built.then(|| builder.finish())
}

/// Builds an [`AlignGraph`] for groups of seed values inside one block.
pub struct GraphBuilder<'a> {
    module: &'a Module,
    /// Mutated only to intern constants (synthetic zeros / neutral
    /// elements).
    func: &'a mut Function,
    block: BlockId,
    opts: &'a RolagOptions,
    graph: AlignGraph,
}

impl<'a> GraphBuilder<'a> {
    /// Creates a builder for a graph with `lanes` iterations.
    pub fn new(
        module: &'a Module,
        func: &'a mut Function,
        block: BlockId,
        opts: &'a RolagOptions,
        lanes: usize,
    ) -> Self {
        GraphBuilder {
            module,
            func,
            block,
            opts,
            graph: AlignGraph::new(lanes),
        }
    }

    /// Consumes the builder, returning the graph.
    pub fn finish(self) -> AlignGraph {
        self.graph
    }

    /// Builds the graph rooted at a seed group (one value per lane) and
    /// registers it as a root. Returns `None` when the seeds do not form a
    /// matching node (seed groups are only useful if the seeds themselves
    /// align).
    pub fn build_seed_root(&mut self, group: &[ValueId]) -> Option<NodeId> {
        assert_eq!(group.len(), self.graph.lanes, "seed group lane mismatch");
        let id = self.build_group(group, None);
        match self.graph.node(id).kind {
            NodeKind::Match { .. } => {
                self.graph.roots.push(id);
                Some(id)
            }
            _ => None,
        }
    }

    /// Builds a reduction root (§IV-C5): `internal` are the tree's internal
    /// operations (all `opcode`), `leaves` its leaf values, which become the
    /// new seed group.
    pub fn build_reduction_root(
        &mut self,
        opcode: Opcode,
        internal: Vec<InstId>,
        leaves: &[ValueId],
        carry: Option<ValueId>,
        ty: TypeId,
    ) -> Option<NodeId> {
        assert_eq!(leaves.len(), self.graph.lanes, "leaf group lane mismatch");
        if !self.opts.enable_reductions {
            return None;
        }
        let child = self.build_group(leaves, None);
        // A reduction is only useful if its leaves align into real code.
        if !matches!(self.graph.node(child).kind, NodeKind::Match { .. }) {
            return None;
        }
        let node = self.graph.add_node(AlignNode {
            kind: NodeKind::Reduction {
                opcode,
                internal,
                carry,
                ty,
            },
            lanes: leaves.to_vec(),
            children: vec![child],
        });
        self.graph.roots.push(node);
        Some(node)
    }

    /// Classifies and builds the node for one group of values.
    fn build_group(&mut self, group: &[ValueId], parent: Option<NodeId>) -> NodeId {
        if let Some(&id) = self.graph.memo.get(group) {
            return id;
        }

        // 1. Identical values in every lane: loop-invariant.
        if group.iter().all(|&v| v == group[0]) {
            return self.leaf(group, NodeKind::Identical);
        }

        // 2. Integer-constant groups: sequence or mismatch (§IV-C1).
        if let Some(consts) = self.as_const_ints(group) {
            if self.opts.enable_sequences {
                if let Some((start, step)) = arithmetic_progression(&consts) {
                    let ty = self.func.value_ty(group[0], &self.module.types);
                    return self.leaf(group, NodeKind::Sequence { start, step, ty });
                }
            }
            return self.leaf(group, NodeKind::Mismatch);
        }

        // 3. Chained dependence (§IV-C4): the group is a one-lane-shifted
        //    view of some value-producing node already in the graph (in the
        //    common case, the parent the recursion came from — but a compare
        //    feeding a select chain reaches the same shifted group from a
        //    sibling, so the search covers the whole graph).
        if self.opts.enable_recurrences {
            let _ = parent;
            let target = self.graph.node_ids().find(|&t| {
                let tn = self.graph.node(t);
                matches!(
                    tn.kind,
                    NodeKind::Match { .. }
                        | NodeKind::GepNeutral { .. }
                        | NodeKind::BinOpNeutral { .. }
                ) && tn.lanes.len() == group.len()
                    && (1..group.len()).all(|k| group[k] == tn.lanes[k - 1])
            });
            if let Some(target) = target {
                let node = self.graph.add_node(AlignNode {
                    kind: NodeKind::Recurrence {
                        init: group[0],
                        target,
                    },
                    lanes: group.to_vec(),
                    children: vec![target],
                });
                self.graph.memo.insert(group.to_vec(), node);
                return node;
            }
        }

        // 4. Exactly matching instructions.
        if let Some(node) = self.try_match(group) {
            return node;
        }

        // 5. Neutral pointer operations (§IV-C2).
        if self.opts.enable_gep_neutral {
            if let Some(node) = self.try_gep_neutral(group) {
                return node;
            }
        }

        // 6. Neutral elements of binary operations (§IV-C3).
        if self.opts.enable_binop_neutral {
            if let Some(node) = self.try_binop_neutral(group) {
                return node;
            }
        }

        // 7. Give up: a mismatching node.
        self.leaf(group, NodeKind::Mismatch)
    }

    fn leaf(&mut self, group: &[ValueId], kind: NodeKind) -> NodeId {
        let node = self.graph.add_node(AlignNode {
            kind,
            lanes: group.to_vec(),
            children: Vec::new(),
        });
        self.graph.memo.insert(group.to_vec(), node);
        node
    }

    fn as_const_ints(&self, group: &[ValueId]) -> Option<Vec<i64>> {
        let ty0 = self.func.value_ty(group[0], &self.module.types);
        group
            .iter()
            .map(|&v| match self.func.value(v) {
                ValueDef::ConstInt { ty, value } if *ty == ty0 => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// Instruction lane eligible for rolling: a non-phi, non-terminator,
    /// non-alloca instruction of the target block, not yet claimed.
    fn rollable_inst(&self, v: ValueId) -> Option<InstId> {
        let inst = self.func.value(v).as_inst()?;
        let data = self.func.inst(inst);
        if data.block != self.block || !self.func.is_live(inst) {
            return None;
        }
        if data.opcode == Opcode::Phi
            || data.opcode == Opcode::Alloca
            || data.opcode.is_terminator()
        {
            return None;
        }
        if self.graph.claimed.contains_key(&inst) {
            return None;
        }
        Some(inst)
    }

    fn try_match(&mut self, group: &[ValueId]) -> Option<NodeId> {
        let insts: Vec<InstId> = group
            .iter()
            .map(|&v| self.rollable_inst(v))
            .collect::<Option<Vec<_>>>()?;
        // Lanes must be distinct instructions.
        for i in 0..insts.len() {
            for j in i + 1..insts.len() {
                if insts[i] == insts[j] {
                    return None;
                }
            }
        }
        let first = self.func.inst(insts[0]).clone();
        let opcode = first.opcode;
        for &i in &insts[1..] {
            let data = self.func.inst(i);
            if data.opcode != opcode
                || data.ty != first.ty
                || data.operands.len() != first.operands.len()
                || !extras_compatible(&first.extra, &data.extra)
            {
                return None;
            }
            for (a, b) in first.operands.iter().zip(&data.operands) {
                let ta = self.func.value_ty(*a, &self.module.types);
                let tb = self.func.value_ty(*b, &self.module.types);
                if ta != tb {
                    return None;
                }
            }
        }

        // Create the node first so claims and recurrence detection can see
        // it while the children are built.
        let node = self.graph.add_node(AlignNode {
            kind: NodeKind::Match { opcode },
            lanes: group.to_vec(),
            children: Vec::new(),
        });
        self.graph.memo.insert(group.to_vec(), node);
        for (lane, &i) in insts.iter().enumerate() {
            self.graph.claimed.insert(i, (node, lane));
        }

        let operand_groups = self.operand_groups(&insts, opcode);
        for og in operand_groups {
            let child = self.build_group(&og, Some(node));
            self.graph.node_mut(node).children.push(child);
        }
        Some(node)
    }

    /// Groups the operands of matched instructions by position, reordering
    /// commutative operands to maximize similarity (§IV-C3).
    fn operand_groups(&self, insts: &[InstId], opcode: Opcode) -> Vec<Vec<ValueId>> {
        let nops = self.func.inst(insts[0]).operands.len();
        let mut groups: Vec<Vec<ValueId>> = vec![Vec::with_capacity(insts.len()); nops];
        let reorder = self.opts.enable_commutative && opcode.is_commutative() && nops == 2;
        for (lane, &i) in insts.iter().enumerate() {
            let ops = &self.func.inst(i).operands;
            if reorder && lane > 0 {
                let (a, b) = (ops[0], ops[1]);
                let ref_a = groups[0][0];
                let ref_b = groups[1][0];
                let keep = self.similarity(a, ref_a) + self.similarity(b, ref_b);
                let swap = self.similarity(b, ref_a) + self.similarity(a, ref_b);
                if swap > keep {
                    groups[0].push(b);
                    groups[1].push(a);
                    continue;
                }
            }
            for (k, &op) in ops.iter().enumerate() {
                groups[k].push(op);
            }
        }
        groups
    }

    /// Cheap shape-similarity score used by commutative reordering.
    fn similarity(&self, a: ValueId, b: ValueId) -> i32 {
        if a == b {
            return 4;
        }
        match (self.func.value(a), self.func.value(b)) {
            (ValueDef::Inst(ia), ValueDef::Inst(ib)) => {
                if self.func.inst(*ia).opcode == self.func.inst(*ib).opcode {
                    3
                } else {
                    1
                }
            }
            (ValueDef::ConstInt { .. }, ValueDef::ConstInt { .. }) => 2,
            (ValueDef::Param { .. }, ValueDef::Param { .. }) => 2,
            _ => 0,
        }
    }

    /// Neutral pointer operations: a mix of `gep base, idx` lanes and bare
    /// `base` lanes becomes one `gep` whose index group gets a synthetic 0
    /// for the bare lanes (§IV-C2, Fig. 9).
    fn try_gep_neutral(&mut self, group: &[ValueId]) -> Option<NodeId> {
        #[derive(Clone, Copy)]
        enum Lane {
            Gep(InstId),
            Base,
        }
        let mut lanes = Vec::with_capacity(group.len());
        let mut base: Option<ValueId> = None;
        let mut elem_ty: Option<TypeId> = None;
        let mut gep_count = 0usize;
        for &v in group {
            if let Some(inst) = self.rollable_inst(v) {
                let data = self.func.inst(inst);
                if data.opcode == Opcode::Gep && data.operands.len() == 2 {
                    let InstExtra::Gep { elem_ty: ety } = data.extra else {
                        return None;
                    };
                    if *elem_ty.get_or_insert(ety) != ety {
                        return None;
                    }
                    if *base.get_or_insert(data.operands[0]) != data.operands[0] {
                        return None;
                    }
                    lanes.push(Lane::Gep(inst));
                    gep_count += 1;
                    continue;
                }
            }
            // Non-gep lane: must be the base pointer itself.
            match base {
                Some(b) if b != v => return None,
                _ => {
                    base = Some(v);
                }
            }
            lanes.push(Lane::Base);
        }
        let base = base?;
        let elem_ty = elem_ty?;
        if gep_count == 0 {
            return None;
        }
        // Bare lanes must actually be the base (re-check first lanes seen
        // before the base was pinned by a gep).
        for (lane, &v) in lanes.iter().zip(group) {
            if matches!(lane, Lane::Base) && v != base {
                return None;
            }
        }
        // All gep index operands must share one integer type.
        let mut idx_ty: Option<TypeId> = None;
        for l in &lanes {
            if let Lane::Gep(i) = l {
                let t = self
                    .func
                    .value_ty(self.func.inst(*i).operands[1], &self.module.types);
                if *idx_ty.get_or_insert(t) != t {
                    return None;
                }
            }
        }
        let idx_ty = idx_ty?;

        let node = self.graph.add_node(AlignNode {
            kind: NodeKind::GepNeutral { elem_ty },
            lanes: group.to_vec(),
            children: Vec::new(),
        });
        self.graph.memo.insert(group.to_vec(), node);
        for (k, l) in lanes.iter().enumerate() {
            if let Lane::Gep(i) = l {
                self.graph.claimed.insert(*i, (node, k));
            }
        }
        let zero = self.func.const_int(idx_ty, 0);
        let base_group: Vec<ValueId> = vec![base; group.len()];
        let idx_group: Vec<ValueId> = lanes
            .iter()
            .map(|l| match l {
                Lane::Gep(i) => self.func.inst(*i).operands[1],
                Lane::Base => zero,
            })
            .collect();
        let base_child = self.build_group(&base_group, Some(node));
        let idx_child = self.build_group(&idx_group, Some(node));
        self.graph.node_mut(node).children = vec![base_child, idx_child];
        Some(node)
    }

    /// Neutral elements of binary operations: the most frequent binop
    /// becomes the node's operation; other lanes are padded as
    /// `value ⊕ neutral` (§IV-C3).
    fn try_binop_neutral(&mut self, group: &[ValueId]) -> Option<NodeId> {
        // Find the most frequent eligible opcode among instruction lanes.
        let mut counts: Vec<(Opcode, usize)> = Vec::new();
        for &v in group {
            if let Some(inst) = self.rollable_inst(v) {
                let op = self.func.inst(inst).opcode;
                if op.is_binop() && op.neutral_element().is_some() {
                    match counts.iter_mut().find(|(o, _)| *o == op) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((op, 1)),
                    }
                }
            }
        }
        let (opcode, count) = counts.into_iter().max_by_key(|&(_, c)| c)?;
        if count < 2 || count == group.len() {
            // All-same-opcode groups were already rejected by `try_match`
            // for structural reasons; padding cannot help them.
            return None;
        }
        let ty = self.func.value_ty(group[0], &self.module.types);
        // Every lane must produce the same type as the operation.
        for &v in group {
            if self.func.value_ty(v, &self.module.types) != ty {
                return None;
            }
        }
        let neutral = self.neutral_const(opcode, ty)?;

        #[derive(Clone, Copy)]
        enum Lane {
            Op(InstId),
            Other,
        }
        let lanes: Vec<Lane> = group
            .iter()
            .map(|&v| match self.rollable_inst(v) {
                Some(i) if self.func.inst(i).opcode == opcode => Lane::Op(i),
                _ => Lane::Other,
            })
            .collect();

        let node = self.graph.add_node(AlignNode {
            kind: NodeKind::BinOpNeutral { opcode, ty },
            lanes: group.to_vec(),
            children: Vec::new(),
        });
        self.graph.memo.insert(group.to_vec(), node);
        for (k, l) in lanes.iter().enumerate() {
            if let Lane::Op(i) = l {
                self.graph.claimed.insert(*i, (node, k));
            }
        }
        let lhs: Vec<ValueId> = lanes
            .iter()
            .zip(group)
            .map(|(l, &v)| match l {
                Lane::Op(i) => self.func.inst(*i).operands[0],
                Lane::Other => v,
            })
            .collect();
        let rhs: Vec<ValueId> = lanes
            .iter()
            .zip(group)
            .map(|(l, _)| match l {
                Lane::Op(i) => self.func.inst(*i).operands[1],
                Lane::Other => neutral,
            })
            .collect();
        let lhs_child = self.build_group(&lhs, Some(node));
        let rhs_child = self.build_group(&rhs, Some(node));
        self.graph.node_mut(node).children = vec![lhs_child, rhs_child];
        Some(node)
    }

    fn neutral_const(&mut self, opcode: Opcode, ty: TypeId) -> Option<ValueId> {
        let types = &self.module.types;
        Some(match opcode.neutral_element()? {
            NeutralElement::Zero if types.is_int(ty) => self.func.const_int(ty, 0),
            NeutralElement::One if types.is_int(ty) => self.func.const_int(ty, 1),
            NeutralElement::AllOnes if types.is_int(ty) => self.func.const_int(ty, -1),
            NeutralElement::FZero if types.is_float(ty) => self.func.const_float(ty, 0.0),
            NeutralElement::FOne if types.is_float(ty) => self.func.const_float(ty, 1.0),
            _ => return None,
        })
    }
}

fn extras_compatible(a: &InstExtra, b: &InstExtra) -> bool {
    match (a, b) {
        (InstExtra::None, InstExtra::None) => true,
        (InstExtra::Icmp(x), InstExtra::Icmp(y)) => x == y,
        (InstExtra::Fcmp(x), InstExtra::Fcmp(y)) => x == y,
        (InstExtra::Gep { elem_ty: x }, InstExtra::Gep { elem_ty: y }) => x == y,
        (InstExtra::Call { callee: x }, InstExtra::Call { callee: y }) => x == y,
        _ => false,
    }
}

/// Detects `S_i = S_0 + i*(S_1 - S_0)` with a non-zero common difference.
fn arithmetic_progression(consts: &[i64]) -> Option<(i64, i64)> {
    if consts.len() < 2 {
        return None;
    }
    let step = consts[1].checked_sub(consts[0])?;
    if step == 0 {
        return None;
    }
    for w in consts.windows(2) {
        if w[1].checked_sub(w[0])? != step {
            return None;
        }
    }
    Some((consts[0], step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn build_from_stores(text: &str) -> (Module, AlignGraph) {
        let module = parse_module(text).unwrap();
        let fid = module.func_by_name("f").unwrap();
        let mut func = module.func(fid).clone();
        let block = func.entry_block();
        let seeds: Vec<ValueId> = func
            .block(block)
            .insts
            .iter()
            .filter(|&&i| func.inst(i).opcode == Opcode::Store)
            .map(|&i| func.inst_result(i))
            .collect();
        let opts = RolagOptions::default();
        let mut b = GraphBuilder::new(&module, &mut func, block, &opts, seeds.len());
        let root = b.build_seed_root(&seeds);
        assert!(root.is_some(), "seed stores should match");
        (module.clone(), b.finish())
    }

    #[test]
    fn simple_store_sequence_aligns() {
        // Fig. 7: three stores of constants 5, 1, 0 to ptr[0..2].
        let (_m, g) = build_from_stores(
            r#"
module "t"
func @f(ptr %p0) -> void {
entry:
  %a = gep i32, %p0, i64 0
  store i32 5, %a
  %b = gep i32, %p0, i64 1
  store i32 1, %b
  %c = gep i32, %p0, i64 2
  store i32 0, %c
  ret
}
"#,
        );
        let kinds = g.count_kinds();
        assert_eq!(kinds.matching, 2, "store node + gep node");
        assert_eq!(kinds.mismatching, 1, "the 5,1,0 constants");
        assert_eq!(kinds.sequence, 1, "the 0,1,2 indices");
        assert_eq!(kinds.identical, 1, "the base pointer");
        assert_eq!(g.graph_insts().len(), 6);
    }

    #[test]
    fn arithmetic_progression_detection() {
        assert_eq!(arithmetic_progression(&[0, 16, 32, 48, 64]), Some((0, 16)));
        assert_eq!(arithmetic_progression(&[5, 4, 3, 2]), Some((5, -1)));
        assert_eq!(arithmetic_progression(&[1, 2, 4]), None);
        assert_eq!(arithmetic_progression(&[7, 7, 7]), None);
    }

    #[test]
    fn gep_neutral_unifies_base_and_offsets() {
        // Fig. 9: stores to p, p+16, p+32 (bytes).
        let (_m, g) = build_from_stores(
            r#"
module "t"
func @f(ptr %p0) -> void {
entry:
  store i64 1, %p0
  %b = gep i8, %p0, i64 16
  store i64 2, %b
  %c = gep i8, %p0, i64 32
  store i64 3, %c
  ret
}
"#,
        );
        let kinds = g.count_kinds();
        assert_eq!(kinds.gep_neutral, 1);
        // Two sequences: byte offsets 0,16,32 (with the synthetic zero) and
        // the stored values 1,2,3.
        assert_eq!(kinds.sequence, 2);
        assert_eq!(kinds.mismatching, 0);
    }

    #[test]
    fn binop_neutral_pads_missing_ops() {
        // Lanes: add(x,1), x, add(y,3) -> add node with neutral 0 on lane 1.
        let (_m, g) = build_from_stores(
            r#"
module "t"
func @f(ptr %p0, i32 %p1, i32 %p2) -> void {
entry:
  %v0 = add i32 %p1, i32 1
  %a = gep i32, %p0, i64 0
  store %v0, %a
  %b = gep i32, %p0, i64 1
  store %p1, %b
  %v2 = add i32 %p2, i32 3
  %c = gep i32, %p0, i64 2
  store %v2, %c
  ret
}
"#,
        );
        let kinds = g.count_kinds();
        assert_eq!(kinds.binop_neutral, 1);
        // rhs group 1, 0, 3 is a mismatch; lhs group p1, p1, p2 too.
        assert!(kinds.mismatching >= 2);
    }

    #[test]
    fn commutative_reordering_recovers_alignment() {
        // mul(x, load) vs mul(load, x): positions differ; reordering aligns.
        let (_m, g) = build_from_stores(
            r#"
module "t"
global @a : [4 x i32] = zero
func @f(ptr %p0, i32 %p1) -> void {
entry:
  %q0 = gep i32, @a, i64 0
  %l0 = load i32, %q0
  %v0 = mul i32 %p1, %l0
  %s0 = gep i32, %p0, i64 0
  store %v0, %s0
  %q1 = gep i32, @a, i64 1
  %l1 = load i32, %q1
  %v1 = mul i32 %l1, %p1
  %s1 = gep i32, %p0, i64 1
  store %v1, %s1
  ret
}
"#,
        );
        let kinds = g.count_kinds();
        // With reordering, the mul operands align as (p1-identical,
        // load-match); without it, both operand groups would mismatch.
        assert_eq!(kinds.matching, 5, "store, store-gep, mul, load, load-gep");
        assert_eq!(kinds.mismatching, 0);
    }

    #[test]
    fn disabled_options_fall_back_to_mismatch() {
        let module = parse_module(
            r#"
module "t"
func @f(ptr %p0) -> void {
entry:
  %a = gep i32, %p0, i64 0
  store i32 5, %a
  %b = gep i32, %p0, i64 1
  store i32 6, %b
  ret
}
"#,
        )
        .unwrap();
        let fid = module.func_by_name("f").unwrap();
        let mut func = module.func(fid).clone();
        let block = func.entry_block();
        let seeds: Vec<ValueId> = func
            .block(block)
            .insts
            .iter()
            .filter(|&&i| func.inst(i).opcode == Opcode::Store)
            .map(|&i| func.inst_result(i))
            .collect();
        let opts = RolagOptions::no_special_nodes();
        let mut b = GraphBuilder::new(&module, &mut func, block, &opts, seeds.len());
        b.build_seed_root(&seeds).unwrap();
        let g = b.finish();
        let kinds = g.count_kinds();
        assert_eq!(kinds.sequence, 0);
        // Indices 0,1 and constants 5,6 both degrade to mismatches.
        assert_eq!(kinds.mismatching, 2);
    }
}
