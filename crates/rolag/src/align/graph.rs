//! Alignment-graph data structures (§IV-B, Fig. 7).

use std::collections::{HashMap, HashSet};

use rolag_ir::{InstId, Opcode, TypeId, ValueId};

use crate::stats::NodeKindCounts;

/// Index of a node inside an [`AlignGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Classification of an alignment-graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Isomorphic instructions merged into one loop-body instruction.
    Match {
        /// Common opcode.
        opcode: Opcode,
    },
    /// The same value in every lane (loop-invariant); used directly.
    Identical,
    /// Differing values, loaded from an array inside the loop (Fig. 14).
    Mismatch,
    /// `start .. start + (lanes-1)*step, step` — a monotonic integer
    /// sequence represented as a function of the induction variable
    /// (§IV-C1, Fig. 8).
    Sequence {
        /// First element.
        start: i64,
        /// Common difference.
        step: i64,
        /// Integer type of the elements.
        ty: TypeId,
    },
    /// Mixed group of `gep`s off one base pointer and the bare base pointer
    /// itself, unified through `p + 0 == p` (§IV-C2, Fig. 9).
    GepNeutral {
        /// Element type of the unified `gep`.
        elem_ty: TypeId,
    },
    /// Mixed group unified through the neutral element of the dominant
    /// binary operation (§IV-C3).
    BinOpNeutral {
        /// Dominant opcode.
        opcode: Opcode,
        /// Operand/result type.
        ty: TypeId,
    },
    /// Chained dependence lowered to a phi (§IV-C4, Fig. 10).
    Recurrence {
        /// Value entering the chain at the first iteration.
        init: ValueId,
        /// The node whose previous-iteration value feeds the chain.
        target: NodeId,
    },
    /// A reduction tree collapsed into an accumulator (§IV-C5, Fig. 11).
    Reduction {
        /// Associative (and here commutative) operation.
        opcode: Opcode,
        /// The internal tree instructions (deleted when rolling).
        internal: Vec<InstId>,
        /// Incoming accumulator value, if the tree is a carried chain; the
        /// rolled phi initializes from it instead of the neutral element.
        carry: Option<ValueId>,
        /// Element/accumulator type.
        ty: TypeId,
    },
}

/// Candidate-level annotations for [`AlignGraph::to_dot_with`].
#[derive(Debug, Clone, Default)]
pub struct DotInfo {
    /// Measured code size (bytes) of the speculative rolled function.
    pub score: Option<u64>,
    /// Translation-validator verdict for the candidate (`proved`, or the
    /// rejection's error text).
    pub verdict: Option<String>,
}

/// One alignment-graph node: a classification, the per-lane values it
/// represents, and its operand children.
#[derive(Debug, Clone)]
pub struct AlignNode {
    /// Node classification.
    pub kind: NodeKind,
    /// One value per lane (per rolled-loop iteration).
    pub lanes: Vec<ValueId>,
    /// Child node per operand position (meaning depends on `kind`).
    pub children: Vec<NodeId>,
}

/// The alignment graph: a DAG over groups of values, with one or more roots
/// (several roots = the joint-node case of §IV-C6, emitted in order).
#[derive(Debug, Clone)]
pub struct AlignGraph {
    /// Number of lanes = iterations of the rolled loop.
    pub lanes: usize,
    nodes: Vec<AlignNode>,
    /// Roots in emission order.
    pub roots: Vec<NodeId>,
    pub(crate) memo: HashMap<Vec<ValueId>, NodeId>,
    /// Instructions claimed by a node lane: inst -> (node, lane index).
    pub(crate) claimed: HashMap<InstId, (NodeId, usize)>,
}

impl AlignGraph {
    /// Creates an empty graph with the given lane count.
    pub fn new(lanes: usize) -> Self {
        AlignGraph {
            lanes,
            nodes: Vec::new(),
            roots: Vec::new(),
            memo: HashMap::new(),
            claimed: HashMap::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: AlignNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &AlignNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to the node with id `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut AlignNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Which node/lane claimed `inst`, if any.
    pub fn claim_of(&self, inst: InstId) -> Option<(NodeId, usize)> {
        self.claimed.get(&inst).copied()
    }

    /// The set of instructions the rolled loop replaces (claimed lanes plus
    /// reduction-tree internals).
    pub fn graph_insts(&self) -> HashSet<InstId> {
        let mut set: HashSet<InstId> = self.claimed.keys().copied().collect();
        for n in &self.nodes {
            if let NodeKind::Reduction { internal, .. } = &n.kind {
                set.extend(internal.iter().copied());
            }
        }
        set
    }

    /// Deterministic emission order: post-order under each root, roots in
    /// sequence. Shared by the scheduler (to validate memory order) and the
    /// code generator (to emit the loop body).
    pub fn emission_order(&self) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut on_path = vec![false; self.nodes.len()];
        for &r in &self.roots {
            self.post_order(r, &mut visited, &mut on_path, &mut order);
        }
        order
    }

    fn post_order(
        &self,
        n: NodeId,
        visited: &mut [bool],
        on_path: &mut [bool],
        order: &mut Vec<NodeId>,
    ) {
        if visited[n.index()] || on_path[n.index()] {
            return; // visited, or a recurrence back-edge
        }
        on_path[n.index()] = true;
        for &c in &self.node(n).children.clone() {
            self.post_order(c, visited, on_path, order);
        }
        on_path[n.index()] = false;
        visited[n.index()] = true;
        order.push(n);
    }

    /// Renders the graph in Graphviz `dot` syntax for debugging: one box
    /// per node labelled with its kind and lane count, edges to operand
    /// children (recurrence back edges dashed).
    pub fn to_dot(&self) -> String {
        self.to_dot_with(&DotInfo::default())
    }

    /// [`AlignGraph::to_dot`] with caller-supplied candidate annotations:
    /// the beam search attaches its measured score and the translation
    /// validator's verdict as a graph-level banner, so a rejected
    /// candidate's dump says *why* it was rejected and what it would have
    /// cost.
    pub fn to_dot_with(&self, info: &DotInfo) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph align {\n  rankdir=BT;\n");
        let mut banner = Vec::new();
        if let Some(score) = info.score {
            banner.push(format!("score={score}B"));
        }
        if let Some(verdict) = &info.verdict {
            banner.push(format!("tv={verdict}"));
        }
        if !banner.is_empty() {
            let _ = writeln!(
                out,
                "  label=\"{}\";\n  labelloc=t;",
                banner.join(" ").replace('"', "'")
            );
        }
        for id in self.node_ids() {
            let n = self.node(id);
            let label = match &n.kind {
                NodeKind::Match { opcode } => format!("match:{}", opcode.mnemonic()),
                NodeKind::Identical => "identical".to_string(),
                NodeKind::Mismatch => "mismatch".to_string(),
                NodeKind::Sequence { start, step, .. } => {
                    format!("seq {start}..,{step}")
                }
                NodeKind::GepNeutral { .. } => "gep+0".to_string(),
                NodeKind::BinOpNeutral { opcode, .. } => {
                    format!("{}+neutral", opcode.mnemonic())
                }
                NodeKind::Recurrence { .. } => "recurrence".to_string(),
                NodeKind::Reduction { opcode, .. } => {
                    format!("reduce:{}", opcode.mnemonic())
                }
            };
            let shape = match &n.kind {
                NodeKind::Match { .. } => "box",
                NodeKind::Mismatch => "octagon",
                _ => "ellipse",
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{} x{}\", shape={}];",
                id.index(),
                label,
                n.lanes.len(),
                shape
            );
            for &c in &n.children {
                let style = if matches!(n.kind, NodeKind::Recurrence { .. }) {
                    " [style=dashed]"
                } else {
                    ""
                };
                let _ = writeln!(out, "  n{} -> n{}{};", id.index(), c.index(), style);
            }
        }
        for &r in &self.roots {
            let _ = writeln!(out, "  n{} [penwidth=2];", r.index());
        }
        out.push_str("}\n");
        out
    }

    /// Counts node kinds (for the Fig. 16 / Fig. 19 breakdowns).
    pub fn count_kinds(&self) -> NodeKindCounts {
        let mut c = NodeKindCounts::default();
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Match { .. } => c.matching += 1,
                NodeKind::Identical => c.identical += 1,
                NodeKind::Mismatch => c.mismatching += 1,
                NodeKind::Sequence { .. } => c.sequence += 1,
                NodeKind::GepNeutral { .. } => c.gep_neutral += 1,
                NodeKind::BinOpNeutral { .. } => c.binop_neutral += 1,
                NodeKind::Recurrence { .. } => c.recurrence += 1,
                NodeKind::Reduction { .. } => c.reduction += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: NodeKind) -> AlignNode {
        AlignNode {
            kind,
            lanes: Vec::new(),
            children: Vec::new(),
        }
    }

    #[test]
    fn emission_order_is_post_order() {
        let mut g = AlignGraph::new(2);
        let a = g.add_node(leaf(NodeKind::Identical));
        let b = g.add_node(leaf(NodeKind::Mismatch));
        let root = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Add,
            },
            lanes: Vec::new(),
            children: vec![a, b],
        });
        g.roots.push(root);
        assert_eq!(g.emission_order(), vec![a, b, root]);
    }

    #[test]
    fn shared_children_emitted_once() {
        let mut g = AlignGraph::new(2);
        let shared = g.add_node(leaf(NodeKind::Identical));
        let l = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Add,
            },
            lanes: Vec::new(),
            children: vec![shared],
        });
        let r = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Mul,
            },
            lanes: Vec::new(),
            children: vec![shared],
        });
        g.roots.extend([l, r]);
        assert_eq!(g.emission_order(), vec![shared, l, r]);
    }

    #[test]
    fn recurrence_cycle_does_not_loop_forever() {
        let mut g = AlignGraph::new(3);
        // root -> rec -> root (cycle through the recurrence back edge).
        let root_placeholder = NodeId(1);
        let rec = g.add_node(AlignNode {
            kind: NodeKind::Recurrence {
                init: rolag_ir::ValueId::from_index(0),
                target: root_placeholder,
            },
            lanes: Vec::new(),
            children: vec![root_placeholder],
        });
        let root = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Call,
            },
            lanes: Vec::new(),
            children: vec![rec],
        });
        assert_eq!(root, root_placeholder);
        g.roots.push(root);
        assert_eq!(g.emission_order(), vec![rec, root]);
    }

    #[test]
    fn dot_output_contains_every_node_and_edge() {
        let mut g = AlignGraph::new(3);
        let seq = g.add_node(leaf(NodeKind::Sequence {
            start: 0,
            step: 4,
            ty: rolag_ir::TypeStore::new().i64(),
        }));
        let root = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Store,
            },
            lanes: Vec::new(),
            children: vec![seq],
        });
        g.roots.push(root);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph align"));
        assert!(dot.contains("match:store"));
        assert!(dot.contains("seq 0..,4"));
        assert!(dot.contains("n1 -> n0"));
        assert!(dot.contains("penwidth=2"));
    }

    /// Byte-exact golden over a graph holding every node kind: any change
    /// to the dot rendering — a relabelled kind, a dropped edge style, a
    /// reshuffled attribute — must be made consciously, here.
    #[test]
    fn dot_golden_covers_every_node_kind() {
        let types = rolag_ir::TypeStore::new();
        let i32t = types.i32();
        let mut g = AlignGraph::new(4);
        let seq = g.add_node(leaf(NodeKind::Sequence {
            start: 2,
            step: 3,
            ty: i32t,
        }));
        let ident = g.add_node(leaf(NodeKind::Identical));
        let mis = g.add_node(leaf(NodeKind::Mismatch));
        let gep = g.add_node(AlignNode {
            kind: NodeKind::GepNeutral { elem_ty: i32t },
            lanes: Vec::new(),
            children: vec![seq],
        });
        let neutral = g.add_node(AlignNode {
            kind: NodeKind::BinOpNeutral {
                opcode: Opcode::Add,
                ty: i32t,
            },
            lanes: Vec::new(),
            children: vec![ident],
        });
        let red = g.add_node(AlignNode {
            kind: NodeKind::Reduction {
                opcode: Opcode::Add,
                internal: Vec::new(),
                carry: None,
                ty: i32t,
            },
            lanes: Vec::new(),
            children: vec![mis],
        });
        let root_placeholder = NodeId(7);
        let rec = g.add_node(AlignNode {
            kind: NodeKind::Recurrence {
                init: rolag_ir::ValueId::from_index(0),
                target: root_placeholder,
            },
            lanes: Vec::new(),
            children: vec![root_placeholder],
        });
        let root = g.add_node(AlignNode {
            kind: NodeKind::Match {
                opcode: Opcode::Store,
            },
            lanes: Vec::new(),
            children: vec![gep, neutral, red, rec],
        });
        assert_eq!(root, root_placeholder);
        g.roots.push(root);

        let expected = "\
digraph align {
  rankdir=BT;
  label=\"score=25B tv=loop body references an unclaimed value\";
  labelloc=t;
  n0 [label=\"seq 2..,3 x0\", shape=ellipse];
  n1 [label=\"identical x0\", shape=ellipse];
  n2 [label=\"mismatch x0\", shape=octagon];
  n3 [label=\"gep+0 x0\", shape=ellipse];
  n3 -> n0;
  n4 [label=\"add+neutral x0\", shape=ellipse];
  n4 -> n1;
  n5 [label=\"reduce:add x0\", shape=ellipse];
  n5 -> n2;
  n6 [label=\"recurrence x0\", shape=ellipse];
  n6 -> n7 [style=dashed];
  n7 [label=\"match:store x0\", shape=box];
  n7 -> n3;
  n7 -> n4;
  n7 -> n5;
  n7 -> n6;
  n7 [penwidth=2];
}
";
        // The golden is the *annotated* rendering; the plain `to_dot` is
        // the same text minus the two banner lines.
        let info = DotInfo {
            score: Some(25),
            verdict: Some("loop body references an unclaimed value".into()),
        };
        assert_eq!(g.to_dot_with(&info), expected, "dot golden drifted");
        assert_eq!(
            g.to_dot(),
            expected.replace(
                "  label=\"score=25B tv=loop body references an unclaimed value\";\n  labelloc=t;\n",
                ""
            ),
            "plain dot must be the annotated dot minus the banner"
        );
    }

    #[test]
    fn kind_counting() {
        let mut g = AlignGraph::new(2);
        g.add_node(leaf(NodeKind::Identical));
        g.add_node(leaf(NodeKind::Mismatch));
        g.add_node(leaf(NodeKind::Sequence {
            start: 0,
            step: 1,
            ty: rolag_ir::TypeStore::new().i32(),
        }));
        let c = g.count_kinds();
        assert_eq!(c.identical, 1);
        assert_eq!(c.mismatching, 1);
        assert_eq!(c.sequence, 1);
        assert_eq!(c.total(), 3);
    }
}
