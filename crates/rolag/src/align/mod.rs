//! Alignment graphs: data structures and the bottom-up builder (§IV-B/C).

mod build;
mod graph;

pub use build::{build_candidate_graph, GraphBuilder};
pub use graph::{AlignGraph, AlignNode, DotInfo, NodeId, NodeKind};
