//! Validator-gated beam search over rolling alignments (ROADMAP item 5).
//!
//! The paper's engine is greedy: one seed grouping per region, first
//! profitable candidate wins. This module drives a bounded beam over
//! *alternative* alignment choices — the base groupings plus the
//! permutations, splits, and trims enumerated by
//! [`crate::seeds::candidate_variants`] — and lets verification, not
//! conservatism, guarantee safety: every speculated candidate is gated
//! through the `rolag-tv` translation validator before the cost model may
//! shortlist it, regardless of `RolagOptions::validate`.
//!
//! Shape of one fixpoint step (width `k`, rollout depth `d`):
//!
//! 1. **Speculate** every candidate on the working function's journal
//!    ([`rolag_ir::Function::snapshot`] / `rollback` — no clone per
//!    candidate), validate it, and score the survivor with the cost model
//!    (`new text size + added rodata`).
//! 2. **Shortlist** the `k` best profitable candidates (ties broken by
//!    enumeration order; dropped profitable candidates count as beam
//!    prunes).
//! 3. **Roll out** each shortlisted candidate on a clone: commit it, then
//!    run up to `d` greedy continuation commits, and score the end state
//!    (`d = 0` means roll out to the dry fixpoint).
//! 4. **Commit** the candidate with the best rollout score on the real
//!    working function.
//!
//! The search is deterministic end to end: candidate enumeration order,
//! shortlist ordering, and tie-breaks are all fixed, so `rolag-serve` and
//! `roll_module_par` replay byte-identically (the search configuration is
//! part of the memo-store options fingerprint).
//!
//! **Monotonicity against greedy is enforced by construction**: the
//! function-level driver runs the greedy engine first, then the beam, and
//! adopts the beam result only when it is strictly smaller under the
//! lowered-size measurement ([`rolag_lower::measure_function`], plus added
//! rodata as a tie-break). A beam can therefore explore aggressively and
//! still never regress a function (`tests/search_conformance.rs`).

use rolag_ir::{Effects, FuncId, Function, GlobalData, GlobalId, Module};
use rolag_transforms::cleanup_in_place;

use crate::codegen;
use crate::options::{RolagOptions, SearchConfig};
use crate::pass::{
    analyze_schedule, build_graph, fresh_function_size, rewrite_hints, rollback_globals, timed,
};
use crate::seeds::{candidate_variants, collect_candidates, Candidate};
use crate::stats::RolagStats;

/// One beam-explored speculation the translation validator refused,
/// captured as printed modules for the dynamic cross-check in
/// `tests/tv_false_rejects.rs`: the validator is one-sided (it may
/// false-reject but must never accept a miscompile), so every rejected
/// rewrite must still be behaviourally equivalent to its pre-speculation
/// state.
pub struct RejectedSpeculation {
    /// Name of the function being searched.
    pub func: String,
    /// The module printed with the pre-speculation function in place.
    pub before: String,
    /// The module printed with the rejected speculative rewrite in place
    /// (raw codegen output, pre-cleanup — exactly what the validator saw),
    /// with the speculation's globals still live.
    pub after: String,
    /// The candidate's alignment graph in Graphviz `dot` syntax, annotated
    /// with the speculation's measured score and the validator's verdict
    /// ([`crate::AlignGraph::to_dot_with`]).
    pub dot: String,
}

/// Collects every TV-rejected beam speculation for offline auditing. Only
/// the audited entry points pay the capture cost (two module clones and
/// prints per reject); the production engine skips it entirely.
#[derive(Default)]
pub struct SearchAudit {
    /// Rejected speculations in exploration order.
    pub rejects: Vec<RejectedSpeculation>,
}

/// Per-function context threaded through the search stages.
struct SearchCx<'a> {
    id: FuncId,
    opts: &'a RolagOptions,
    effects: &'a [Effects],
}

/// Runs the beam-search engine on one function. Called from
/// [`crate::pass::roll_function_with`] when `opts.search` is a beam of
/// width >= 2; width-1 beams never reach here (they fall through to the
/// greedy body, which makes `beam:1` identical to greedy by construction).
pub fn search_function_with(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
) -> RolagStats {
    search_function_impl(module, id, opts, effects, None)
}

/// [`search_function_with`] with TV-reject auditing: every beam-explored
/// candidate the validator refuses is captured into `audit` for dynamic
/// cross-checking. Test-facing; the result is byte-identical to the
/// unaudited engine.
pub fn search_function_audited(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
    audit: &mut SearchAudit,
) -> RolagStats {
    search_function_impl(module, id, opts, effects, Some(audit))
}

fn search_function_impl(
    module: &mut Module,
    id: FuncId,
    opts: &RolagOptions,
    effects: &[Effects],
    audit: Option<&mut SearchAudit>,
) -> RolagStats {
    let SearchConfig::Beam { width, depth } = opts.search else {
        // Greedy spelled through the search entry point: delegate.
        return crate::pass::roll_function_with(module, id, opts, effects);
    };
    if module.func(id).is_declaration {
        return RolagStats::default();
    }

    let orig = module.func(id).clone();
    let base_globals = module.num_globals();

    // Greedy trial first: its result is the floor the beam must beat.
    let greedy_opts = RolagOptions {
        search: SearchConfig::Greedy,
        ..opts.clone()
    };
    let greedy_stats = crate::pass::roll_function_with(module, id, &greedy_opts, effects);
    let greedy_func = module.func(id).clone();
    let greedy_text = rolag_lower::measure_function(module, &greedy_func) as u64;
    let greedy_rodata = added_rodata(module, base_globals);
    let greedy_globals: Vec<GlobalData> = (base_globals..module.num_globals())
        .map(|i| module.global(GlobalId::from_index(i)).clone())
        .collect();

    // Rewind to the original and run the beam from the same start state, so
    // both trials mint identical fresh-global names deterministically.
    rollback_globals(module, base_globals);
    module.replace_func(id, orig);

    let cx = SearchCx { id, opts, effects };
    let mut beam_stats = beam_roll(module, &cx, width, depth, audit);
    let beam_text = rolag_lower::measure_function(module, module.func(id)) as u64;
    let beam_rodata = added_rodata(module, base_globals);

    // Adopt the beam result only when strictly smaller: first on measured
    // text bytes (the per-function monotonicity the conformance suite
    // pins), then on added rodata as the tie-break.
    let adopt =
        beam_text < greedy_text || (beam_text == greedy_text && beam_rodata < greedy_rodata);
    if adopt {
        beam_stats.search.adopted += 1;
        return beam_stats;
    }
    // Reinstall the greedy result. Globals are positional and append-only,
    // so popping the beam's and re-adding the greedy trial's captured
    // `GlobalData` in order reproduces the greedy ids and names exactly.
    rollback_globals(module, base_globals);
    for g in greedy_globals {
        module.add_global(g);
    }
    module.replace_func(id, greedy_func);
    let mut out = greedy_stats;
    out.search = beam_stats.search;
    out.search.adopted = 0;
    out.timings += beam_stats.timings;
    out
}

/// Sum of `global_size` over the globals appended past `base`.
fn added_rodata(module: &Module, base: usize) -> u64 {
    (base..module.num_globals())
        .map(|i| module.global_size(GlobalId::from_index(i)))
        .sum()
}

/// A profitable, validated speculation kept for rollout scoring.
struct Scored {
    cand: Candidate,
    /// Speculated size (`new text + added rodata`); the shortlist key.
    new_size: u64,
    /// Enumeration index; the deterministic tie-break.
    seq: usize,
}

/// The beam fixpoint over one function.
fn beam_roll(
    module: &mut Module,
    cx: &SearchCx,
    width: usize,
    depth: usize,
    mut audit: Option<&mut SearchAudit>,
) -> RolagStats {
    let opts = cx.opts;
    let mut stats = RolagStats::default();
    let mut work = module.func(cx.id).clone();
    // The validator needs the pre-speculation function while candidates
    // mutate `work` in place under the journal; one reference clone per
    // *commit* (not per candidate) stands in for it, caught up on interned
    // constants before each speculation window.
    let mut reference = work.clone();
    stats.size_before = timed(&mut stats.timings.cost_ns, || {
        fresh_function_size(module, &work, opts)
    });

    loop {
        let candidates = timed(&mut stats.timings.seeds_ns, || {
            let base = collect_candidates(module, &work, opts);
            let mut all = Vec::with_capacity(base.len() * 2);
            for c in base {
                let variants = candidate_variants(module, &work, &c, opts);
                all.push(c);
                for v in variants {
                    if !all.contains(&v) {
                        all.push(v);
                    }
                }
            }
            all
        });
        let old_size = timed(&mut stats.timings.cost_ns, || {
            fresh_function_size(module, &work, opts)
        });

        // Phase 1: speculate and score every candidate.
        let mut scored: Vec<Scored> = Vec::new();
        for (seq, cand) in candidates.into_iter().enumerate() {
            if cand.lanes() < opts.min_lanes {
                stats.rejected_lanes += 1;
                continue;
            }
            stats.attempted += 1;
            stats.search.explored += 1;
            match speculate(
                module,
                &mut work,
                &mut reference,
                &cand,
                cx,
                &mut stats,
                audit.as_deref_mut(),
            ) {
                Speculation::Scored { new_size } if new_size < old_size => {
                    scored.push(Scored {
                        cand,
                        new_size,
                        seq,
                    });
                }
                Speculation::Scored { .. } => stats.rejected_profit += 1,
                Speculation::ScheduleRejected => stats.rejected_schedule += 1,
                // `speculate` already counted the reject (tv_rejected and
                // the search counter) when it fired the validator.
                Speculation::ValidatorRejected => {}
            }
        }
        if scored.is_empty() {
            break;
        }

        // Phase 2: shortlist the beam, dropped profitable candidates are
        // prunes.
        scored.sort_by_key(|s| (s.new_size, s.seq));
        stats.search.pruned += scored.len().saturating_sub(width) as u64;
        scored.truncate(width);

        // Phase 3: rollout-score each survivor on a clone.
        let mut best: Option<(usize, u64)> = None;
        for (i, s) in scored.iter().enumerate() {
            let score = rollout_score(module, &work, &reference, s, cx, depth, &mut stats.timings);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((i, score));
            }
        }

        // Phase 4: commit the winner for real; on the (defensive) chance
        // re-execution diverges, fall through the shortlist in score order.
        let (best_idx, _) = best.expect("non-empty shortlist always scores");
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.swap(0, best_idx);
        let mut committed = false;
        for &i in &order {
            if commit_candidate(
                module,
                &mut work,
                &mut reference,
                &scored[i].cand,
                cx,
                &mut stats,
            ) {
                committed = true;
                break;
            }
        }
        if !committed {
            break;
        }
    }

    stats.size_after = timed(&mut stats.timings.cost_ns, || {
        fresh_function_size(module, &work, opts)
    });
    module.replace_func(cx.id, work);
    stats
}

enum Speculation {
    /// The candidate generated, validated, and cleaned up; `new_size` is
    /// the speculated function size plus the rodata it would add.
    Scored {
        new_size: u64,
    },
    ScheduleRejected,
    ValidatorRejected,
}

/// Speculates one candidate on `work`'s journal — align, schedule,
/// generate, validate, clean up, score — then rolls everything back
/// (function and globals). `work` is byte-identical afterwards except for
/// inert interned constants, which `reference` absorbs before the window.
fn speculate(
    module: &mut Module,
    work: &mut Function,
    reference: &mut Function,
    cand: &Candidate,
    cx: &SearchCx,
    stats: &mut RolagStats,
    audit: Option<&mut SearchAudit>,
) -> Speculation {
    let opts = cx.opts;
    let block = cand.block();
    let Some(graph) = build_graph(module, work, cand, opts, stats) else {
        return Speculation::ScheduleRejected;
    };
    let Some(sched) = analyze_schedule(module, work, block, &graph, stats) else {
        return Speculation::ScheduleRejected;
    };
    reference.absorb_interned_values(work);

    let before_globals = module.num_globals();
    let token = work.snapshot();
    let outcome = timed(&mut stats.timings.codegen_ns, || {
        codegen::generate(module, work, block, &graph, &sched)
    });
    let Some(outcome) = outcome else {
        work.rollback(token);
        rollback_globals(module, before_globals);
        return Speculation::ScheduleRejected;
    };

    // The validator gate is unconditional in the beam engine: aggressive
    // variants ride on proofs, not on enumeration conservatism.
    let hints = rewrite_hints(&graph, block, &outcome, opts, before_globals);
    let verdict = timed(&mut stats.timings.tv_ns, || {
        rolag_tv::validate_rewrite(module, reference, work, &hints)
    });
    if let Err(why) = verdict {
        stats.tv_rejected += 1;
        stats.search.tv_rejected += 1;
        if let Some(audit) = audit {
            // Capture before/after prints while the speculative globals are
            // still live, so the rejected rewrite can be interpreted.
            let mut before_m = module.clone();
            before_m.replace_func(cx.id, reference.clone());
            let mut after_m = module.clone();
            after_m.replace_func(cx.id, work.clone());
            let info = crate::align::DotInfo {
                score: Some(fresh_function_size(module, work, opts)),
                verdict: Some(why.to_string()),
            };
            audit.rejects.push(RejectedSpeculation {
                func: reference.name.clone(),
                before: rolag_ir::printer::print_module(&before_m),
                after: rolag_ir::printer::print_module(&after_m),
                dot: graph.to_dot_with(&info),
            });
        }
        work.rollback(token);
        rollback_globals(module, before_globals);
        return Speculation::ValidatorRejected;
    }
    stats.tv_validated += 1;

    if opts.cleanup {
        timed(&mut stats.timings.cleanup_ns, || {
            cleanup_in_place(work, &mut module.types, cx.effects)
        });
    }
    let new_size = timed(&mut stats.timings.cost_ns, || {
        let rodata: u64 = outcome
            .new_globals
            .iter()
            .map(|&g| module.global_size(g))
            .sum();
        fresh_function_size(module, work, opts) + rodata
    });
    work.rollback(token);
    rollback_globals(module, before_globals);
    Speculation::Scored { new_size }
}

/// Re-executes a previously speculated candidate on `work` and commits it.
/// Counts the roll and refreshes the validator reference. Returns false if
/// re-execution diverges from the speculation (defensive; the stages are
/// deterministic).
fn commit_candidate(
    module: &mut Module,
    work: &mut Function,
    reference: &mut Function,
    cand: &Candidate,
    cx: &SearchCx,
    stats: &mut RolagStats,
) -> bool {
    let opts = cx.opts;
    let block = cand.block();
    // Stage counters already ticked during speculation; only the clock
    // keeps running here.
    let mut scratch = RolagStats::default();
    let Some(graph) = build_graph(module, work, cand, opts, &mut scratch) else {
        stats.timings += scratch.timings;
        return false;
    };
    let Some(sched) = analyze_schedule(module, work, block, &graph, &mut scratch) else {
        stats.timings += scratch.timings;
        return false;
    };
    reference.absorb_interned_values(work);

    let before_globals = module.num_globals();
    let token = work.snapshot();
    let outcome = timed(&mut scratch.timings.codegen_ns, || {
        codegen::generate(module, work, block, &graph, &sched)
    });
    let Some(outcome) = outcome else {
        work.rollback(token);
        rollback_globals(module, before_globals);
        stats.timings += scratch.timings;
        return false;
    };
    let hints = rewrite_hints(&graph, block, &outcome, opts, before_globals);
    let verdict = timed(&mut scratch.timings.tv_ns, || {
        rolag_tv::validate_rewrite(module, reference, work, &hints)
    });
    if verdict.is_err() {
        work.rollback(token);
        rollback_globals(module, before_globals);
        stats.timings += scratch.timings;
        return false;
    }
    if opts.cleanup {
        timed(&mut scratch.timings.cleanup_ns, || {
            cleanup_in_place(work, &mut module.types, cx.effects)
        });
    }
    work.commit(token);
    stats.rolled += 1;
    stats.nodes += graph.count_kinds();
    stats.timings += scratch.timings;
    *reference = work.clone();
    true
}

/// Scores a shortlisted candidate by committing it on a clone of the
/// working function and running up to `depth` greedy continuation commits
/// (`depth == 0`: to the dry fixpoint). Returns the end-state size (text
/// plus all rodata added during the rollout). All rollout globals are
/// popped before returning; rollouts never touch the outcome stats.
fn rollout_score(
    module: &mut Module,
    work: &Function,
    reference: &Function,
    scored: &Scored,
    cx: &SearchCx,
    depth: usize,
    timings: &mut crate::stats::StageTimings,
) -> u64 {
    let opts = cx.opts;
    let base_globals = module.num_globals();
    let mut sim = work.clone();
    let mut sim_ref = reference.clone();
    let mut scratch = RolagStats::default();

    if !commit_candidate(
        module,
        &mut sim,
        &mut sim_ref,
        &scored.cand,
        cx,
        &mut scratch,
    ) {
        // Re-execution diverged: fall back to the speculation's own score.
        rollback_globals(module, base_globals);
        *timings += scratch.timings;
        return scored.new_size;
    }

    // Greedy continuation: first profitable validated candidate per sweep.
    let mut commits = 0usize;
    'sweeps: while depth == 0 || commits < depth {
        let candidates = collect_candidates(module, &sim, opts);
        let old_size = fresh_function_size(module, &sim, opts);
        for cand in candidates {
            if cand.lanes() < opts.min_lanes {
                continue;
            }
            let spec = speculate(
                module,
                &mut sim,
                &mut sim_ref,
                &cand,
                cx,
                &mut scratch,
                None,
            );
            if let Speculation::Scored { new_size } = spec {
                if new_size < old_size
                    && commit_candidate(module, &mut sim, &mut sim_ref, &cand, cx, &mut scratch)
                {
                    commits += 1;
                    continue 'sweeps;
                }
            }
        }
        break;
    }

    let score = fresh_function_size(module, &sim, opts) + added_rodata(module, base_globals);
    rollback_globals(module, base_globals);
    *timings += scratch.timings;
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::roll_module;
    use rolag_ir::interp::{equivalent, Interpreter};
    use rolag_ir::parser::parse_module;
    use rolag_ir::printer::print_module;
    use rolag_ir::verify::verify_module;

    /// 8 uniform stores: greedy already rolls the whole group, so the beam
    /// cannot improve on it and the search must fall back to the greedy
    /// result byte-for-byte.
    fn uniform_stores() -> String {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  ret\n}\n");
        text
    }

    /// 8 uniform stores followed by a store of a runtime parameter to the
    /// same array: the 9-lane group is the only grouping greedy proposes
    /// and it cannot roll (the runtime value defeats the mismatch array),
    /// but the beam's drop-last variant rolls the 8 constant lanes.
    fn poisoned_tail_stores() -> String {
        let mut text = String::from(
            "module \"t\"\nglobal @a : [16 x i32] = zero\nfunc @f(i32 %p0) -> void {\nentry:\n",
        );
        for i in 0..8 {
            text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
        }
        text.push_str("  %g8 = gep i32, @a, i64 8\n  store %p0, %g8\n");
        text.push_str("  ret\n}\n");
        text
    }

    #[test]
    fn beam_falls_back_to_greedy_when_it_cannot_improve() {
        let mut greedy = parse_module(&uniform_stores()).unwrap();
        let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());
        let mut beamed = parse_module(&uniform_stores()).unwrap();
        let stats = roll_module(&mut beamed, &RolagOptions::searched(4));
        assert_eq!(stats.rolled, greedy_stats.rolled);
        assert_eq!(
            print_module(&greedy),
            print_module(&beamed),
            "no-win beams must reproduce the greedy output exactly"
        );
        assert!(stats.search.explored > 0, "the beam must have explored");
        assert_eq!(stats.search.adopted, 0);
    }

    #[test]
    fn beam_rolls_a_group_greedy_misses() {
        let mut greedy = parse_module(&poisoned_tail_stores()).unwrap();
        let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());
        assert_eq!(
            greedy_stats.rolled,
            0,
            "fixture invalid: greedy must miss the roll\n{}",
            print_module(&greedy)
        );

        let orig = parse_module(&poisoned_tail_stores()).unwrap();
        let mut beamed = orig.clone();
        let stats = roll_module(&mut beamed, &RolagOptions::searched(4));
        verify_module(&beamed).expect("beamed module verifies");
        assert_eq!(stats.rolled, 1, "the trimmed variant must roll: {stats}");
        assert_eq!(stats.search.adopted, 1);
        assert!(stats.search.explored > 1);

        let fid = beamed.func_by_name("f").unwrap();
        let beam_bytes = rolag_lower::measure_function(&beamed, beamed.func(fid));
        let greedy_bytes = rolag_lower::measure_function(&greedy, greedy.func(fid));
        assert!(
            beam_bytes < greedy_bytes,
            "beam must measure strictly smaller: {beam_bytes} vs {greedy_bytes}"
        );

        // Behaviour must be preserved.
        for arg in [0i64, 41] {
            let mut ia = Interpreter::new(&orig);
            let mut ib = Interpreter::new(&beamed);
            let oa = ia.run("f", &[rolag_ir::interp::IValue::Int(arg)]).unwrap();
            let ob = ib.run("f", &[rolag_ir::interp::IValue::Int(arg)]).unwrap();
            assert!(equivalent(&oa, &ob), "behaviour changed for arg {arg}");
        }
    }

    #[test]
    fn beam_width_one_delegates_to_greedy() {
        let mut greedy = parse_module(&poisoned_tail_stores()).unwrap();
        let greedy_stats = roll_module(&mut greedy, &RolagOptions::default());
        let mut narrow = parse_module(&poisoned_tail_stores()).unwrap();
        let narrow_stats = roll_module(&mut narrow, &RolagOptions::searched(1));
        assert_eq!(narrow_stats, greedy_stats, "beam:1 must be stats-identical");
        assert_eq!(
            print_module(&greedy),
            print_module(&narrow),
            "beam:1 must be byte-identical"
        );
    }

    #[test]
    fn audited_search_is_byte_identical_to_unaudited() {
        let mut plain = parse_module(&poisoned_tail_stores()).unwrap();
        let plain_stats = roll_module(&mut plain, &RolagOptions::searched(4));

        let mut audited = parse_module(&poisoned_tail_stores()).unwrap();
        let opts = RolagOptions::searched(4);
        let effects = rolag_transforms::effects_table(&audited);
        let mut audit = SearchAudit::default();
        let ids: Vec<FuncId> = audited.func_ids().collect();
        let mut stats = RolagStats::default();
        for id in ids {
            stats += search_function_audited(&mut audited, id, &opts, &effects, &mut audit);
        }
        assert_eq!(stats, plain_stats);
        assert_eq!(print_module(&plain), print_module(&audited));
        assert_eq!(
            audit.rejects.len() as u64,
            stats.search.tv_rejected,
            "one audit capture per TV reject"
        );
        // Every captured reject parses and preserves the searched function.
        for r in &audit.rejects {
            assert_eq!(r.func, "f");
            parse_module(&r.before).expect("before snapshot parses");
            parse_module(&r.after).expect("after snapshot parses");
            assert!(r.dot.starts_with("digraph align"), "dot dump captured");
            assert!(
                r.dot.contains("score=") && r.dot.contains("tv="),
                "dot banner carries the score and the validator verdict: {}",
                r.dot
            );
        }
    }
}
