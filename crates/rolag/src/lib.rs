//! # rolag
//!
//! RoLAG — **Ro**lling with **L**oop **A**lignment **G**raphs — a
//! from-scratch reproduction of *"Loop Rolling for Code Size Reduction"*
//! (Rocha, Petoumenos, Franke, Bhatotia, O'Boyle — CGO 2022).
//!
//! RoLAG turns straight-line repetitive code into loops. It aligns SSA
//! graphs bottom-up from seed instructions into an *alignment graph*
//! ([`align`]), abstracts special code patterns (integer sequences, neutral
//! pointer operations, algebraic identities, chained dependences, reduction
//! trees, joint alternating groups), validates the rearrangement with a
//! scheduling analysis ([`schedule`]), generates the rolled loop
//! ([`codegen`]), and keeps whichever version a code-size cost model says
//! is smaller ([`pass`]).
//!
//! ```
//! use rolag::{roll_module, RolagOptions};
//! use rolag_ir::parser::parse_module;
//!
//! let text = r#"
//! module "demo"
//! global @a : [8 x i32] = zero
//! func @fill() -> void {
//! entry:
//!   %g0 = gep i32, @a, i64 0
//!   store i32 0, %g0
//!   %g1 = gep i32, @a, i64 1
//!   store i32 5, %g1
//!   %g2 = gep i32, @a, i64 2
//!   store i32 10, %g2
//!   %g3 = gep i32, @a, i64 3
//!   store i32 15, %g3
//!   %g4 = gep i32, @a, i64 4
//!   store i32 20, %g4
//!   %g5 = gep i32, @a, i64 5
//!   store i32 25, %g5
//!   ret
//! }
//! "#;
//! let mut module = parse_module(text).unwrap();
//! let stats = roll_module(&mut module, &RolagOptions::default());
//! assert_eq!(stats.rolled, 1);
//! assert!(stats.size_after < stats.size_before);
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod codegen;
pub mod driver;
mod incremental;
pub mod memo;
pub mod options;
pub mod pass;
pub mod schedule;
pub mod search;
pub mod seeds;
pub mod stats;

pub use align::{
    build_candidate_graph, AlignGraph, AlignNode, DotInfo, GraphBuilder, NodeId, NodeKind,
};
pub use driver::{roll_module_par, roll_module_par_with, DriverOptions, DriverReport};
pub use memo::{store_key, MemoStore, MemoStoreStats, StoreEntry};
pub use options::{RolagOptions, SearchConfig};
pub use pass::{
    roll_function, roll_function_full_rescan, roll_function_rescued, roll_function_with,
    roll_module, roll_module_full_rescan, roll_module_full_rescan_with, roll_module_with,
};
pub use schedule::Schedule;
pub use search::{search_function_audited, search_function_with, RejectedSpeculation, SearchAudit};
pub use seeds::{candidate_variants, collect_block_candidates, collect_candidates, Candidate};
pub use stats::{FixpointCacheStats, NodeKindCounts, RolagStats, SearchStats, StageTimings};
