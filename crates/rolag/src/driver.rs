//! Parallel, memoizing module driver.
//!
//! [`roll_module_par`] fans [`roll_function_rescued`] out over a scoped worker
//! pool ([`rolag_par`]) and merges the results deterministically, so that a
//! parallel run produces a **byte-identical printed module and identical
//! [`RolagStats`]** to the serial [`roll_module`](crate::roll_module) —
//! regardless of worker count or scheduling order.
//!
//! # How determinism is preserved
//!
//! The pass only reads the module for *shared context*: the type store,
//! globals, function signatures, and call effects. It never inspects the
//! body of any function other than the one being rolled. Each worker
//! therefore rolls its assigned functions inside a private module clone,
//! and the driver merges the pieces back serially in function-id order:
//!
//! * **Globals.** Constant arrays minted by codegen get worker-local names.
//!   At merge time each one is renamed through
//!   [`Module::fresh_global_name`] against the *merged* module, which walks
//!   functions in the same order as the serial pass — reproducing the
//!   serial names exactly. Rolled bodies are rewritten with
//!   [`Function::remap_globals`].
//! * **Types.** Worker stores are absorbed via [`TypeStore::absorb`] and
//!   bodies rewritten with [`Function::remap_types`]. Interned type *ids*
//!   may differ from a serial run, but ids are never printed — types
//!   render structurally — so the output is unaffected.
//! * **Stats.** Per-function statistics are summed in function-id order.
//!   Wall-clock [`StageTimings`](crate::stats::StageTimings) are excluded
//!   from `RolagStats` equality, so outcome comparison is exact.
//!
//! # Memoization
//!
//! Large modules (e.g. AnghaBench translation units) contain many
//! structurally identical functions. With [`DriverOptions::memoize`] the
//! driver groups definitions by a canonical key — the printed function with
//! its own symbol name normalized out — rolls one representative per
//! group, and replays the result onto every duplicate: fresh constant
//! arrays are minted per duplicate (matching what the serial pass would
//! have created) and self-references are remapped, so even cache hits are
//! byte-identical to the serial output.
//!
//! Replayed stats include the representative's
//! [`FixpointCacheStats`](crate::stats::FixpointCacheStats) — duplicates
//! report the same fixpoint cache counters their representative's actual
//! run produced, keeping aggregate counters identical to a serial run.
//!
//! Local value names never block sharing: the printer renumbers temps
//! canonically (`%0`, `%1`, ...), so two functions that differ only in
//! source-level temp names produce identical keys — and replaying one's
//! body onto the other is still byte-identical, for the same reason.
//! Beyond that the key is deliberately byte-strict: any structural
//! difference (an opcode, a constant, a referenced global) separates the
//! slots, because replay splices the representative's rolled body verbatim
//! and anything looser would diverge from what a serial run produces. The
//! TSVC kernels therefore never share — they are structurally distinct,
//! not spuriously split by naming.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rolag_ir::printer::print_function;
use rolag_ir::{FuncId, Function, GlobalData, GlobalId, Module};
use rolag_par::{effective_jobs, par_map_with, WorkerPool};
use rolag_transforms::effects_table;

use crate::memo::{store_key, store_key_from, MemoStore, StoreEntry};
use crate::options::RolagOptions;
use crate::pass::roll_function_rescued;
use crate::stats::RolagStats;

/// Configuration of the parallel driver.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Worker count; `0` means one per available core.
    pub jobs: usize,
    /// Roll one representative per structurally identical group of
    /// functions and replay the result onto the duplicates.
    pub memoize: bool,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            jobs: 0,
            memoize: true,
        }
    }
}

/// What one [`roll_module_par`] run did, beyond the pass statistics.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// Aggregate pass statistics (equal to the serial pass's).
    pub stats: RolagStats,
    /// Function definitions processed.
    pub functions: usize,
    /// Structurally distinct definitions actually rolled.
    pub unique: usize,
    /// Definitions served from the memoization cache.
    pub cache_hits: u64,
    /// Definitions whose body the pass rewrote — including duplicates
    /// that received a rewritten representative's body and store-replayed
    /// definitions. Functions the pass left verbatim are not counted.
    pub changed: usize,
    /// Definitions replayed from a cross-request [`MemoStore`] (always `0`
    /// without one).
    pub store_hits: u64,
    /// Definitions rolled because the cross-request store missed (always
    /// `0` without one).
    pub store_misses: u64,
    /// Worker count actually used.
    pub jobs: usize,
    /// End-to-end wall-clock of the driver, in nanoseconds.
    pub wall_ns: u64,
}

impl DriverReport {
    /// Fraction of definitions served from the cache, in `0.0..=1.0`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.functions == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.functions as f64
    }

    /// Fraction of definitions replayed from the cross-request store, in
    /// `0.0..=1.0`.
    pub fn store_hit_rate(&self) -> f64 {
        if self.functions == 0 {
            return 0.0;
        }
        self.store_hits as f64 / self.functions as f64
    }
}

/// Canonical cache key of a definition: its printed form with the
/// function's own `@name` tokens normalized, so structurally identical
/// functions under different symbols compare equal (including
/// self-recursive ones).
///
/// If a *global* shares the function's name, `@name` tokens in the body are
/// ambiguous and normalization is skipped — the function simply won't
/// share a cache slot, which is always safe.
pub(crate) fn canonical_key(module: &Module, id: FuncId) -> String {
    let func = module.func(id);
    let printed = print_function(module, func);
    if module.global_by_name(&func.name).is_some() {
        return printed;
    }
    normalize_own_name(&printed, &func.name)
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '$')
}

/// Replaces exact `@name` tokens with a placeholder that no parsed symbol
/// can collide with. Token-boundary checked, so `@f` inside `@f2` is left
/// alone.
fn normalize_own_name(printed: &str, name: &str) -> String {
    let needle = format!("@{name}");
    let mut out = String::with_capacity(printed.len());
    let mut rest = printed;
    while let Some(pos) = rest.find(&needle) {
        let tail = &rest[pos + needle.len()..];
        let at_boundary = tail.chars().next().is_none_or(|c| !is_symbol_char(c));
        out.push_str(&rest[..pos]);
        out.push_str(if at_boundary { "@\u{1}self" } else { &needle });
        rest = tail;
    }
    out.push_str(rest);
    out
}

/// `prefix` such that `fresh_global_name(prefix)` can reproduce `name`:
/// the name with a trailing `.<digits>` counter stripped.
pub(crate) fn name_prefix(name: &str) -> &str {
    match name.rfind('.') {
        Some(pos)
            if pos > 0
                && !name[pos + 1..].is_empty()
                && name[pos + 1..].chars().all(|c| c.is_ascii_digit()) =>
        {
            &name[..pos]
        }
        _ => name,
    }
}

/// Outcome of rolling one representative inside a worker's module clone.
struct RepRoll {
    /// Rolled body, in the worker's id spaces — `None` when the pass
    /// committed nothing, so the function (and any structural duplicate of
    /// it) is byte-identical to the input and needs no merge work.
    func: Option<Function>,
    stats: RolagStats,
    /// Constant-array globals the roll committed, in creation order.
    new_globals: Vec<GlobalData>,
    /// Worker-module index of the first entry of `new_globals`.
    first_new_global: usize,
    /// Which worker produced this (indexes the returned states).
    worker: usize,
}

struct WorkerState {
    module: Module,
    id: usize,
}

/// Fans `job` out over `items`: on the persistent `pool` when one is given
/// (the `rolag-serve` daemon reuses its threads across requests), else on a
/// fresh scoped pool of `jobs` workers.
fn fan_out<T, R, S, I, F>(
    pool: Option<&WorkerPool>,
    items: &[T],
    jobs: usize,
    init: I,
    job: F,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    match pool {
        Some(p) => p.map_with(items, init, job),
        None => par_map_with(items, jobs, init, job),
    }
}

/// Rolls every function of the module on a worker pool, memoizing
/// structurally identical definitions, and merges the results so the
/// printed module and the statistics are identical to a serial
/// [`roll_module`](crate::roll_module) run.
pub fn roll_module_par(
    module: &mut Module,
    opts: &RolagOptions,
    driver: &DriverOptions,
) -> DriverReport {
    roll_module_par_with(module, opts, driver, None, None)
}

/// [`roll_module_par`] with service hooks: an optional persistent
/// [`WorkerPool`] (reused across calls instead of spawning a scoped pool
/// per module) and an optional cross-request [`MemoStore`].
///
/// With a store, each group representative's closure key
/// ([`store_key`]) is consulted first: hits replay a previously rolled body
/// into this module — byte-identical to rolling it cold, because replay
/// re-mints constant-array names through the same serial-order
/// [`Module::fresh_global_name`] walk — and only misses are rolled. Freshly
/// rolled representatives are captured back into the store after the merge.
pub fn roll_module_par_with(
    module: &mut Module,
    opts: &RolagOptions,
    driver: &DriverOptions,
    pool: Option<&WorkerPool>,
    store: Option<&MemoStore>,
) -> DriverReport {
    let start = Instant::now();
    let ids: Vec<FuncId> = module
        .func_ids()
        .filter(|&id| !module.func(id).is_declaration)
        .collect();
    let base_globals = module.num_globals();
    let base_types = module.types.num_types();
    let effects = effects_table(module);

    // Group definitions by canonical key (everything is its own group when
    // memoization is off). Representatives keep the lowest function id so
    // the merge below walks them in serial order. The printed keys are kept
    // alive past grouping: the store-key pass below reuses each
    // representative's canonical text instead of printing it a second time.
    let shared: &Module = module;
    let mut groups: Vec<(FuncId, Vec<FuncId>)> = Vec::new();
    let mut canon_keys: Vec<String> = Vec::new();
    let mut rep_canon: Vec<usize> = Vec::new();
    if driver.memoize {
        canon_keys = fan_out(
            pool,
            &ids,
            driver.jobs,
            || (),
            |(), _, &id| canonical_key(shared, id),
        )
        .0;
        let mut by_key: HashMap<&str, usize> = HashMap::new();
        for (i, &id) in ids.iter().enumerate() {
            match by_key.entry(canon_keys[i].as_str()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    groups[*slot.get()].1.push(id);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(groups.len());
                    rep_canon.push(i);
                    groups.push((id, Vec::new()));
                }
            }
        }
    } else {
        groups = ids.iter().map(|&id| (id, Vec::new())).collect();
    }
    let group_of: HashMap<FuncId, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, (rep, dups))| {
            std::iter::once((*rep, gi)).chain(dups.iter().map(move |&d| (d, gi)))
        })
        .collect();
    let reps: Vec<FuncId> = groups.iter().map(|&(rep, _)| rep).collect();

    // Cross-request store: closure-key every representative and consult the
    // store before rolling anything. A hit retires the whole group. With
    // memoization on, the grouping pass already printed each representative
    // canonically — only the context sections remain to be rendered.
    let store_keys: Vec<String> = match store {
        Some(_) if driver.memoize => {
            let canon: Vec<&str> = rep_canon.iter().map(|&i| canon_keys[i].as_str()).collect();
            fan_out(
                pool,
                &canon,
                driver.jobs,
                || (),
                |(), gi, &text| store_key_from(text, shared, reps[gi], opts),
            )
            .0
        }
        Some(_) => {
            fan_out(
                pool,
                &reps,
                driver.jobs,
                || (),
                |(), _, &fid| store_key(shared, fid, opts),
            )
            .0
        }
        None => Vec::new(),
    };
    let store_entries: Vec<Option<Arc<StoreEntry>>> = match store {
        Some(s) => store_keys.iter().map(|k| s.get(k)).collect(),
        None => vec![None; reps.len()],
    };
    let to_roll: Vec<FuncId> = reps
        .iter()
        .enumerate()
        .filter(|&(gi, _)| store_entries[gi].is_none())
        .map(|(_, &fid)| fid)
        .collect();
    let mut roll_of: Vec<Option<usize>> = vec![None; reps.len()];
    {
        let mut next = 0;
        for (gi, entry) in store_entries.iter().enumerate() {
            if entry.is_none() {
                roll_of[gi] = Some(next);
                next += 1;
            }
        }
    }

    // Roll one representative per store-missed group, each worker inside
    // its own module clone. Dynamic scheduling decides *which* worker rolls
    // *what*, but every result is independent of that choice.
    let jobs = match pool {
        Some(p) => p.worker_count().clamp(1, reps.len().max(1)),
        None => effective_jobs(driver.jobs, reps.len()),
    };
    let worker_tag = AtomicUsize::new(0);
    let (rolls, states) = fan_out(
        pool,
        &to_roll,
        driver.jobs,
        || WorkerState {
            module: shared.clone(),
            id: worker_tag.fetch_add(1, Ordering::Relaxed),
        },
        |state, _idx, &fid| {
            let before = state.module.num_globals();
            let stats = roll_function_rescued(&mut state.module, fid, opts, &effects);
            let changed = stats.rolled > 0 || state.module.num_globals() != before;
            let new_globals = (before..state.module.num_globals())
                .map(|g| state.module.global(GlobalId::from_index(g)).clone())
                .collect();
            RepRoll {
                func: changed.then(|| state.module.func(fid).clone()),
                stats,
                new_globals,
                first_new_global: before,
                worker: state.id,
            }
        },
    );

    // Absorb every worker's type store into the merged module, recording
    // the per-worker id translation.
    let mut type_maps: Vec<Vec<rolag_ir::TypeId>> = vec![Vec::new(); states.len()];
    for state in &states {
        type_maps[state.id] = module.types.absorb(&state.module.types, base_types);
    }
    let identity_map: Vec<bool> = type_maps
        .iter()
        .map(|m| m.iter().enumerate().all(|(i, t)| t.index() == i))
        .collect();

    // Merge serially in function-id order — the order the serial pass
    // walks — so fresh global names come out identical, whether a body is
    // spliced from this request's rolls or replayed from the store.
    let mut report = DriverReport {
        functions: ids.len(),
        unique: reps.len(),
        jobs,
        ..Default::default()
    };
    let mut minted_for_rep: Vec<Vec<GlobalId>> = vec![Vec::new(); reps.len()];
    for &fid in &ids {
        let gi = group_of[&fid];
        let rep = reps[gi];
        if fid != rep {
            report.cache_hits += 1;
        }
        if let Some(entry) = &store_entries[gi] {
            report.stats += entry.stats;
            report.store_hits += 1;
            if entry.replay(module, fid) {
                report.changed += 1;
            }
            continue;
        }
        if store.is_some() {
            report.store_misses += 1;
        }
        let roll = &rolls[roll_of[gi].expect("missed groups were rolled")];
        report.stats += roll.stats;
        // Nothing committed: the input body (and any duplicate of it) is
        // already what the serial pass would produce.
        let Some(rolled) = &roll.func else {
            continue;
        };
        report.changed += 1;
        let type_map = &type_maps[roll.worker];
        let mut func = rolled.clone();

        // Mint this function's constant arrays with serial-order names and
        // point the body at them.
        let mut global_map: HashMap<GlobalId, GlobalId> = HashMap::new();
        let mut minted: Vec<GlobalId> = Vec::with_capacity(roll.new_globals.len());
        for (offset, data) in roll.new_globals.iter().enumerate() {
            let name = module.fresh_global_name(name_prefix(&data.name));
            let mut data = data.clone();
            data.ty = type_map[data.ty.index()];
            data.name = name;
            let merged_id = module.add_global(data);
            minted.push(merged_id);
            global_map.insert(
                GlobalId::from_index(roll.first_new_global + offset),
                merged_id,
            );
        }
        func.remap_globals(|g| {
            if g.index() < base_globals {
                g
            } else {
                *global_map
                    .get(&g)
                    .expect("rolled function references a global outside its own roll")
            }
        });
        if !identity_map[roll.worker] {
            func.remap_types(|t| type_map[t.index()]);
        }

        // Cache hit: retarget the representative's body onto the duplicate.
        if fid != rep {
            let target = module.func(fid);
            func.name = target.name.clone();
            // The annotation is caller-facing metadata the printer may not
            // show; keep the duplicate's own.
            func.effects = target.effects;
            func.remap_funcs(|f| if f == rep { fid } else { f });
        } else {
            minted_for_rep[gi] = minted;
        }
        module.replace_func(fid, func);
    }

    // Capture freshly rolled representatives into the store, in their
    // final merged form (so replay needs no per-request translation state
    // beyond the entry itself).
    if let Some(s) = store {
        let types = Arc::new(module.types.clone());
        for (gi, &rep) in reps.iter().enumerate() {
            if store_entries[gi].is_some() {
                continue;
            }
            let roll = &rolls[roll_of[gi].expect("missed groups were rolled")];
            let entry = StoreEntry::capture(
                module,
                rep,
                &minted_for_rep[gi],
                roll.func.is_some(),
                roll.stats,
                &types,
            );
            s.insert(store_keys[gi].clone(), Arc::new(entry));
        }
    }
    report.wall_ns = start.elapsed().as_nanos() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::roll_module;
    use rolag_ir::printer::print_module;
    use rolag_ir::verify::verify_module;

    fn rollable_body(offset: usize) -> String {
        let mut body = String::new();
        for i in 0..8 {
            body.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
            body.push_str(&format!("  store i32 {}, %g{i}\n", i * 7 + offset));
        }
        body
    }

    /// `n` copies of the same profitable function plus one distinct one.
    fn duplicated_module(n: usize) -> Module {
        let mut text = String::from("module \"dup\"\nglobal @a : [8 x i32] = zero\n");
        for f in 0..n {
            text.push_str(&format!("func @f{f}() -> void {{\nentry:\n"));
            text.push_str(&rollable_body(0));
            text.push_str("  ret\n}\n");
        }
        text.push_str("func @other() -> void {\nentry:\n");
        text.push_str(&rollable_body(3));
        text.push_str("  ret\n}\n");
        rolag_ir::parser::parse_module(&text).unwrap()
    }

    #[test]
    fn parallel_matches_serial_bytes_and_stats() {
        let original = duplicated_module(5);
        let opts = RolagOptions::default();

        let mut serial = original.clone();
        let serial_stats = roll_module(&mut serial, &opts);
        assert!(serial_stats.rolled >= 6, "fixture must actually roll");

        for memoize in [false, true] {
            for jobs in [1, 4] {
                let mut par = original.clone();
                let report = roll_module_par(&mut par, &opts, &DriverOptions { jobs, memoize });
                verify_module(&par).expect("merged module verifies");
                assert_eq!(
                    print_module(&serial),
                    print_module(&par),
                    "jobs={jobs} memoize={memoize} must be byte-identical"
                );
                assert_eq!(report.stats, serial_stats);
                assert_eq!(report.functions, 6);
                if memoize {
                    assert_eq!(report.unique, 2);
                    assert_eq!(report.cache_hits, 4);
                } else {
                    assert_eq!(report.unique, 6);
                    assert_eq!(report.cache_hits, 0);
                }
            }
        }
    }

    /// Regression for the tsvc24 memo cold-miss investigation: the driver
    /// key is NOT "too strict" about local value names — the printer
    /// renumbers temps canonically, so functions differing only in
    /// source-level temp names unify, and replaying one body onto the
    /// other stays byte-identical to serial. The TSVC kernels fail to
    /// share because they are structurally distinct, and the per-function
    /// fixpoint memo behaviour is pinned by
    /// `single_commit_fixpoints_report_zero_memo_hits` in `pass.rs`.
    #[test]
    fn value_renamed_twins_share_a_cache_slot() {
        let mut text = String::from("module \"twins\"\nglobal @a : [8 x i32] = zero\n");
        for (f, temp) in [(0, "g"), (1, "h")] {
            text.push_str(&format!("func @f{f}() -> void {{\nentry:\n"));
            for i in 0..8 {
                text.push_str(&format!("  %{temp}{i} = gep i32, @a, i64 {i}\n"));
                text.push_str(&format!("  store i32 {}, %{temp}{i}\n", i * 7));
            }
            text.push_str("  ret\n}\n");
        }
        let original = rolag_ir::parser::parse_module(&text).unwrap();
        let key0 = canonical_key(&original, original.func_by_name("f0").unwrap());
        let key1 = canonical_key(&original, original.func_by_name("f1").unwrap());
        assert_eq!(key0, key1, "canonical printing erases temp names");

        let opts = RolagOptions::default();
        let mut serial = original.clone();
        roll_module(&mut serial, &opts);
        let mut par = original.clone();
        let report = roll_module_par(&mut par, &opts, &DriverOptions::default());
        assert_eq!(report.cache_hits, 1, "@f1 replays @f0's roll");
        assert_eq!(report.unique, 1);
        assert_eq!(
            print_module(&serial),
            print_module(&par),
            "replay across renamed twins stays byte-identical"
        );
    }

    /// Cross-request store: a second request with structurally identical
    /// functions must replay entirely from the store and still be
    /// byte-identical (and outcome-stats-identical) to a cold serial roll.
    #[test]
    fn store_replay_is_byte_identical_to_cold_roll() {
        let opts = RolagOptions::default();
        let store = crate::memo::MemoStore::new(64);

        let first = duplicated_module(3);
        let mut warmup = first.clone();
        let warm_report = roll_module_par_with(
            &mut warmup,
            &opts,
            &DriverOptions::default(),
            None,
            Some(&store),
        );
        assert_eq!(warm_report.store_hits, 0);
        assert_eq!(warm_report.store_misses, 4, "every definition missed");
        assert!(!store.is_empty());

        // Same functions arriving from a "different client": new module
        // name, same bodies.
        let mut second_text = print_module(&duplicated_module(3)).replace("\"dup\"", "\"client2\"");
        second_text.push('\n');
        let second = rolag_ir::parser::parse_module(&second_text).unwrap();

        let mut cold = second.clone();
        let cold_stats = roll_module(&mut cold, &opts);

        let mut warm = second.clone();
        let report = roll_module_par_with(
            &mut warm,
            &opts,
            &DriverOptions::default(),
            None,
            Some(&store),
        );
        verify_module(&warm).expect("replayed module verifies");
        assert_eq!(report.store_hits, 4, "all definitions replay: {report:?}");
        assert_eq!(report.store_misses, 0);
        assert_eq!(report.stats, cold_stats, "replayed stats diverged");
        assert_eq!(
            print_module(&cold),
            print_module(&warm),
            "store replay must be byte-identical to a cold roll"
        );
        assert!(store.stats().hit_rate() > 0.0);
    }

    /// The persistent pool path produces the same bytes and stats as the
    /// scoped-pool path.
    #[test]
    fn persistent_pool_matches_scoped_pool() {
        let original = duplicated_module(4);
        let opts = RolagOptions::default();
        let mut scoped = original.clone();
        let scoped_report = roll_module_par(&mut scoped, &opts, &DriverOptions::default());

        let pool = rolag_par::WorkerPool::new(3);
        let mut pooled = original.clone();
        let report = roll_module_par_with(
            &mut pooled,
            &opts,
            &DriverOptions::default(),
            Some(&pool),
            None,
        );
        assert_eq!(print_module(&scoped), print_module(&pooled));
        assert_eq!(report.stats, scoped_report.stats);
        assert_eq!(report.jobs, 2, "3 pool workers clamped to 2 unique groups");
    }

    #[test]
    fn own_name_normalization_is_token_exact() {
        let s = "func @f(i32 %p0) -> void {\n  call @f2(%p0)\n  call @f(%p0)\n";
        let n = normalize_own_name(s, "f");
        assert!(n.contains("@f2"), "prefix symbol must survive");
        assert!(n.contains("@\u{1}self"), "own tokens replaced");
        assert!(!n.contains("call @f("), "own call site normalized");
    }

    #[test]
    fn name_prefix_strips_counters() {
        assert_eq!(name_prefix("rolag.cdata.17"), "rolag.cdata");
        assert_eq!(name_prefix("rolag.cdata"), "rolag.cdata");
        assert_eq!(name_prefix("plain"), "plain");
        assert_eq!(name_prefix("dotted.name"), "dotted.name");
    }

    #[test]
    fn recursive_duplicates_keep_their_own_identity() {
        let text = r#"
module "rec"
func @a(i32 %p0) -> i32 {
entry:
  %c = icmp sle %p0, i32 0
  condbr %c, done, more
more:
  %n = sub i32 %p0, i32 1
  %r = call i32 @a(%n)
  %s = add i32 %r, %p0
  ret %s
done:
  ret i32 0
}
func @b(i32 %p0) -> i32 {
entry:
  %c = icmp sle %p0, i32 0
  condbr %c, done, more
more:
  %n = sub i32 %p0, i32 1
  %r = call i32 @b(%n)
  %s = add i32 %r, %p0
  ret %s
done:
  ret i32 0
}
"#;
        let original = rolag_ir::parser::parse_module(text).unwrap();
        let opts = RolagOptions::default();
        let mut serial = original.clone();
        roll_module(&mut serial, &opts);
        let mut par = original.clone();
        let report = roll_module_par(&mut par, &opts, &DriverOptions::default());
        assert_eq!(report.cache_hits, 1, "@b is a cache hit of @a");
        assert_eq!(print_module(&serial), print_module(&par));
        // @b must still call itself, not @a.
        let b = par.func(par.func_by_name("b").unwrap());
        let self_calls = b
            .live_insts()
            .filter(|&i| {
                matches!(
                    b.inst(i).extra,
                    rolag_ir::InstExtra::Call { callee } if callee == par.func_by_name("b").unwrap()
                )
            })
            .count();
        assert_eq!(self_calls, 1);
    }
}
