//! Cross-request content-addressed rolling cache.
//!
//! [`roll_module_par`](crate::driver::roll_module_par) memoizes structurally
//! identical functions *within* one module; everything it learns dies with
//! the call. The [`MemoStore`] generalizes that memo across requests: a
//! sharded, capacity-bounded (clock / second-chance eviction) map from a
//! function's **closure key** to its rolled body, [`RolagStats`], and — via
//! those stats — its translation-validation verdict, so a long-lived service
//! (`rolag-serve`) compiles identical code from different clients once.
//!
//! # Soundness: the closure key
//!
//! The per-module memo can key on the canonical printed function alone
//! because duplicates live in the *same* module — every `@symbol` in the
//! body resolves to the same definition. Across requests that assumption is
//! gone: two clients can both define `@tab` with different initializers.
//! [`store_key`] therefore extends the canonical text with everything the
//! pass is allowed to read outside the function
//! ([`crate::driver`] invariant: shared context only, never another
//! function's body):
//!
//! * the printed definition of every global the function references,
//! * the name, signature, and effects annotation of every callee,
//! * the function's own effects annotation (self-calls read it),
//! * a fingerprint of the [`RolagOptions`] in force.
//!
//! A hit therefore guarantees the requesting module contains identically
//! defined referenced symbols, which makes replay sound — and byte-identical
//! to a cold roll, because replay re-mints constant-array names with the
//! same [`fresh_global_name`](Module::fresh_global_name) walk a cold run
//! would perform (enforced by `tests/serve_determinism.rs`).
//!
//! Keys are compared as full strings, never as hashes, so a (astronomically
//! unlikely, but catastrophic) hash collision degrades into shard imbalance
//! rather than a wrong replay.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rolag_ir::printer::print_global;
use rolag_ir::{
    FuncId, Function, GlobalData, GlobalId, InstExtra, Module, TypeStore, ValueDef, ValueId,
};

use crate::driver::{canonical_key, name_prefix};
use crate::options::RolagOptions;
use crate::stats::RolagStats;

/// Globals and functions a function's value/instruction arenas reference.
/// Walks the full value arena (dead entries included — replay splices the
/// arena verbatim, so every id it holds must be remappable) and the live
/// instruction stream for call sites.
fn referenced_symbols(func: &Function) -> (HashSet<GlobalId>, HashSet<FuncId>) {
    let mut globals = HashSet::new();
    let mut funcs = HashSet::new();
    for i in 0..func.num_values() {
        match func.value(ValueId::from_index(i)) {
            ValueDef::GlobalAddr(g) => {
                globals.insert(*g);
            }
            ValueDef::FuncAddr(f) => {
                funcs.insert(*f);
            }
            _ => {}
        }
    }
    for b in func.block_ids() {
        for &i in &func.block(b).insts {
            if let InstExtra::Call { callee } = func.inst(i).extra {
                funcs.insert(callee);
            }
        }
    }
    (globals, funcs)
}

/// One callee's caller-visible surface, rendered for the key.
fn callee_line(module: &Module, f: FuncId) -> String {
    let callee = module.func(f);
    let params: Vec<String> = callee
        .param_tys()
        .iter()
        .map(|&t| module.types.display(t))
        .collect();
    format!(
        "callee @{}({}) -> {} {}",
        callee.name,
        params.join(", "),
        module.types.display(callee.ret_ty),
        callee.effects.mnemonic()
    )
}

/// The cross-request closure key of function `id` under `opts`: canonical
/// function text plus the referenced-context and options sections described
/// in the module docs. Deterministic for structurally identical functions
/// regardless of arena layout (context sections are name-sorted).
pub fn store_key(module: &Module, id: FuncId, opts: &RolagOptions) -> String {
    store_key_from(&canonical_key(module, id), module, id, opts)
}

/// [`store_key`] with the canonical function text already in hand. The
/// driver's grouping pass prints every function once to build its memo
/// groups; threading that text through here means the service's warm path
/// prints each function once per request instead of twice — the context
/// sections appended below are cheap next to a full function print.
pub(crate) fn store_key_from(
    canonical: &str,
    module: &Module,
    id: FuncId,
    opts: &RolagOptions,
) -> String {
    let func = module.func(id);
    let (globals, funcs) = referenced_symbols(func);

    let mut key = String::with_capacity(canonical.len() + 256);
    key.push_str(canonical);
    key.push_str("\n--context--\nself ");
    key.push_str(func.effects.mnemonic());
    key.push('\n');
    let global_lines: BTreeMap<&str, GlobalId> = globals
        .iter()
        .map(|&g| (module.global(g).name.as_str(), g))
        .collect();
    for (_, g) in global_lines {
        key.push_str(&print_global(module, g));
        key.push('\n');
    }
    let callee_lines: BTreeMap<&str, FuncId> = funcs
        .iter()
        .filter(|&&f| f != id)
        .map(|&f| (module.func(f).name.as_str(), f))
        .collect();
    for (_, f) in callee_lines {
        key.push_str(&callee_line(module, f));
        key.push('\n');
    }
    key.push_str("--options--\n");
    key.push_str(&format!("{opts:?}"));
    key
}

/// A rolled function body in its donor module's id spaces, plus the name
/// maps replay needs to re-target it into an arbitrary module that matched
/// the same closure key.
#[derive(Debug, Clone)]
pub struct RolledBody {
    /// The rolled function (donor value/type/global/function id spaces).
    func: Function,
    /// Snapshot of the donor module's type store (shared across the
    /// entries captured from one request).
    types: Arc<TypeStore>,
    /// Pre-existing globals the body references: donor id → name. The key
    /// guarantees a hit's module defines each name identically.
    base_globals: Vec<(GlobalId, String)>,
    /// Globals the roll minted, in minting order (name reproduction
    /// depends on the order): donor id plus full data.
    new_globals: Vec<(GlobalId, GlobalData)>,
    /// Referenced functions other than itself: donor id → name.
    callees: Vec<(FuncId, String)>,
    /// The donor id of the function itself (self-calls re-target to the
    /// replay destination).
    self_id: FuncId,
}

/// One store entry: the replayable outcome of rolling a function.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// `None` when the roll committed nothing — the input body is already
    /// the output, and replay only has to account the stats.
    pub(crate) body: Option<RolledBody>,
    /// The donor roll's statistics. Outcome fields are what a cold roll of
    /// the same closure would report (wall-clock timings excluded from
    /// [`RolagStats`] equality as always).
    pub stats: RolagStats,
}

impl StoreEntry {
    /// Captures a replayable entry for `id` from a *merged* module (the
    /// function already holds its final body and global references).
    /// `minted` are the globals the roll created for this function, in
    /// minting order; `rolled` distinguishes a committed roll from a
    /// no-change run.
    pub(crate) fn capture(
        module: &Module,
        id: FuncId,
        minted: &[GlobalId],
        rolled: bool,
        stats: RolagStats,
        types: &Arc<TypeStore>,
    ) -> StoreEntry {
        if !rolled {
            return StoreEntry { body: None, stats };
        }
        let func = module.func(id).clone();
        let (globals, funcs) = referenced_symbols(&func);
        let minted_set: HashSet<GlobalId> = minted.iter().copied().collect();
        let base_globals = globals
            .iter()
            .filter(|g| !minted_set.contains(g))
            .map(|&g| (g, module.global(g).name.clone()))
            .collect();
        let new_globals = minted
            .iter()
            .map(|&g| (g, module.global(g).clone()))
            .collect();
        let callees = funcs
            .iter()
            .filter(|&&f| f != id)
            .map(|&f| (f, module.func(f).name.clone()))
            .collect();
        StoreEntry {
            body: Some(RolledBody {
                func,
                types: Arc::clone(types),
                base_globals,
                new_globals,
                callees,
                self_id: id,
            }),
            stats,
        }
    }

    /// Replays this entry onto function `id` of `module`, which must have
    /// matched the entry's closure key. Mints fresh constant-array names
    /// against `module` in donor order, so the result is byte-identical to
    /// a cold roll of the same module. Returns `true` when a body was
    /// spliced (`false` = no-change entry).
    pub(crate) fn replay(&self, module: &mut Module, id: FuncId) -> bool {
        let Some(body) = &self.body else {
            return false;
        };
        let type_map = module.types.absorb(&body.types, 0);
        let identity = type_map.iter().enumerate().all(|(i, t)| t.index() == i);
        let mut func = body.func.clone();

        let mut global_map: HashMap<GlobalId, GlobalId> = HashMap::new();
        for (donor, name) in &body.base_globals {
            let target = module
                .global_by_name(name)
                .expect("closure key guarantees every referenced global");
            global_map.insert(*donor, target);
        }
        for (donor, data) in &body.new_globals {
            let mut data = data.clone();
            data.ty = type_map[data.ty.index()];
            data.name = module.fresh_global_name(name_prefix(&data.name));
            let merged = module.add_global(data);
            global_map.insert(*donor, merged);
        }
        func.remap_globals(|g| {
            *global_map
                .get(&g)
                .expect("replayed body references an unmapped global")
        });
        if !identity {
            func.remap_types(|t| type_map[t.index()]);
        }

        let mut func_map: HashMap<FuncId, FuncId> = HashMap::new();
        func_map.insert(body.self_id, id);
        for (donor, name) in &body.callees {
            let target = module
                .func_by_name(name)
                .expect("closure key guarantees every callee");
            func_map.insert(*donor, target);
        }
        // Dead arena entries can reference call sites outside the live
        // instruction stream; they never print, so identity is safe.
        func.remap_funcs(|f| func_map.get(&f).copied().unwrap_or(f));

        let target = module.func(id);
        func.name = target.name.clone();
        func.effects = target.effects;
        module.replace_func(id, func);
        true
    }
}

/// Cumulative counters of a [`MemoStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStoreStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted (including replacements).
    pub inserts: u64,
    /// Entries evicted by the clock hand.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

impl MemoStoreStats {
    /// Fraction of lookups served from the store, in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Slot {
    entry: Arc<StoreEntry>,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// passes over the slot.
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    slots: HashMap<String, Slot>,
    /// Clock ring over resident keys.
    ring: VecDeque<String>,
}

/// Sharded, capacity-bounded cross-request cache of rolled functions.
///
/// Lookup and insert lock one shard; the shard is chosen by key hash, so
/// concurrent connections rarely contend. Eviction is clock (second
/// chance): a hit sets the slot's referenced bit, and an insert into a full
/// shard sweeps the ring, demoting referenced slots and evicting the first
/// unreferenced one.
pub struct MemoStore {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl MemoStore {
    /// A store holding at most (approximately) `capacity` entries across
    /// 16 shards. A zero capacity is promoted to one entry per shard.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 16)
    }

    /// [`MemoStore::new`] with an explicit shard count (tests use 1 to make
    /// eviction order deterministic).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        MemoStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Locks `shard`, recovering from poisoning. A request thread that
    /// panics while holding a shard (after running out of memory, say)
    /// poisons it; treating that as fatal would fail every later request
    /// hashing into the shard. Recovery is sound because the critical
    /// sections keep `slots` coherent at every step — the one structure
    /// a panic can leave stale is the clock `ring`, and the eviction
    /// sweep skips ring entries with no resident slot.
    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks `key` up, marking the entry recently used on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<StoreEntry>> {
        let mut shard = Self::lock(self.shard_of(key));
        match shard.slots.get_mut(key) {
            Some(slot) => {
                slot.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting with second chance if the
    /// shard is full.
    pub fn insert(&self, key: String, entry: Arc<StoreEntry>) {
        let mut shard = Self::lock(self.shard_of(&key));
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = shard.slots.get_mut(&key) {
            slot.entry = entry;
            slot.referenced = true;
            return;
        }
        while shard.slots.len() >= self.shard_capacity {
            let Some(victim) = shard.ring.pop_front() else {
                break;
            };
            let Some(slot) = shard.slots.get_mut(&victim) else {
                // A panic between the ring push and the slot insert of a
                // previous call (recovered above) leaves a ring entry with
                // no resident slot; drop it and keep sweeping. Panicking
                // here instead would poison the shard all over again.
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                shard.ring.push_back(victim);
            } else {
                shard.slots.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.ring.push_back(key.clone());
        shard.slots.insert(
            key,
            Slot {
                entry,
                referenced: false,
            },
        );
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).slots.len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> MemoStoreStats {
        MemoStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn entry(n: u64) -> Arc<StoreEntry> {
        Arc::new(StoreEntry {
            body: None,
            stats: RolagStats {
                attempted: n,
                ..Default::default()
            },
        })
    }

    #[test]
    fn second_chance_evicts_cold_entries_first() {
        let store = MemoStore::with_shards(2, 1);
        store.insert("a".into(), entry(1));
        store.insert("b".into(), entry(2));
        assert!(store.get("a").is_some(), "a is now referenced");
        store.insert("c".into(), entry(3));
        // b was unreferenced: the clock demotes a and evicts b.
        assert!(store.get("b").is_none());
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.inserts, 3);
    }

    #[test]
    fn replacement_does_not_grow_the_ring() {
        let store = MemoStore::with_shards(2, 1);
        store.insert("a".into(), entry(1));
        store.insert("a".into(), entry(2));
        store.insert("b".into(), entry(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().stats.attempted, 2);
        assert_eq!(store.stats().evictions, 0);
    }

    /// Cycle a working set three times larger than the store through one
    /// shard: the counters must stay mutually consistent (every insert is
    /// resident or evicted, every lookup is a hit or a miss) and a key
    /// re-inserted after eviction must serve its *new* entry.
    #[test]
    fn counters_stay_consistent_under_eviction_pressure() {
        let capacity = 4;
        let store = MemoStore::with_shards(capacity, 1);
        let key = |i: usize| format!("k{i}");
        for round in 0..3u64 {
            for i in 0..3 * capacity {
                if store.get(&key(i)).is_none() {
                    store.insert(key(i), entry(round * 100 + i as u64));
                }
            }
        }
        let stats = store.stats();
        assert_eq!(stats.entries, capacity, "store stays at capacity");
        assert_eq!(
            stats.inserts - stats.evictions,
            stats.entries as u64,
            "inserted minus evicted is resident: {stats:?}"
        );
        assert_eq!(
            stats.hits + stats.misses,
            (3 * 3 * capacity) as u64,
            "every lookup is a hit or a miss: {stats:?}"
        );
        assert!(stats.evictions >= (2 * capacity) as u64, "{stats:?}");

        // Evict k0 for sure (sweep the whole ring with cold keys), then
        // re-insert it: the slot must hold the fresh entry, not a stale
        // resurrection.
        for i in 100..100 + 2 * capacity {
            store.insert(key(i), entry(0));
        }
        assert!(store.get(&key(0)).is_none(), "k0 was evicted");
        store.insert(key(0), entry(777));
        assert_eq!(store.get(&key(0)).unwrap().stats.attempted, 777);
    }

    /// A thread that panics while holding a shard must not take the store
    /// down with it: later lookups and inserts on the same shard succeed.
    #[test]
    fn store_survives_a_poisoned_shard() {
        let store = MemoStore::with_shards(4, 1);
        store.insert("before".into(), entry(1));
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = store.shards[0].lock().unwrap();
                panic!("injected panic under the shard lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(store.shards[0].lock().is_err(), "shard is poisoned");
        assert!(store.get("before").is_some());
        store.insert("after".into(), entry(2));
        assert_eq!(store.get("after").unwrap().stats.attempted, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn hit_rate_counts_lookups() {
        let store = MemoStore::new(8);
        store.insert("k".into(), entry(0));
        assert!(store.get("k").is_some());
        assert!(store.get("absent").is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    /// Same canonical body, different context: the closure key must keep
    /// the slots apart when a referenced global's *definition* differs,
    /// when a callee's effects differ, and when the options differ.
    #[test]
    fn store_key_pins_referenced_context() {
        let base = r#"
module "a"
global @tab : [4 x i32] = ints i32 [1, 2, 3, 4]
declare @ext(i32 %p0) -> i32 readnone
func @f(i32 %p0) -> i32 {
entry:
  %g = gep i32, @tab, i64 0
  %v = load i32, %g
  %c = call i32 @ext(%v)
  ret %c
}
"#;
        let m1 = parse_module(base).unwrap();
        let m2 = parse_module(&base.replace("[1, 2, 3, 4]", "[9, 2, 3, 4]")).unwrap();
        let m3 = parse_module(&base.replace("readnone", "readwrite")).unwrap();
        let opts = RolagOptions::default();
        let key = |m: &Module| store_key(m, m.func_by_name("f").unwrap(), &opts);
        assert_ne!(key(&m1), key(&m2), "global initializer must split slots");
        assert_ne!(key(&m1), key(&m3), "callee effects must split slots");
        assert_ne!(
            key(&m1),
            store_key(
                &m1,
                m1.func_by_name("f").unwrap(),
                &RolagOptions::measured()
            ),
            "options fingerprint must split slots"
        );

        // Same closure under a different module/function name: identical.
        let renamed = base
            .replace("module \"a\"", "module \"b\"")
            .replace("@f(", "@h(");
        let m4 = parse_module(&renamed).unwrap();
        assert_eq!(
            key(&m1),
            store_key(&m4, m4.func_by_name("h").unwrap(), &opts),
            "own name must not split slots"
        );
    }
}
