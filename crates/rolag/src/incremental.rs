//! Change tracking for the incremental fixpoint engine in [`crate::pass`].
//!
//! The fixpoint loop commits at most one roll per sweep, and a roll touches
//! a small neighbourhood of the function: the rolled block (which becomes
//! the preheader), the new loop and exit blocks, and whatever the cleanup
//! pipeline simplifies in their wake. Everything the pass computes per
//! block — candidate lists, size estimates, and reject verdicts — can
//! therefore be cached across sweeps, as long as a commit invalidates every
//! entry whose inputs may have changed.
//!
//! Soundness rests on one rule. All cross-block inputs of those cached
//! computations flow along SSA def-use edges:
//!
//! * seed collection resolves pointer operands through their (possibly
//!   cross-block) defining instructions — a *transitive* dependence on the
//!   **content** of blocks reachable from the cached block along use→def
//!   edges — and classifies reductions using whole-function use counts of
//!   the values the cached block defines — a *one-hop* dependence on which
//!   blocks **use** those values;
//! * the scheduling analysis classifies values as external by looking at
//!   their uses outside the candidate block — the same one-hop user
//!   dependence;
//! * the size model charges a `gep` zero bytes exactly when all of its
//!   direct users fold it into an addressing mode — one hop again.
//!
//! So after a commit the **dirty set** is *directed*: starting from the
//! content-changed blocks, dirtiness propagates transitively along def→use
//! edges (every block that — directly or through a chain of defining
//! instructions — reads something a changed block defines has a stale
//! pointer-resolution input), plus one hop along use→def edges from the
//! changed blocks only (the defining blocks of their operands see their
//! use counts and gep-folding users change). Blocks that merely share a
//! *definition* with a changed block — sibling users — keep their caches:
//! their content, their def chains, and the users of their own values are
//! all untouched. The old engine used the full undirected closure here,
//! which over-invalidated exactly those siblings (on straight-line TSVC
//! kernels every commit wiped every memo entry; see
//! `FixpointCacheStats::memo_hit_rate`).
//!
//! Edges are taken in both the old and new versions of the function — a
//! deleted use is as significant as an added one. Any block outside the
//! dirty set has byte-identical content *and* unchanged cross-block inputs,
//! so its cached candidates, size estimate, and memoized verdicts are
//! exactly what a fresh computation would produce. Change detection itself
//! is exact — blocks are compared structurally, never by hash — so the
//! engine's output is byte-identical to the full-rescan reference by
//! construction, not probabilistically.

use std::collections::{HashMap, HashSet, VecDeque};

use rolag_analysis::cost::BlockSizeCache;
use rolag_ir::{BlockId, Function, ValueDef, ValueId};
use rolag_lower::SizeSketch;

use crate::seeds::Candidate;

/// A memoized reject verdict for a candidate attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemoVerdict {
    /// The graph build, scheduling analysis, or code generator rejected
    /// the candidate.
    Schedule,
    /// The candidate generated code but the size delta was not profitable.
    Unprofitable,
    /// The candidate generated code but the translation validator refused
    /// to prove the rewrite (`RolagOptions::validate`).
    Validator,
}

/// One memoized verdict plus the blocks it depends on.
#[derive(Debug, Clone)]
pub(crate) struct MemoEntry {
    /// The replayable verdict.
    pub verdict: MemoVerdict,
    /// Blocks this verdict was derived from: the candidate's own block,
    /// plus (for profitability verdicts) every existing block the attempt
    /// changed or whose size estimate the delta recomputed. The entry dies
    /// when a commit dirties any of them.
    pub deps: Vec<BlockId>,
}

/// Per-function caches of the incremental engine, keyed by stable
/// [`BlockId`]s (blocks are only ever appended, never removed or renumbered,
/// and instruction/value arenas are append-only, so ids cached for clean
/// blocks stay valid across commits).
#[derive(Debug, Default)]
pub(crate) struct FunctionCache {
    /// Per-block size estimates (delta profitability, §IV-F).
    pub sizes: BlockSizeCache,
    /// Per-block lowered-size summaries (`RolagOptions::measured_cost`):
    /// machine code bytes plus regalloc interval fragments that recombine
    /// into an exact `measure_function` result without re-selecting clean
    /// blocks.
    pub sketch: SizeSketch,
    /// Per-block candidate lists (dirty-block worklist).
    pub cands: HashMap<BlockId, Vec<Candidate>>,
    /// Reject verdicts keyed by the structural candidate itself.
    pub memo: HashMap<Candidate, MemoEntry>,
}

impl FunctionCache {
    /// Drops every cached fact that may depend on a dirty block, then
    /// re-keys the surviving per-block entries to `revision` — the
    /// function's revision counter after the commit. Without the re-key the
    /// revision-aware caches would self-heal by dropping *everything* on
    /// their next sync (any structural mutation bumps the counter), which
    /// is safe but defeats the point of computing a dirty set at all.
    ///
    /// `sketch_adopted` says whether the commit installed the attempt's
    /// trial sketch (measured-cost mode): its changed blocks were already
    /// re-selected against the committed function, so per-block sketch
    /// invalidation would only throw that work away and re-keying suffices.
    /// Without an adopted sketch the dirty blocks' summaries are dropped —
    /// sound because `dirty` ⊇ changed ∪ measure-affected (the def→use
    /// closure plus the one-hop use→def hop covers both one-hop couplings
    /// of the lowered size).
    pub fn invalidate(&mut self, dirty: &HashSet<BlockId>, revision: u64, sketch_adopted: bool) {
        for &b in dirty {
            self.sizes.invalidate(b);
            self.cands.remove(&b);
        }
        self.sizes.carry_to(revision);
        if !sketch_adopted {
            for &b in dirty {
                self.sketch.invalidate(b);
            }
        }
        self.sketch.carry_to(revision);
        self.memo.retain(|cand, entry| {
            !dirty.contains(&cand.block()) && entry.deps.iter().all(|d| !dirty.contains(d))
        });
    }
}

/// The block defining `v`, when `v` is an instruction result.
fn def_block(f: &Function, v: ValueId) -> Option<BlockId> {
    match f.value(v) {
        ValueDef::Inst(i) => Some(f.inst(*i).block),
        _ => None,
    }
}

/// True when `block` has byte-identical content in both versions: same
/// label, same instruction list, identical data for every instruction, and
/// identical definitions behind every operand id (value arenas are
/// append-only, so for two snapshots of one function lineage id equality
/// already implies def equality — the extra check keeps the comparison
/// honest for arbitrary function pairs, e.g. in tests).
fn block_content_equal(old: &Function, new: &Function, block: BlockId) -> bool {
    let (a, b) = (old.block(block), new.block(block));
    if a.name != b.name || a.insts != b.insts {
        return false;
    }
    a.insts.iter().all(|&i| {
        old.inst(i) == new.inst(i)
            && old
                .inst(i)
                .operands
                .iter()
                .all(|&v| old.value(v) == new.value(v))
    })
}

/// Blocks whose content differs between `old` and `new` — two snapshots of
/// the same function, before and after a (speculative or committed) roll —
/// including blocks that exist only in `new`. Block ids are stable and
/// blocks are never removed, so `new`'s blocks are a superset of `old`'s.
pub(crate) fn changed_blocks(old: &Function, new: &Function) -> Vec<BlockId> {
    let shared = old.num_blocks().min(new.num_blocks());
    let mut out: Vec<BlockId> = (0..shared)
        .map(BlockId::from_index)
        .filter(|&b| !block_content_equal(old, new, b))
        .collect();
    out.extend((shared..new.num_blocks()).map(BlockId::from_index));
    out
}

/// [`changed_blocks`] computed in O(touched) from `new`'s open speculation
/// journal instead of a whole-function walk: the journal names every block
/// the window may have touched (a superset), and a content compare against
/// `old` — the pre-window clone — filters blocks the window restored
/// verbatim. Debug builds cross-check against the full walk.
pub(crate) fn speculated_changed_blocks(old: &Function, new: &Function) -> Vec<BlockId> {
    let out: Vec<BlockId> = new
        .speculated_blocks()
        .into_iter()
        .filter(|&b| b.index() >= old.num_blocks() || !block_content_equal(old, new, b))
        .collect();
    debug_assert_eq!(
        out,
        changed_blocks(old, new),
        "journal-filtered changed set diverged from the full walk"
    );
    out
}

/// Records the directed block-level def-use edges of `f`: `users[d]` holds
/// the blocks with an instruction whose operand is defined in block `d`,
/// and `defs[b]` the defining blocks of block `b`'s operands.
fn add_value_flow_edges(f: &Function, users: &mut [HashSet<usize>], defs: &mut [HashSet<usize>]) {
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            for &v in &f.inst(i).operands {
                if let Some(d) = def_block(f, v) {
                    if d != b {
                        users[d.index()].insert(b.index());
                        defs[b.index()].insert(d.index());
                    }
                }
            }
        }
    }
}

/// The dirty set of a commit — directed, per the module-level argument:
///
/// * **def→use, transitive**: every block reachable from a changed block
///   along def→use edges resolves some operand chain through changed
///   content, so its cached candidates, schedule verdicts, and size
///   estimate may be stale;
/// * **use→def, one hop from the changed blocks only**: the defining
///   blocks of a changed block's operands see the use counts and
///   gep-folding users of their values change. The hop does not continue —
///   those blocks' *content* is untouched, and every cached fact depends
///   on block content, never on another block's cached analysis.
///
/// Edges from either function version count (a deleted use is as
/// significant as an added one). Sibling users of a shared definition stay
/// clean — the old undirected closure dirtied them for nothing.
pub(crate) fn dirty_closure(
    old: &Function,
    new: &Function,
    changed: &[BlockId],
) -> HashSet<BlockId> {
    let n = old.num_blocks().max(new.num_blocks());
    let mut users: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut defs: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    add_value_flow_edges(old, &mut users, &mut defs);
    add_value_flow_edges(new, &mut users, &mut defs);

    let mut dirty: HashSet<BlockId> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &b in changed {
        if dirty.insert(b) {
            queue.push_back(b.index());
        }
    }
    // Forward transitive closure along def→use edges.
    while let Some(i) = queue.pop_front() {
        for &j in &users[i] {
            if dirty.insert(BlockId::from_index(j)) {
                queue.push_back(j);
            }
        }
    }
    // One hop along use→def edges from the *changed* blocks (not from the
    // whole forward closure).
    for &b in changed {
        for &d in &defs[b.index()] {
            dirty.insert(BlockId::from_index(d));
        }
    }
    dirty
}

/// Unchanged blocks whose *size estimate* may still differ between the two
/// versions: an instruction's size depends on its own content, its
/// operands' immutable definitions, and — for `gep` folding — its direct
/// users. Only the last is non-local, and only by one hop: a block editing
/// the users of a `gep` can flip the estimate of the block defining it. So
/// the affected set is the defining blocks of every operand used by the
/// changed blocks, in either version.
pub(crate) fn size_affected_blocks(
    old: &Function,
    new: &Function,
    changed: &[BlockId],
) -> HashSet<BlockId> {
    let changed_set: HashSet<BlockId> = changed.iter().copied().collect();
    let mut out = HashSet::new();
    for f in [old, new] {
        for &b in changed {
            if b.index() >= f.num_blocks() {
                continue;
            }
            for &i in &f.block(b).insts {
                for &v in &f.inst(i).operands {
                    if let Some(d) = def_block(f, v) {
                        if !changed_set.contains(&d) {
                            out.insert(d);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Unchanged blocks whose *machine code* (per-block lowered-size summary)
/// may differ between the two versions. The lowered size couples blocks in
/// both def-use directions, one hop each:
///
/// * a `gep`'s defining block drops to zero bytes exactly when every user
///   folds it — so the defining blocks of a changed block's operands are
///   affected (same hop as [`size_affected_blocks`]);
/// * a load or store *embeds the displacement* of the gep it folds — so
///   blocks using a value defined in a changed block are affected too (the
///   cheap TTI estimate has no such reverse edge: it prices loads and
///   stores without looking at the folded gep's constants).
pub(crate) fn measure_affected_blocks(
    old: &Function,
    new: &Function,
    changed: &[BlockId],
) -> HashSet<BlockId> {
    let changed_set: HashSet<BlockId> = changed.iter().copied().collect();
    let mut out = size_affected_blocks(old, new, changed);
    for f in [old, new] {
        for b in f.block_ids() {
            if changed_set.contains(&b) || out.contains(&b) {
                continue;
            }
            for &i in &f.block(b).insts {
                for &v in &f.inst(i).operands {
                    if let Some(d) = def_block(f, v) {
                        if changed_set.contains(&d) {
                            out.insert(b);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn two_funcs(a: &str, b: &str) -> (Function, Function) {
        let ma = parse_module(a).unwrap();
        let mb = parse_module(b).unwrap();
        let fa = ma.func(ma.func_by_name("f").unwrap()).clone();
        let fb = mb.func(mb.func_by_name("f").unwrap()).clone();
        (fa, fb)
    }

    #[test]
    fn identical_functions_have_no_changes() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  store i32 1, %g
  ret
}
"#;
        let (a, b) = two_funcs(text, text);
        assert!(changed_blocks(&a, &b).is_empty());
    }

    #[test]
    fn closure_dirties_defs_one_hop_but_not_sibling_users() {
        // def in b0, used in b1 and b2: changing b2 must dirty b0 (its
        // value's use set changed) but NOT b1 — b1's content, def chain,
        // and users are all untouched, so its caches are still exact.
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  br b1
b1:
  store i32 1, %g
  br b2
b2:
  store i32 2, %g
  ret
}
"#;
        let changed_text = text.replace("store i32 2", "store i32 3");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(2)]);
        let dirty = dirty_closure(&a, &b, &changed);
        assert!(dirty.contains(&BlockId::from_index(0)), "defining block");
        assert!(!dirty.contains(&BlockId::from_index(1)), "sibling user");
        assert!(dirty.contains(&BlockId::from_index(2)));

        // The one-hop size-affected set reaches the defining block too.
        let affected = size_affected_blocks(&a, &b, &changed);
        assert!(affected.contains(&BlockId::from_index(0)));
        assert!(!affected.contains(&BlockId::from_index(1)));
    }

    #[test]
    fn closure_follows_def_use_chains_transitively() {
        // b0 defines %g, b1 derives %h from %g, b2 uses %h. Changing b0
        // must dirty b1 (direct user) and b2 (resolves %h through b1's gep
        // back into b0's content) — the forward def→use closure.
        let text = r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  br b1
b1:
  %h = gep i32, %g, i64 2
  br b2
b2:
  store i32 1, %h
  ret
}
"#;
        let changed_text = text.replace("i64 0", "i64 4");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(0)]);
        let dirty = dirty_closure(&a, &b, &changed);
        assert!(dirty.contains(&BlockId::from_index(1)), "direct user");
        assert!(dirty.contains(&BlockId::from_index(2)), "transitive user");
    }

    #[test]
    fn measure_affected_includes_both_one_hop_directions() {
        // %g defined in entry, folded by the store in b1. Changing entry
        // affects b1's machine code (embedded displacement); changing b1
        // affects entry's (gep folding decision). Neither reaches b2.
        let text = r#"
module "t"
global @a : [4 x i32] = zero
global @b : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  br b1
b1:
  store i32 1, %g
  br b2
b2:
  %h = gep i32, @b, i64 2
  store i32 2, %h
  ret
}
"#;
        let changed_text = text.replace("i64 0\n  br b1", "i64 1\n  br b1");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(0)]);
        let affected = measure_affected_blocks(&a, &b, &changed);
        assert!(affected.contains(&BlockId::from_index(1)), "folding user");
        assert!(!affected.contains(&BlockId::from_index(2)));

        let changed = vec![BlockId::from_index(1)];
        let affected = measure_affected_blocks(&a, &b, &changed);
        assert!(affected.contains(&BlockId::from_index(0)), "folded def");
        assert!(!affected.contains(&BlockId::from_index(2)));
    }

    #[test]
    fn disconnected_blocks_stay_clean() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
global @b : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  store i32 1, %g
  br b1
b1:
  %h = gep i32, @b, i64 0
  store i32 2, %h
  ret
}
"#;
        let changed_text = text.replace("store i32 2", "store i32 9");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(1)]);
        let dirty = dirty_closure(&a, &b, &changed);
        assert!(!dirty.contains(&BlockId::from_index(0)), "no value flow");
    }
}
