//! Change tracking for the incremental fixpoint engine in [`crate::pass`].
//!
//! The fixpoint loop commits at most one roll per sweep, and a roll touches
//! a small neighbourhood of the function: the rolled block (which becomes
//! the preheader), the new loop and exit blocks, and whatever the cleanup
//! pipeline simplifies in their wake. Everything the pass computes per
//! block — candidate lists, size estimates, and reject verdicts — can
//! therefore be cached across sweeps, as long as a commit invalidates every
//! entry whose inputs may have changed.
//!
//! Soundness rests on one rule. All cross-block inputs of those cached
//! computations flow along SSA def-use edges:
//!
//! * seed collection resolves pointer operands through their (possibly
//!   cross-block) defining instructions, and classifies reductions using
//!   whole-function use counts of the values a block defines;
//! * the scheduling analysis classifies values as external by looking at
//!   their uses outside the candidate block;
//! * the size model charges a `gep` zero bytes exactly when all of its
//!   direct users fold it into an addressing mode.
//!
//! So after a commit the **dirty set** is the undirected transitive closure
//! of the content-changed blocks over block-level def-use edges (block X is
//! adjacent to block Y when an instruction in X has an operand defined in
//! Y), taken in both the old and new versions of the function. Any block
//! outside that closure has byte-identical content *and* an unchanged
//! def-use neighbourhood, so its cached candidates, size estimate, and
//! memoized verdicts are exactly what a fresh computation would produce.
//! Change detection itself is exact — blocks are compared structurally,
//! never by hash — so the engine's output is byte-identical to the
//! full-rescan reference by construction, not probabilistically.

use std::collections::{HashMap, HashSet, VecDeque};

use rolag_analysis::cost::BlockSizeCache;
use rolag_ir::{BlockId, Function, ValueDef, ValueId};

use crate::seeds::Candidate;

/// A memoized reject verdict for a candidate attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemoVerdict {
    /// The graph build, scheduling analysis, or code generator rejected
    /// the candidate.
    Schedule,
    /// The candidate generated code but the size delta was not profitable.
    Unprofitable,
    /// The candidate generated code but the translation validator refused
    /// to prove the rewrite (`RolagOptions::validate`).
    Validator,
}

/// One memoized verdict plus the blocks it depends on.
#[derive(Debug, Clone)]
pub(crate) struct MemoEntry {
    /// The replayable verdict.
    pub verdict: MemoVerdict,
    /// Blocks this verdict was derived from: the candidate's own block,
    /// plus (for profitability verdicts) every existing block the attempt
    /// changed or whose size estimate the delta recomputed. The entry dies
    /// when a commit dirties any of them.
    pub deps: Vec<BlockId>,
}

/// Per-function caches of the incremental engine, keyed by stable
/// [`BlockId`]s (blocks are only ever appended, never removed or renumbered,
/// and instruction/value arenas are append-only, so ids cached for clean
/// blocks stay valid across commits).
#[derive(Debug, Default)]
pub(crate) struct FunctionCache {
    /// Per-block size estimates (delta profitability, §IV-F).
    pub sizes: BlockSizeCache,
    /// Per-block candidate lists (dirty-block worklist).
    pub cands: HashMap<BlockId, Vec<Candidate>>,
    /// Reject verdicts keyed by the structural candidate itself.
    pub memo: HashMap<Candidate, MemoEntry>,
}

impl FunctionCache {
    /// Drops every cached fact that may depend on a dirty block.
    pub fn invalidate(&mut self, dirty: &HashSet<BlockId>) {
        for &b in dirty {
            self.sizes.invalidate(b);
            self.cands.remove(&b);
        }
        self.memo.retain(|cand, entry| {
            !dirty.contains(&cand.block()) && entry.deps.iter().all(|d| !dirty.contains(d))
        });
    }
}

/// The block defining `v`, when `v` is an instruction result.
fn def_block(f: &Function, v: ValueId) -> Option<BlockId> {
    match f.value(v) {
        ValueDef::Inst(i) => Some(f.inst(*i).block),
        _ => None,
    }
}

/// True when `block` has byte-identical content in both versions: same
/// label, same instruction list, identical data for every instruction, and
/// identical definitions behind every operand id (value arenas are
/// append-only, so for two snapshots of one function lineage id equality
/// already implies def equality — the extra check keeps the comparison
/// honest for arbitrary function pairs, e.g. in tests).
fn block_content_equal(old: &Function, new: &Function, block: BlockId) -> bool {
    let (a, b) = (old.block(block), new.block(block));
    if a.name != b.name || a.insts != b.insts {
        return false;
    }
    a.insts.iter().all(|&i| {
        old.inst(i) == new.inst(i)
            && old
                .inst(i)
                .operands
                .iter()
                .all(|&v| old.value(v) == new.value(v))
    })
}

/// Blocks whose content differs between `old` and `new` — two snapshots of
/// the same function, before and after a (speculative or committed) roll —
/// including blocks that exist only in `new`. Block ids are stable and
/// blocks are never removed, so `new`'s blocks are a superset of `old`'s.
pub(crate) fn changed_blocks(old: &Function, new: &Function) -> Vec<BlockId> {
    let shared = old.num_blocks().min(new.num_blocks());
    let mut out: Vec<BlockId> = (0..shared)
        .map(BlockId::from_index)
        .filter(|&b| !block_content_equal(old, new, b))
        .collect();
    out.extend((shared..new.num_blocks()).map(BlockId::from_index));
    out
}

/// Records an undirected edge between every pair of blocks connected by a
/// def-use relation in `f`.
fn add_value_flow_edges(f: &Function, adj: &mut [HashSet<usize>]) {
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            for &v in &f.inst(i).operands {
                if let Some(d) = def_block(f, v) {
                    if d != b {
                        adj[b.index()].insert(d.index());
                        adj[d.index()].insert(b.index());
                    }
                }
            }
        }
    }
}

/// The dirty set of a commit: the undirected transitive closure of
/// `changed` over block-level def-use edges of both function versions (an
/// edge present in either version propagates dirtiness — a deleted use is
/// as significant as an added one).
pub(crate) fn dirty_closure(
    old: &Function,
    new: &Function,
    changed: &[BlockId],
) -> HashSet<BlockId> {
    let n = old.num_blocks().max(new.num_blocks());
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    add_value_flow_edges(old, &mut adj);
    add_value_flow_edges(new, &mut adj);

    let mut dirty: HashSet<BlockId> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &b in changed {
        if dirty.insert(b) {
            queue.push_back(b.index());
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &adj[i] {
            if dirty.insert(BlockId::from_index(j)) {
                queue.push_back(j);
            }
        }
    }
    dirty
}

/// Unchanged blocks whose *size estimate* may still differ between the two
/// versions: an instruction's size depends on its own content, its
/// operands' immutable definitions, and — for `gep` folding — its direct
/// users. Only the last is non-local, and only by one hop: a block editing
/// the users of a `gep` can flip the estimate of the block defining it. So
/// the affected set is the defining blocks of every operand used by the
/// changed blocks, in either version.
pub(crate) fn size_affected_blocks(
    old: &Function,
    new: &Function,
    changed: &[BlockId],
) -> HashSet<BlockId> {
    let changed_set: HashSet<BlockId> = changed.iter().copied().collect();
    let mut out = HashSet::new();
    for f in [old, new] {
        for &b in changed {
            if b.index() >= f.num_blocks() {
                continue;
            }
            for &i in &f.block(b).insts {
                for &v in &f.inst(i).operands {
                    if let Some(d) = def_block(f, v) {
                        if !changed_set.contains(&d) {
                            out.insert(d);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn two_funcs(a: &str, b: &str) -> (Function, Function) {
        let ma = parse_module(a).unwrap();
        let mb = parse_module(b).unwrap();
        let fa = ma.func(ma.func_by_name("f").unwrap()).clone();
        let fb = mb.func(mb.func_by_name("f").unwrap()).clone();
        (fa, fb)
    }

    #[test]
    fn identical_functions_have_no_changes() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  store i32 1, %g
  ret
}
"#;
        let (a, b) = two_funcs(text, text);
        assert!(changed_blocks(&a, &b).is_empty());
    }

    #[test]
    fn closure_follows_cross_block_values_transitively() {
        // def in b0, used in b1 and b2: changing b2 must dirty b0 (direct
        // edge) and b1 (through b0) — the shared def couples all three.
        let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  br b1
b1:
  store i32 1, %g
  br b2
b2:
  store i32 2, %g
  ret
}
"#;
        let changed_text = text.replace("store i32 2", "store i32 3");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(2)]);
        let dirty = dirty_closure(&a, &b, &changed);
        assert!(dirty.contains(&BlockId::from_index(0)), "defining block");
        assert!(dirty.contains(&BlockId::from_index(1)), "sibling user");
        assert!(dirty.contains(&BlockId::from_index(2)));

        // The one-hop size-affected set only reaches the defining block.
        let affected = size_affected_blocks(&a, &b, &changed);
        assert!(affected.contains(&BlockId::from_index(0)));
        assert!(!affected.contains(&BlockId::from_index(1)));
    }

    #[test]
    fn disconnected_blocks_stay_clean() {
        let text = r#"
module "t"
global @a : [4 x i32] = zero
global @b : [4 x i32] = zero
func @f() -> void {
entry:
  %g = gep i32, @a, i64 0
  store i32 1, %g
  br b1
b1:
  %h = gep i32, @b, i64 0
  store i32 2, %h
  ret
}
"#;
        let changed_text = text.replace("store i32 2", "store i32 9");
        let (a, b) = two_funcs(text, &changed_text);
        let changed = changed_blocks(&a, &b);
        assert_eq!(changed, vec![BlockId::from_index(1)]);
        let dirty = dirty_closure(&a, &b, &changed);
        assert!(!dirty.contains(&BlockId::from_index(0)), "no value flow");
    }
}
