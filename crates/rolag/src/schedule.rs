//! Scheduling analysis (§IV-D, Fig. 13).
//!
//! Decides whether the instructions of an alignment graph can be rearranged
//! into loop-iteration order while preserving semantics:
//!
//! * every *external* instruction of the block must be placeable entirely
//!   before the loop (preheader side) or after it (exit side) — an
//!   instruction pulled both ways means a circular dependence crossing the
//!   graph boundary, which is prohibited;
//! * every pair of conflicting memory operations *inside* the graph must
//!   keep its original relative order under the new `(lane, node)`
//!   execution order;
//! * the values consumed by mismatching/identical/recurrence-init lanes
//!   must be available in the preheader (in particular, they must not
//!   themselves be rolled away).

use std::collections::{HashMap, HashSet};

use rolag_analysis::depgraph::BlockDeps;
use rolag_ir::{BlockId, Function, InstId, Module, Opcode};

use crate::align::{AlignGraph, NodeKind};

/// Where an external instruction is placed relative to the rolled loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Unknown,
    Before,
    After,
}

/// A valid placement produced by the analysis.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Instructions that stay in the preheader, in original order.
    pub before: Vec<InstId>,
    /// Instructions that move to the exit block, in original order (the
    /// original terminator is last).
    pub after: Vec<InstId>,
    /// The instructions the rolled loop replaces.
    pub graph_insts: HashSet<InstId>,
}

/// Runs the scheduling analysis. Returns `None` when the rearrangement
/// would break semantics.
pub fn analyze(
    module: &Module,
    func: &Function,
    block: BlockId,
    graph: &AlignGraph,
) -> Option<Schedule> {
    let graph_insts = graph.graph_insts();
    if graph_insts.is_empty() {
        return None;
    }
    let deps = BlockDeps::compute(module, func, block);
    let n = deps.len();
    let conflict_set: HashSet<(usize, usize)> = deps.mem_conflicts().iter().copied().collect();
    let pos_of = |inst: InstId| deps.position(inst);

    // Sanity: every graph instruction is in this block.
    let mut in_graph = vec![false; n];
    for &g in &graph_insts {
        let p = pos_of(g)?;
        in_graph[p] = true;
    }

    // --- availability of loop inputs ---------------------------------------
    // Values feeding the loop from outside (mismatch lanes, identical lanes,
    // recurrence inits) must not be instructions we are deleting.
    for node in graph.node_ids() {
        let data = graph.node(node);
        let feeds: Vec<rolag_ir::ValueId> = match &data.kind {
            NodeKind::Mismatch => data.lanes.clone(),
            NodeKind::Identical => vec![data.lanes[0]],
            NodeKind::Recurrence { init, .. } => vec![*init],
            NodeKind::Reduction { carry: Some(v), .. } => vec![*v],
            _ => continue,
        };
        for v in feeds {
            if let Some(inst) = func.value(v).as_inst() {
                if graph_insts.contains(&inst) {
                    return None;
                }
            }
        }
    }

    // --- lane-consistency of intra-graph uses -------------------------------
    // A rolled value may only be consumed by the same lane of another rolled
    // instruction (recurrences are routed through phis and exempt by
    // construction: the consuming lane reads the *previous* lane through the
    // recurrence node, whose shifted shape was validated when it was built).
    // (target-of-recurrence, consumer-of-recurrence) pairs: a use of the
    // target's lane k by the consumer's lane k+1 flows through the
    // recurrence phi and is legal.
    let mut shift_ok: HashSet<(crate::align::NodeId, crate::align::NodeId)> = HashSet::new();
    for rec in graph.node_ids() {
        let NodeKind::Recurrence { target, .. } = graph.node(rec).kind else {
            continue;
        };
        for user in graph.node_ids() {
            if graph.node(user).children.contains(&rec) {
                shift_ok.insert((target, user));
            }
        }
    }
    let uses = func.compute_uses();
    for (&inst, &(node, lane)) in &graph.claimed {
        let result = func.inst_result(inst);
        for &(user, _) in uses.of(result) {
            if let Some((user_node, user_lane)) = graph.claim_of(user) {
                if user_lane == lane {
                    continue;
                }
                // Shifted use through a recurrence: allowed when the user
                // consumes a recurrence of this node at the next lane.
                if user_lane == lane + 1 && shift_ok.contains(&(node, user_node)) {
                    continue;
                }
                return None;
            }
        }
    }
    // Reduction internals: all their intermediate values must stay inside
    // the tree (guaranteed single-use at collection) — double-check.
    for node in graph.node_ids() {
        if let NodeKind::Reduction { internal, .. } = &graph.node(node).kind {
            for &i in &internal[1..] {
                let result = func.inst_result(i);
                if uses.count(result) != 1 {
                    return None;
                }
            }
        }
    }

    // --- memory order inside the graph --------------------------------------
    // New execution order: iterations (lanes) outermost, emission order of
    // nodes within an iteration.
    let emission = graph.emission_order();
    let node_order: HashMap<_, _> = emission
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k))
        .collect();
    let mut new_key: HashMap<usize, (usize, usize)> = HashMap::new();
    for (&inst, &(node, lane)) in &graph.claimed {
        if let Some(p) = pos_of(inst) {
            new_key.insert(p, (lane, node_order[&node]));
        }
    }
    for &(a, b) in deps.mem_conflicts() {
        match (new_key.get(&a), new_key.get(&b)) {
            (Some(ka), Some(kb))
                // a < b originally; the rolled order must agree.
                if ka >= kb => {
                    return None;
                }
            _ => {} // handled by the external classification below
        }
    }

    // --- classify external instructions -------------------------------------
    let mut side = vec![Side::Unknown; n];
    let term = *func.block(block).insts.last()?;
    for p in 0..n {
        if in_graph[p] {
            continue;
        }
        let inst = deps.insts[p];
        let data = func.inst(inst);
        if inst == term {
            side[p] = Side::After;
            continue;
        }
        if data.opcode == Opcode::Phi {
            side[p] = Side::Before; // phis must stay at the block head
        }
        let mut before = side[p] == Side::Before;
        let mut after = false;
        #[allow(clippy::needless_range_loop)] // parallel index into two tables
        for g in 0..n {
            if !in_graph[g] {
                continue;
            }
            // SSA: graph depends on external -> external goes before;
            //      external depends on graph -> external goes after.
            if g > p && deps.depends_on(g, p) {
                before = true;
            }
            if p > g && deps.depends_on(p, g) {
                after = true;
            }
            // Memory: conflicting pairs keep their original order.
            let conflict = conflict_set.contains(&(p.min(g), p.max(g)));
            if conflict {
                if p < g {
                    before = true;
                } else {
                    after = true;
                }
            }
        }
        side[p] = match (before, after) {
            (true, true) => return None, // pulled both ways
            (true, false) => Side::Before,
            (false, true) => Side::After,
            (false, false) => Side::Unknown,
        };
    }

    // --- propagate constraints among externals -------------------------------
    // For external p < q with q depending on p (SSA) or conflicting memory:
    // placement must keep p before q, so (After, Before) is impossible and
    // Before pulls its suppliers Before / After pushes its dependents After.
    let ext_pairs: Vec<(usize, usize)> = {
        let mut pairs = Vec::new();
        for q in 0..n {
            if in_graph[q] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // parallel index
            for p in 0..q {
                if in_graph[p] {
                    continue;
                }
                let dep = deps.depends_on(q, p) || conflict_set.contains(&(p, q));
                if dep {
                    pairs.push((p, q));
                }
            }
        }
        pairs
    };
    loop {
        let mut changed = false;
        for &(p, q) in &ext_pairs {
            match (side[p], side[q]) {
                (Side::After, Side::Before) => return None,
                (Side::After, Side::Unknown) => {
                    side[q] = Side::After;
                    changed = true;
                }
                (Side::Unknown, Side::Before) => {
                    side[p] = Side::Before;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Independent leftovers go after the loop (Fig. 13).
    let mut before = Vec::new();
    let mut after = Vec::new();
    for p in 0..n {
        if in_graph[p] {
            continue;
        }
        match side[p] {
            Side::Before => before.push(deps.insts[p]),
            _ => after.push(deps.insts[p]),
        }
    }
    Some(Schedule {
        before,
        after,
        graph_insts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::GraphBuilder;
    use crate::options::RolagOptions;
    use rolag_ir::parser::parse_module;
    use rolag_ir::ValueId;

    /// Builds a graph from the store seeds of @f's entry block and runs the
    /// scheduling analysis.
    fn analyze_stores(text: &str) -> Option<(Schedule, usize)> {
        let module = parse_module(text).unwrap();
        let fid = module.func_by_name("f").unwrap();
        let mut func = module.func(fid).clone();
        let block = func.entry_block();
        // Mirror the real seed collector: only stores whose pointer
        // resolves to the global @a form the group under test.
        let target = module.global_by_name("a");
        let seeds: Vec<ValueId> = func
            .block(block)
            .insts
            .iter()
            .filter(|&&i| {
                let data = func.inst(i);
                data.opcode == Opcode::Store
                    && match rolag_analysis::alias::resolve_pointer(
                        &module,
                        &func,
                        data.operands[1],
                    )
                    .base
                    {
                        rolag_analysis::alias::BaseObject::Global(g) => Some(g) == target,
                        _ => false,
                    }
            })
            .map(|&i| func.inst_result(i))
            .collect();
        let opts = RolagOptions::default();
        let mut b = GraphBuilder::new(&module, &mut func, block, &opts, seeds.len());
        b.build_seed_root(&seeds)?;
        let graph = b.finish();
        let ginsts = graph.graph_insts().len();
        analyze(&module, &func, block, &graph).map(|s| (s, ginsts))
    }

    #[test]
    fn clean_store_sequence_schedules() {
        let (sched, ginsts) = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
func @f(i32 %p0) -> void {
entry:
  %v = mul i32 %p0, i32 3
  %a0 = gep i32, @a, i64 0
  store %v, %a0
  %a1 = gep i32, @a, i64 1
  store %v, %a1
  %a2 = gep i32, @a, i64 2
  store %v, %a2
  ret
}
"#,
        )
        .expect("should schedule");
        // %v feeds the loop -> before; ret -> after; 6 insts rolled.
        assert_eq!(sched.before.len(), 1);
        assert_eq!(sched.after.len(), 1);
        assert_eq!(ginsts, 6);
    }

    #[test]
    fn interleaved_conflicting_store_blocks_rolling() {
        // A store to a *may-alias* location sits between the group's
        // stores: it must stay after store#0 but before store#2 — pulled
        // both ways, so scheduling fails.
        let res = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
func @f(ptr %p0) -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  store i32 9, %p0
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  ret
}
"#,
        );
        assert!(res.is_none());
    }

    #[test]
    fn disjoint_interleaved_store_moves_after() {
        // Same shape, but the interleaved store goes to a provably distinct
        // global: it can be placed after the loop.
        let (sched, _) = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
global @b : [8 x i32] = zero
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  %b0 = gep i32, @b, i64 0
  store i32 9, %b0
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  ret
}
"#,
        )
        .expect("distinct bases schedule fine");
        // gep @b + store @b + ret after (gep folds with its store user).
        assert_eq!(sched.after.len(), 3);
    }

    #[test]
    fn user_of_rolled_value_goes_after() {
        let (sched, _) = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
declare @use(ptr %p0) -> void readwrite
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  %a2 = gep i32, @a, i64 2
  store i32 3, %a2
  call void @use(@a)
  ret
}
"#,
        )
        .expect("trailing call schedules after");
        assert_eq!(sched.after.len(), 2, "call + ret");
        assert!(sched.before.is_empty());
    }

    #[test]
    fn leading_call_stays_before() {
        let (sched, _) = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
declare @init(ptr %p0) -> void readwrite
func @f() -> void {
entry:
  call void @init(@a)
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  ret
}
"#,
        )
        .expect("leading call schedules before");
        assert_eq!(sched.before.len(), 1);
    }

    #[test]
    fn call_sandwiched_by_conflicts_fails() {
        // The external call conflicts with stores on both sides.
        let res = analyze_stores(
            r#"
module "t"
global @a : [8 x i32] = zero
declare @touch() -> void readwrite
func @f() -> void {
entry:
  %a0 = gep i32, @a, i64 0
  store i32 1, %a0
  call void @touch()
  %a1 = gep i32, @a, i64 1
  store i32 2, %a1
  ret
}
"#,
        );
        assert!(res.is_none());
    }
}
