//! Scale and scheduling-propagation stress tests.

use std::time::Instant;

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::check_equivalence;
use rolag_ir::parser::parse_module;

/// The AnghaBench highlight scaled up: a 72-field copy block (~290
/// instructions in one block) must roll in well under a second even though
/// dependence analysis is quadratic in the block size.
#[test]
fn kvm_72_field_copy_rolls_quickly() {
    let n = 72;
    let mut text = String::from("module \"kvm\"\n");
    text.push_str(&format!(
        "global @src : [{n} x i64] = ints i64 [{}]\n",
        (0..n)
            .map(|i| (i * 31 + 5).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    text.push_str(&format!("global @dst : [{n} x i64] = zero\n"));
    text.push_str("func @copy() -> void {\nentry:\n");
    for i in 0..n {
        text.push_str(&format!("  %s{i} = gep i64, @src, i64 {i}\n"));
        text.push_str(&format!("  %v{i} = load i64, %s{i}\n"));
        text.push_str(&format!("  %d{i} = gep i64, @dst, i64 {i}\n"));
        text.push_str(&format!("  store %v{i}, %d{i}\n"));
    }
    text.push_str("  ret\n}\n");

    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let start = Instant::now();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    let elapsed = start.elapsed();
    assert_eq!(stats.rolled, 1);
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "rolling 288 instructions took {elapsed:?}"
    );
    check_equivalence(&original, &rolled, "copy", &[]).expect("equivalent");
    // ~90% reduction, like the paper's best AnghaBench case.
    assert!(stats.reduction_percent() > 80.0);
}

/// Many independent small groups in one block: the pass iterates, committing
/// one roll per fixpoint round, and every group lands.
#[test]
fn multiple_groups_in_one_block_all_roll() {
    let groups = 4;
    let lanes = 8;
    let mut text = String::from("module \"multi\"\n");
    for g in 0..groups {
        text.push_str(&format!("global @a{g} : [{lanes} x i32] = zero\n"));
    }
    text.push_str("func @f() -> void {\nentry:\n");
    for g in 0..groups {
        for i in 0..lanes {
            text.push_str(&format!("  %g{g}_{i} = gep i32, @a{g}, i64 {i}\n"));
            text.push_str(&format!("  store i32 {}, %g{g}_{i}\n", g * 100 + i * 3));
        }
    }
    text.push_str("  ret\n}\n");

    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, groups as u64, "every group rolls");
    check_equivalence(&original, &rolled, "f", &[]).expect("equivalent");
}

/// Scheduling propagation: an external chain hanging off a *preheader-side*
/// value must be dragged before the loop as a unit, and a chain consuming a
/// rolled value must move after it — even when the chains interleave with
/// the rollable stores in program order.
#[test]
fn external_chains_propagate_to_the_correct_side() {
    let mut text = String::from(
        "module \"prop\"\nglobal @a : [6 x i32] = zero\nfunc @f(i32 %p0) -> i32 {\nentry:\n",
    );
    // pre-chain interleaved between stores (independent of the stores).
    text.push_str("  %g0 = gep i32, @a, i64 0\n  store %p0, %g0\n");
    text.push_str("  %pre1 = mul i32 %p0, i32 3\n");
    text.push_str("  %g1 = gep i32, @a, i64 1\n  store %pre1, %g1\n");
    text.push_str("  %pre2 = add i32 %pre1, i32 7\n");
    for i in 2..6 {
        text.push_str(&format!(
            "  %g{i} = gep i32, @a, i64 {i}\n  store %pre2, %g{i}\n"
        ));
    }
    // post-chain: consumes memory the loop writes.
    text.push_str("  %q = gep i32, @a, i64 3\n  %post = load i32, %q\n  %post2 = xor i32 %post, i32 5\n  ret %post2\n}\n");

    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    check_equivalence(
        &original,
        &rolled,
        "f",
        &[rolag_ir::interp::IValue::Int(11)],
    )
    .expect("equivalent");
    // The stores have three distinct stored values (p0, pre1, pre2):
    // rollable only via a stack mismatch array, so profitability may reject
    // — but if it rolled, the pre-chain fed the preheader correctly, which
    // the equivalence check already proved. Either way the decision is
    // recorded:
    assert_eq!(
        stats.attempted,
        stats.rolled + stats.rejected_profit + stats.rejected_schedule
    );
}

/// Rolling applies inside non-entry blocks too: a store run behind a
/// branch rolls, and the branch structure is preserved around it.
#[test]
fn rolls_inside_guarded_blocks() {
    let n = 10;
    let mut text = String::from(
        "module \"g\"\nglobal @a : [10 x i32] = zero\nfunc @f(i32 %p0) -> void {\nentry:\n",
    );
    text.push_str("  %c = icmp sgt %p0, i32 0\n  condbr %c, then, exit\nthen:\n");
    for i in 0..n {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", i * 9 + 2));
    }
    text.push_str("  br exit\nexit:\n  ret\n}\n");

    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 1, "the guarded run rolls");
    for arg in [-3i64, 0, 5] {
        check_equivalence(
            &original,
            &rolled,
            "f",
            &[rolag_ir::interp::IValue::Int(arg)],
        )
        .expect("equivalent on both branch outcomes");
    }
    // 5 blocks now: entry, then(preheader), loop, loop-exit, exit.
    let f = rolled.func(rolled.func_by_name("f").unwrap());
    assert_eq!(f.num_blocks(), 5);
}

/// Three alternating groups (two store bases and a call) roll as a single
/// 3-way joint loop, preserving the interleaved side-effect order.
#[test]
fn three_way_joint_groups_roll_together() {
    let n = 6;
    let mut text = String::from(
        "module \"j3\"\ndeclare @tick(i64 %p0) -> void readwrite\nglobal @a : [6 x i32] = zero\nglobal @b : [6 x i32] = zero\nfunc @f() -> void {\nentry:\n",
    );
    for i in 0..n {
        text.push_str(&format!("  %ga{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %ga{i}\n", i * 2));
        text.push_str(&format!("  %gb{i} = gep i32, @b, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %gb{i}\n", i * 5 + 1));
        text.push_str(&format!("  call void @tick(i64 {i})\n"));
    }
    text.push_str("  ret\n}\n");

    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 1, "one joint loop covers all three groups");
    check_equivalence(&original, &rolled, "f", &[]).expect("equivalent");
    let f = rolled.func(rolled.func_by_name("f").unwrap());
    assert_eq!(f.num_blocks(), 3, "a single loop, not three");
    // The loop body contains exactly one call and two stores.
    let lp = f
        .block_ids()
        .find(|&b| f.block(b).name.starts_with("rolag.loop"))
        .unwrap();
    let in_loop = |op: rolag_ir::Opcode| {
        f.block(lp)
            .insts
            .iter()
            .filter(|&&i| f.inst(i).opcode == op)
            .count()
    };
    assert_eq!(in_loop(rolag_ir::Opcode::Call), 1);
    assert_eq!(in_loop(rolag_ir::Opcode::Store), 2);
}
