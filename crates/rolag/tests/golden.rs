//! Golden tests: exact structural expectations on RoLAG's output, written
//! as FileCheck-style scripts over the printed IR.

use rolag::{roll_module, RolagOptions};
use rolag_ir::filecheck::assert_filecheck;
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;

fn rolled(text: &str) -> String {
    let mut m = parse_module(text).unwrap();
    let stats = roll_module(&mut m, &RolagOptions::default());
    assert!(stats.rolled >= 1, "nothing rolled");
    print_module(&m)
}

#[test]
fn golden_store_sequence() {
    let mut text = String::from(
        "module \"g\"\nglobal @a : [8 x i32] = zero\nfunc @fill() -> void {\nentry:\n",
    );
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", 3 * i));
    }
    text.push_str("  ret\n}\n");
    let out = rolled(&text);
    assert_filecheck(
        &out,
        r#"
CHECK: func @fill() -> void {
CHECK: entry:
CHECK-NEXT: br rolag.loop
CHECK: rolag.loop
CHECK-NEXT: phi i64 [ i64 0, entry ]
CHECK-NOT: alloca
CHECK: mul
CHECK: gep i32, @a
CHECK: store
CHECK: icmp ult
CHECK-NEXT: condbr
CHECK: rolag.exit
CHECK-NEXT: ret
// Exactly one store remains in the whole function.
CHECK-COUNT-1: store
"#,
    );
}

#[test]
fn golden_recurrence_chain() {
    // Chained pure calls (the Fig. 4 shape): the chain becomes a phi whose
    // loop arm is the call itself.
    let text = r#"
module "g"
declare @fold(i32 %p0, i32 %p1) -> i32 readnone
global @t : [6 x i32] = ints i32 [1,2,3,4,5,6]
func @chain(i32 %p0) -> i32 {
entry:
  %v0 = load i32, @t
  %r1 = call i32 @fold(%p0, %v0)
  %g1 = gep i32, @t, i64 1
  %v1 = load i32, %g1
  %r2 = call i32 @fold(%r1, %v1)
  %g2 = gep i32, @t, i64 2
  %v2 = load i32, %g2
  %r3 = call i32 @fold(%r2, %v2)
  %g3 = gep i32, @t, i64 3
  %v3 = load i32, %g3
  %r4 = call i32 @fold(%r3, %v3)
  %g4 = gep i32, @t, i64 4
  %v4 = load i32, %g4
  %r5 = call i32 @fold(%r4, %v4)
  %g5 = gep i32, @t, i64 5
  %v5 = load i32, %g5
  %r6 = call i32 @fold(%r5, %v5)
  ret %r6
}
"#;
    let out = rolled(text);
    assert_filecheck(
        &out,
        r#"
CHECK: rolag.loop
// Two phis: the induction variable and the recurrence.
CHECK: phi i64 [ i64 0, entry ]
CHECK: phi i32 [ %p0, entry ]
// One call remains, consuming the recurrence phi.
CHECK-COUNT-1: call i32 @fold
CHECK: rolag.exit
CHECK: ret
"#,
    );
}

#[test]
fn golden_reduction_accumulator() {
    let mut text = String::from(
        "module \"g\"\nglobal @a : [8 x i32] = ints i32 [1,2,3,4,5,6,7,8]\nfunc @sum() -> i32 {\nentry:\n",
    );
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  %v{i} = load i32, %g{i}\n"));
    }
    text.push_str("  %s0 = add i32 %v0, %v1\n");
    for i in 1..7 {
        text.push_str(&format!("  %s{i} = add i32 %s{}, %v{}\n", i - 1, i + 1));
    }
    text.push_str("  ret %s6\n}\n");
    let out = rolled(&text);
    assert_filecheck(
        &out,
        r#"
CHECK: rolag.loop
// Accumulator initialized with the neutral element of add.
CHECK: phi i32 [ i32 0, entry ]
CHECK-COUNT-1: load i32
// One accumulate plus the latch increment.
CHECK-COUNT-2: add
CHECK: ret
"#,
    );
}

#[test]
fn golden_constant_mismatch_array() {
    // Irregular constants: a rodata table and an indexed load appear.
    let vals = [9, 2, 7, 1, 8, 3, 6, 4, 11, 5, 10, 0];
    let mut text =
        String::from("module \"g\"\nglobal @a : [12 x i32] = zero\nfunc @f() -> void {\nentry:\n");
    for (i, v) in vals.iter().enumerate() {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {v}, %g{i}\n"));
    }
    text.push_str("  ret\n}\n");
    let out = rolled(&text);
    assert_filecheck(
        &out,
        r#"
CHECK: const @rolag.cdata{{.*}}
CHECK: func @f
CHECK: rolag.loop
CHECK: gep i32, @rolag.cdata
CHECK-NEXT: load i32
CHECK: store
CHECK: condbr
"#
        .replace("{{.*}}", "")
        .as_str(),
    );
}
