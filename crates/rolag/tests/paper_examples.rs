//! End-to-end tests on the paper's running examples:
//!
//! * Fig. 3 — `aegis128_save_state_neon`: five calls with a regular pointer
//!   pattern (gep-neutral + sequences);
//! * Fig. 4 — `hdmi_wp_audio_config_format`: six chained calls (recurrence +
//!   reversed sequence);
//! * Fig. 11 — `DotProduct`: a reduction tree;
//! * Fig. 12 — alternating store/call groups (joint alignment);
//! * the AnghaBench highlight — a 72-field struct-to-struct copy.
//!
//! Every test checks three things: the roll happened, the rolled module
//! verifies, and interpretation is observationally equivalent (same return
//! value, same external-call trace, same final memory).

use rolag::{roll_module, RolagOptions, RolagStats};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter, Outcome};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::Module;

fn roll_and_compare(text: &str, entry: &str, args: &[IValue]) -> (Module, RolagStats, Outcome) {
    let orig = parse_module(text).expect("parse");
    let mut rolled = orig.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    if let Err(errors) = verify_module(&rolled) {
        panic!(
            "rolled module does not verify: {errors:?}\n{}",
            print_module(&rolled)
        );
    }
    if let Err(msg) = check_equivalence(&orig, &rolled, entry, args) {
        panic!("behaviour changed: {msg}\n{}", print_module(&rolled));
    }
    let mut ib = Interpreter::new(&rolled);
    let ob = ib.run(entry, args).expect("rolled runs");
    (rolled, stats, ob)
}

/// Fig. 3: five `vst1q_u8(state + i*16, st.v[i])` calls. The first operand
/// mixes the bare pointer with byte-offset geps (neutral pointer
/// operations); the second walks an array of 16-byte vectors (modelled here
/// as i64 loads for interpretability).
#[test]
fn fig3_aegis128_save_state() {
    let text = r#"
module "aegis"
declare @vst1q_u8(ptr %p0, i64 %p1) -> void readwrite
global @stv : [5 x i64] = ints i64 [11, 22, 33, 44, 55]
global @state : [10 x i64] = zero
func @save_state() -> void {
entry:
  %v0 = load i64, @stv
  call void @vst1q_u8(@state, %v0)
  %s1 = gep i8, @state, i64 16
  %g1 = gep i64, @stv, i64 1
  %v1 = load i64, %g1
  call void @vst1q_u8(%s1, %v1)
  %s2 = gep i8, @state, i64 32
  %g2 = gep i64, @stv, i64 2
  %v2 = load i64, %g2
  call void @vst1q_u8(%s2, %v2)
  %s3 = gep i8, @state, i64 48
  %g3 = gep i64, @stv, i64 3
  %v3 = load i64, %g3
  call void @vst1q_u8(%s3, %v3)
  %s4 = gep i8, @state, i64 64
  %g4 = gep i64, @stv, i64 4
  %v4 = load i64, %g4
  call void @vst1q_u8(%s4, %v4)
  ret
}
"#;
    let (rolled, stats, outcome) = roll_and_compare(text, "save_state", &[]);
    assert_eq!(stats.rolled, 1, "the five calls roll into one loop");
    assert!(stats.nodes.gep_neutral >= 1, "state+0 unified via p+0==p");
    assert!(stats.nodes.sequence >= 1, "0,16,32,48,64 and 0..4");
    assert_eq!(outcome.trace.len(), 5, "all five calls still happen");
    assert!(stats.size_after < stats.size_before);
    let f = rolled.func(rolled.func_by_name("save_state").unwrap());
    assert_eq!(f.num_blocks(), 3);
}

/// Fig. 4: `r = FLD_MOD(r, fmt->field, i, i)` chained six times, with the
/// struct fields read in reverse order. The chain becomes a recurrence phi
/// and the field offsets a descending sequence.
#[test]
fn fig4_hdmi_chained_calls() {
    let text = r#"
module "hdmi"
declare @fld_mod(i32 %p0, i32 %p1, i32 %p2, i32 %p3) -> i32 readnone
declare @hdmi_read_reg(ptr %p0) -> i32 readonly
declare @hdmi_write_reg(ptr %p0, i32 %p1) -> void readwrite
global @fmt : [6 x i32] = ints i32 [7, 6, 5, 4, 3, 2]
func @config_format(ptr %p0) -> void {
entry:
  %r0 = call i32 @hdmi_read_reg(%p0)
  %f5 = gep i32, @fmt, i32 5
  %v5 = load i32, %f5
  %r1 = call i32 @fld_mod(%r0, %v5, i32 5, i32 5)
  %f4 = gep i32, @fmt, i32 4
  %v4 = load i32, %f4
  %r2 = call i32 @fld_mod(%r1, %v4, i32 4, i32 4)
  %f3 = gep i32, @fmt, i32 3
  %v3 = load i32, %f3
  %r3 = call i32 @fld_mod(%r2, %v3, i32 3, i32 3)
  %f2 = gep i32, @fmt, i32 2
  %v2 = load i32, %f2
  %r4 = call i32 @fld_mod(%r3, %v2, i32 2, i32 2)
  %f1 = gep i32, @fmt, i32 1
  %v1 = load i32, %f1
  %r5 = call i32 @fld_mod(%r4, %v1, i32 1, i32 1)
  %f0 = gep i32, @fmt, i32 0
  %v0 = load i32, %f0
  %r6 = call i32 @fld_mod(%r5, %v0, i32 0, i32 0)
  call void @hdmi_write_reg(%p0, %r6)
  ret
}
"#;
    let (_, stats, outcome) = roll_and_compare(text, "config_format", &[IValue::Ptr(0)]);
    assert_eq!(stats.rolled, 1, "the six fld_mod calls roll");
    assert!(stats.nodes.recurrence >= 1, "chained r threads a phi");
    assert!(stats.nodes.sequence >= 1, "5..0,-1");
    // read_reg + 6 fld_mod + write_reg.
    assert_eq!(outcome.trace.len(), 8);
    assert_eq!(outcome.trace[0].callee, "hdmi_read_reg");
    assert_eq!(outcome.trace[7].callee, "hdmi_write_reg");
}

/// Fig. 11: `a[0]*b[0] + a[1]*b[1] + a[2]*b[2]` — the whole reduction tree
/// becomes a single accumulator loop. Checked at both the paper's length
/// (3) and a longer 8-term variant.
#[test]
fn fig11_dot_product_reduction() {
    fn dot(n: usize) -> String {
        let mut t = String::from("module \"dot\"\n");
        t.push_str(&format!(
            "global @a : [{n} x i32] = ints i32 [{}]\n",
            (0..n)
                .map(|i| (i + 1).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        t.push_str(&format!(
            "global @b : [{n} x i32] = ints i32 [{}]\n",
            (0..n)
                .map(|i| (2 * i + 1).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        t.push_str("func @dot() -> i32 {\nentry:\n");
        for i in 0..n {
            t.push_str(&format!("  %ga{i} = gep i32, @a, i64 {i}\n"));
            t.push_str(&format!("  %la{i} = load i32, %ga{i}\n"));
            t.push_str(&format!("  %gb{i} = gep i32, @b, i64 {i}\n"));
            t.push_str(&format!("  %lb{i} = load i32, %gb{i}\n"));
            t.push_str(&format!("  %m{i} = mul i32 %la{i}, %lb{i}\n"));
        }
        t.push_str("  %s0 = add i32 %m0, %m1\n");
        for i in 1..n - 1 {
            t.push_str(&format!("  %s{i} = add i32 %s{}, %m{}\n", i - 1, i + 1));
        }
        t.push_str(&format!("  ret %s{}\n}}\n", n - 2));
        t
    }

    let expected: i64 = (0..8).map(|i| ((i + 1) * (2 * i + 1)) as i64).sum();
    let (_, stats, outcome) = roll_and_compare(&dot(8), "dot", &[]);
    assert_eq!(stats.rolled, 1, "8-term dot product rolls");
    assert!(stats.nodes.reduction >= 1);
    assert_eq!(outcome.ret, IValue::Int(expected));

    let (_, stats3, out3) = roll_and_compare(&dot(3), "dot", &[]);
    assert_eq!(stats3.rolled, 1, "even the 3-term tree rolls profitably");
    assert!(stats3.nodes.reduction >= 1);
    let expected3: i64 = (0..3).map(|i| ((i + 1) * (2 * i + 1)) as i64).sum();
    assert_eq!(out3.ret, IValue::Int(expected3));
}

/// Fig. 12: alternating stores and calls must roll as a single joint loop —
/// the side effects make two separate loops illegal.
#[test]
fn fig12_joint_alternating_groups() {
    let mut text = String::from(
        "module \"joint\"\ndeclare @tick(i32 %p0, ptr %p1) -> void readwrite\nglobal @a : [6 x i32] = zero\nfunc @f() -> void {\nentry:\n",
    );
    for i in 0..6 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", 10 * i));
        text.push_str(&format!("  call void @tick(i32 {i}, @a)\n"));
    }
    text.push_str("  ret\n}\n");
    let (rolled, stats, outcome) = roll_and_compare(&text, "f", &[]);
    assert_eq!(stats.rolled, 1, "one joint loop");
    assert_eq!(outcome.trace.len(), 6);
    let f = rolled.func(rolled.func_by_name("f").unwrap());
    assert_eq!(f.num_blocks(), 3, "a single loop was created, not two");
}

/// The AnghaBench best case (§V-A): a long run of field-to-field copies
/// between two structs, rollable because consecutive fields form a strided
/// access. Reduction of almost 90% in the paper; here we check the roll
/// happens and the copies survive.
#[test]
fn kvm_style_field_copies() {
    let n = 24;
    let mut text = String::from("module \"kvm\"\n");
    text.push_str(&format!("global @src : [{n} x i64] = ints i64 ["));
    text.push_str(
        &(0..n)
            .map(|i| (1000 + 7 * i).to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    text.push_str("]\n");
    text.push_str(&format!("global @dst : [{n} x i64] = zero\n"));
    text.push_str("func @copy() -> void {\nentry:\n");
    for i in 0..n {
        text.push_str(&format!("  %gs{i} = gep i64, @src, i64 {i}\n"));
        text.push_str(&format!("  %v{i} = load i64, %gs{i}\n"));
        text.push_str(&format!("  %gd{i} = gep i64, @dst, i64 {i}\n"));
        text.push_str(&format!("  store %v{i}, %gd{i}\n"));
    }
    text.push_str("  ret\n}\n");
    let (rolled, stats, _) = roll_and_compare(&text, "copy", &[]);
    assert_eq!(stats.rolled, 1);
    let f = rolled.func(rolled.func_by_name("copy").unwrap());
    // The rolled function is drastically smaller than 4 insts/field.
    assert!(f.num_live_insts() < 20);
    assert!(stats.reduction_percent() > 70.0, "near-90% class reduction");
}

/// Rolling must refuse when an interleaved conflicting store would have to
/// cross the loop.
#[test]
fn conflicting_interleave_is_rejected_end_to_end() {
    let text = r#"
module "t"
global @a : [4 x i32] = zero
func @f(ptr %p0) -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 1, %g0
  %g1 = gep i32, @a, i64 1
  store i32 2, %g1
  store i32 99, %p0
  %g2 = gep i32, @a, i64 2
  store i32 3, %g2
  %g3 = gep i32, @a, i64 3
  store i32 4, %g3
  ret
}
"#;
    // %p0 may alias @a, so the roll of the four @a-stores must not happen.
    let orig = parse_module(text).unwrap();
    let mut rolled = orig.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert_eq!(stats.rolled, 0);
    assert!(stats.rejected_schedule >= 1);
}

/// External uses of intermediate iterations flow out through an array; the
/// final iteration's value flows out directly.
#[test]
fn external_uses_of_rolled_values() {
    let text = r#"
module "t"
declare @seed(i32 %p0) -> i32 readnone
func @f() -> i32 {
entry:
  %c0 = call i32 @seed(i32 0)
  %c1 = call i32 @seed(i32 1)
  %c2 = call i32 @seed(i32 2)
  %c3 = call i32 @seed(i32 3)
  %c4 = call i32 @seed(i32 4)
  %c5 = call i32 @seed(i32 5)
  %c6 = call i32 @seed(i32 6)
  %c7 = call i32 @seed(i32 7)
  %x = xor i32 %c1, %c7
  %y = xor i32 %x, %c0
  ret %y
}
"#;
    let (_, stats, _) = roll_and_compare(text, "f", &[]);
    // Whether this is profitable depends on the out-array overhead; what
    // must hold is equivalence (checked by the helper) and a decision.
    assert_eq!(
        stats.rolled + stats.rejected_profit + stats.rejected_schedule,
        stats.attempted
    );
}
