//! Unit-level checks of the code generator's lowering decisions (§IV-E,
//! Fig. 14): which mismatch representation is chosen, how sequences are
//! materialized, and how externally used values leave the loop.

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::{check_equivalence, IValue};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::{GlobalInit, Module, Opcode};

fn roll(text: &str, entry: &str, args: &[IValue]) -> (Module, Module) {
    let original = parse_module(text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::default());
    assert!(
        stats.rolled >= 1,
        "expected a roll:\n{}",
        print_module(&rolled)
    );
    check_equivalence(&original, &rolled, entry, args).expect("equivalent");
    (original, rolled)
}

/// Counts live instructions with the given opcode across the function.
fn count_ops(m: &Module, func: &str, op: Opcode) -> usize {
    let f = m.func(m.func_by_name(func).unwrap());
    f.live_insts().filter(|&i| f.inst(i).opcode == op).count()
}

#[test]
fn constant_mismatches_become_rodata_arrays() {
    // Stored values have no progression; with enough lanes the roll pays
    // for a constant global array and no alloca is needed.
    let vals = [5, 1, 0, 9, 2, 8, 4, 3, 7, 6, 11, 10];
    let mut text =
        String::from("module \"t\"\nglobal @a : [12 x i32] = zero\nfunc @f() -> void {\nentry:\n");
    for (i, v) in vals.iter().enumerate() {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {v}, %g{i}\n"));
    }
    text.push_str("  ret\n}\n");
    let (orig, rolled) = roll(&text, "f", &[]);

    let new_consts: Vec<_> = rolled
        .global_ids()
        .filter(|&g| rolled.global(g).is_const)
        .collect();
    assert_eq!(new_consts.len(), 1, "one rodata array");
    match &rolled.global(new_consts[0]).init {
        GlobalInit::Ints { values, .. } => {
            assert_eq!(values, &vals.to_vec());
        }
        other => panic!("expected int initializer, got {other:?}"),
    }
    assert_eq!(count_ops(&rolled, "f", Opcode::Alloca), 0);
    assert_eq!(orig.num_globals() + 1, rolled.num_globals());
}

#[test]
fn pointer_mismatches_become_stack_arrays() {
    // Each lane loads from a *different* global scalar: the pointer group
    // mismatches with non-integer constants (addresses), which cannot form
    // a rodata int array — the generator must fill a stack array in the
    // preheader. Pointer stack arrays are expensive, so the profitability
    // analysis usually rejects them (the paper's Fig. 16 shows very few
    // mismatching nodes in *profitable* graphs); we therefore drive the
    // generator directly and check the form plus behavioural equivalence.
    let n = 12;
    let mut text = String::from("module \"t\"\n");
    for i in 0..n {
        text.push_str(&format!("global @s{i} : i32 = ints i32 [{}]\n", i * 9 + 1));
    }
    text.push_str(&format!("global @a : [{n} x i32] = zero\n"));
    text.push_str("func @f() -> void {\nentry:\n");
    for i in 0..n {
        text.push_str(&format!("  %v{i} = load i32, @s{i}\n"));
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store %v{i}, %g{i}\n"));
    }
    text.push_str("  ret\n}\n");

    let original = parse_module(&text).unwrap();
    let opts = RolagOptions::default();
    let mut rolled = original.clone();
    let fid = rolled.func_by_name("f").unwrap();
    let mut attempt = rolled.func(fid).clone();
    let block = attempt.entry_block();

    let cands = rolag::collect_candidates(&rolled, &attempt, &opts);
    let rolag::Candidate::Seeds { groups, .. } = &cands[0] else {
        panic!("expected a seed candidate");
    };
    let mut builder =
        rolag::GraphBuilder::new(&original, &mut attempt, block, &opts, groups[0].len());
    builder.build_seed_root(&groups[0]).expect("seeds align");
    let graph = builder.finish();
    assert_eq!(graph.count_kinds().mismatching, 1, "the pointer group");

    let sched = rolag::schedule::analyze(&original, &attempt, block, &graph).expect("schedules");
    rolag::codegen::generate(&mut rolled, &mut attempt, block, &graph, &sched).expect("generates");
    rolled.replace_func(fid, attempt);
    rolag_ir::verify::verify_module(&rolled).expect("verifies");

    assert!(count_ops(&rolled, "f", Opcode::Alloca) >= 1, "stack array");
    // No rodata int array was created for the pointer mismatches.
    assert_eq!(
        rolled
            .global_ids()
            .filter(|&g| rolled.global(g).is_const)
            .count(),
        0
    );
    check_equivalence(&original, &rolled, "f", &[]).expect("equivalent");
}

#[test]
fn unit_sequences_use_the_induction_variable_directly() {
    // Indices 0..7 step 1 = the iv itself: no mul/extra add for the index
    // materialization beyond the latch increment.
    let mut text = String::from(
        "module \"t\"\nglobal @a : [8 x i64] = zero\nfunc @f(i64 %p0) -> void {\nentry:\n",
    );
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i64, @a, i64 {i}\n"));
        text.push_str(&format!("  store %p0, %g{i}\n"));
    }
    text.push_str("  ret\n}\n");
    let (_, rolled) = roll(&text, "f", &[IValue::Int(9)]);
    // One add (latch), no mul.
    assert_eq!(count_ops(&rolled, "f", Opcode::Add), 1);
    assert_eq!(count_ops(&rolled, "f", Opcode::Mul), 0);
}

#[test]
fn strided_sequences_materialize_one_multiply() {
    // Stored values 0,7,14,...: value = iv*7 (a single mul, no extra add).
    let mut text =
        String::from("module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n");
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
    }
    text.push_str("  ret\n}\n");
    let (_, rolled) = roll(&text, "f", &[]);
    assert_eq!(count_ops(&rolled, "f", Opcode::Mul), 1);
    // adds: latch only (value needs no add since start == 0).
    assert_eq!(count_ops(&rolled, "f", Opcode::Add), 1);
}

#[test]
fn general_sequences_materialize_mul_plus_add() {
    // Values 5,12,19,...: value = iv*7 + 5.
    let mut text =
        String::from("module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n");
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7 + 5));
    }
    text.push_str("  ret\n}\n");
    let (_, rolled) = roll(&text, "f", &[]);
    assert_eq!(count_ops(&rolled, "f", Opcode::Mul), 1);
    assert_eq!(count_ops(&rolled, "f", Opcode::Add), 2, "value add + latch");
}

#[test]
fn final_lane_escape_uses_loop_value_directly() {
    // Only the last store's value escapes (returned): no out-array needed.
    let text = r#"
module "t"
declare @seed(i32 %p0) -> i32 readnone
global @a : [6 x i32] = zero
func @f() -> i32 {
entry:
  %c0 = call i32 @seed(i32 0)
  %g0 = gep i32, @a, i64 0
  store %c0, %g0
  %c1 = call i32 @seed(i32 1)
  %g1 = gep i32, @a, i64 1
  store %c1, %g1
  %c2 = call i32 @seed(i32 2)
  %g2 = gep i32, @a, i64 2
  store %c2, %g2
  %c3 = call i32 @seed(i32 3)
  %g3 = gep i32, @a, i64 3
  store %c3, %g3
  %c4 = call i32 @seed(i32 4)
  %g4 = gep i32, @a, i64 4
  store %c4, %g4
  %c5 = call i32 @seed(i32 5)
  %g5 = gep i32, @a, i64 5
  store %c5, %g5
  ret %c5
}
"#;
    let (_, rolled) = roll(text, "f", &[]);
    // No alloca: the escaping value is the final iteration's call result.
    assert_eq!(count_ops(&rolled, "f", Opcode::Alloca), 0);
}

#[test]
fn intermediate_lane_escape_goes_through_an_array() {
    // The *third* call's result escapes: it must be saved per iteration.
    let text = r#"
module "t"
declare @seed(i32 %p0) -> i32 readnone
global @a : [8 x i32] = zero
func @f() -> i32 {
entry:
  %c0 = call i32 @seed(i32 0)
  %g0 = gep i32, @a, i64 0
  store %c0, %g0
  %c1 = call i32 @seed(i32 1)
  %g1 = gep i32, @a, i64 1
  store %c1, %g1
  %c2 = call i32 @seed(i32 2)
  %g2 = gep i32, @a, i64 2
  store %c2, %g2
  %c3 = call i32 @seed(i32 3)
  %g3 = gep i32, @a, i64 3
  store %c3, %g3
  %c4 = call i32 @seed(i32 4)
  %g4 = gep i32, @a, i64 4
  store %c4, %g4
  %c5 = call i32 @seed(i32 5)
  %g5 = gep i32, @a, i64 5
  store %c5, %g5
  %c6 = call i32 @seed(i32 6)
  %g6 = gep i32, @a, i64 6
  store %c6, %g6
  %c7 = call i32 @seed(i32 7)
  %g7 = gep i32, @a, i64 7
  store %c7, %g7
  ret %c2
}
"#;
    let (_, rolled) = roll(text, "f", &[]);
    assert!(count_ops(&rolled, "f", Opcode::Alloca) >= 1, "out-array");
    // The exit block reloads the escaped lane.
    let f = rolled.func(rolled.func_by_name("f").unwrap());
    let exit = f
        .block_ids()
        .find(|&b| f.block(b).name.starts_with("rolag.exit"))
        .expect("exit block exists");
    assert!(f
        .block(exit)
        .insts
        .iter()
        .any(|&i| f.inst(i).opcode == Opcode::Load));
}

#[test]
fn preheader_loop_exit_structure() {
    let mut text =
        String::from("module \"t\"\nglobal @a : [8 x i32] = zero\nfunc @f() -> void {\nentry:\n");
    for i in 0..8 {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", i));
    }
    text.push_str("  ret\n}\n");
    let (_, rolled) = roll(&text, "f", &[]);
    let f = rolled.func(rolled.func_by_name("f").unwrap());
    assert_eq!(f.num_blocks(), 3);
    // entry: br loop; loop: phi ... condbr; exit: ret.
    let entry = f.entry_block();
    assert_eq!(f.successors(entry).len(), 1);
    let lp = f.successors(entry)[0];
    let succs = f.successors(lp);
    assert_eq!(succs.len(), 2);
    assert!(succs.contains(&lp), "loop back edge");
    let exit = *succs.iter().find(|&&b| b != lp).unwrap();
    assert_eq!(f.successors(exit).len(), 0, "exit returns");
    // The loop begins with the iv phi.
    assert_eq!(f.inst(f.block(lp).insts[0]).opcode, Opcode::Phi);
}
