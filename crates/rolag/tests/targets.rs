//! Target-specific profitability (§IV-F: "the compiler's target-specific
//! cost model"). The same candidate can be worth rolling on one target and
//! not another; behaviour is preserved on both.

use rolag::{roll_module, RolagOptions};
use rolag_analysis::cost::TargetKind;
use rolag_ir::interp::check_equivalence;
use rolag_ir::parser::parse_module;

fn store_run(n: usize) -> String {
    let mut text =
        format!("module \"t\"\nglobal @a : [{n} x i32] = zero\nfunc @f() -> void {{\nentry:\n");
    for i in 0..n {
        text.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        text.push_str(&format!("  store i32 {}, %g{i}\n", i * 7));
    }
    text.push_str("  ret\n}\n");
    text
}

fn rolls_on(target: TargetKind, n: usize) -> bool {
    let mut m = parse_module(&store_run(n)).unwrap();
    let opts = RolagOptions {
        target,
        ..RolagOptions::default()
    };
    let orig = m.clone();
    let stats = roll_module(&mut m, &opts);
    check_equivalence(&orig, &m, "f", &[]).expect("equivalent on every target");
    stats.rolled > 0
}

#[test]
fn long_runs_roll_on_both_targets() {
    assert!(rolls_on(TargetKind::X86_64, 10));
    assert!(rolls_on(TargetKind::Thumb2, 10));
}

#[test]
fn profitability_threshold_depends_on_the_target() {
    // Sweep run lengths: the break-even points must differ between the
    // targets. On x86-64, `mov dword [rip+g], imm32` duplication is very
    // expensive (6 B per store), so rolling pays off at shorter runs; on
    // Thumb-2 dense 2-byte encodings keep the straight-line form cheap for
    // longer.
    let x86_threshold = (2..12)
        .find(|&n| rolls_on(TargetKind::X86_64, n))
        .expect("x86 rolls eventually");
    let thumb_threshold = (2..12)
        .find(|&n| rolls_on(TargetKind::Thumb2, n))
        .expect("thumb rolls eventually");
    assert_ne!(
        x86_threshold, thumb_threshold,
        "the target cost model changes the decision point"
    );
    assert!(
        x86_threshold < thumb_threshold,
        "x86's expensive store-imm duplication rolls earlier \
         (x86 {x86_threshold} vs thumb {thumb_threshold})"
    );
}

#[test]
fn thumb_model_sizes_are_smaller() {
    // Sanity: Thumb-2 code is denser than x86-64 for the same IR.
    let m = parse_module(&store_run(8)).unwrap();
    let f = m.func(m.func_by_name("f").unwrap());
    let x = TargetKind::X86_64.function_estimate(&m, f);
    let t = TargetKind::Thumb2.function_estimate(&m, f);
    assert!(t > 0 && x > 0);
    assert!(t < x, "thumb {t} >= x86 {x}");
}
