//! Tests for the value-chain extension (paper future work, §V-C /
//! Fig. 20b): select-based min/max reductions and non-associative binop
//! chains roll when `enable_value_chains` is on and are left alone in the
//! paper's default configuration.

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::verify::verify_module;

/// The straight-line form of Fig. 20b: max = |a[i]| over unrolled
/// iterations, lowered to a chain of selects (cmp + select per element).
fn max_chain(n: usize) -> String {
    let mut t = String::from("module \"max\"\n");
    t.push_str(&format!(
        "global @a : [{n} x i32] = ints i32 [{}]\n",
        (0..n)
            .map(|i| ((i * 37 + 11) % 100).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    t.push_str("func @maxval() -> i32 {\nentry:\n");
    t.push_str("  %m0 = load i32, @a\n");
    let mut acc = "m0".to_string();
    for i in 1..n {
        t.push_str(&format!("  %g{i} = gep i32, @a, i64 {i}\n"));
        t.push_str(&format!("  %v{i} = load i32, %g{i}\n"));
        t.push_str(&format!("  %c{i} = icmp sgt %v{i}, %{acc}\n"));
        t.push_str(&format!("  %s{i} = select i32 %c{i}, %v{i}, %{acc}\n"));
        acc = format!("s{i}");
    }
    t.push_str(&format!("  ret %{acc}\n}}\n"));
    t
}

#[test]
fn select_chain_rolls_with_extension() {
    let text = max_chain(8);
    let original = parse_module(&text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::with_extensions());
    assert_eq!(stats.rolled, 1, "the select chain rolls");
    assert!(stats.nodes.recurrence >= 1, "the chain threads a phi");
    verify_module(&rolled).expect("verifies");
    check_equivalence(&original, &rolled, "maxval", &[]).expect("equivalent");

    let expected = (0..8).map(|i| ((i * 37 + 11) % 100) as i64).max().unwrap();
    let mut interp = Interpreter::new(&rolled);
    assert_eq!(
        interp.run("maxval", &[]).unwrap().ret,
        IValue::Int(expected)
    );
    assert!(stats.size_after < stats.size_before);
}

#[test]
fn select_chain_is_untouched_by_default() {
    // The paper's evaluated configuration does not support min/max
    // reductions (§V-C): the default options must not roll the chain.
    let text = max_chain(8);
    let mut m = parse_module(&text).unwrap();
    let stats = roll_module(&mut m, &RolagOptions::default());
    assert_eq!(stats.rolled, 0);
}

#[test]
fn subtraction_chain_rolls_with_extension() {
    // fsub is not associative, so it can never be a reduction tree; as a
    // chained dependence it still rolls exactly.
    let text = r#"
module "sub"
global @a : [6 x i32] = ints i32 [1, 2, 3, 4, 5, 6]
func @f(i32 %p0) -> i32 {
entry:
  %v0 = load i32, @a
  %s0 = sub i32 %p0, %v0
  %g1 = gep i32, @a, i64 1
  %v1 = load i32, %g1
  %s1 = sub i32 %s0, %v1
  %g2 = gep i32, @a, i64 2
  %v2 = load i32, %g2
  %s2 = sub i32 %s1, %v2
  %g3 = gep i32, @a, i64 3
  %v3 = load i32, %g3
  %s3 = sub i32 %s2, %v3
  %g4 = gep i32, @a, i64 4
  %v4 = load i32, %g4
  %s4 = sub i32 %s3, %v4
  %g5 = gep i32, @a, i64 5
  %v5 = load i32, %g5
  %s5 = sub i32 %s4, %v5
  ret %s5
}
"#;
    let original = parse_module(text).unwrap();
    let mut rolled = original.clone();
    let stats = roll_module(&mut rolled, &RolagOptions::with_extensions());
    assert_eq!(stats.rolled, 1);
    check_equivalence(&original, &rolled, "f", &[IValue::Int(100)]).expect("equivalent");
    let mut interp = Interpreter::new(&rolled);
    assert_eq!(
        interp.run("f", &[IValue::Int(100)]).unwrap().ret,
        IValue::Int(100 - 21)
    );
}

#[test]
fn broken_chains_do_not_roll() {
    // A chain with an extra external use of a middle link cannot roll as a
    // pure recurrence (the middle value escapes and the out-array overhead
    // must pay for itself); behaviour must be preserved either way.
    let text = r#"
module "b"
global @a : [4 x i32] = ints i32 [10, 20, 30, 40]
global @out : [2 x i32] = zero
func @f(i32 %p0) -> i32 {
entry:
  %v0 = load i32, @a
  %s0 = sub i32 %p0, %v0
  %g1 = gep i32, @a, i64 1
  %v1 = load i32, %g1
  %s1 = sub i32 %s0, %v1
  %g2 = gep i32, @a, i64 2
  %v2 = load i32, %g2
  %s2 = sub i32 %s1, %v2
  store %s1, @out
  ret %s2
}
"#;
    let original = parse_module(text).unwrap();
    let mut rolled = original.clone();
    roll_module(&mut rolled, &RolagOptions::with_extensions());
    verify_module(&rolled).expect("verifies");
    check_equivalence(&original, &rolled, "f", &[IValue::Int(5)]).expect("equivalent");
}
