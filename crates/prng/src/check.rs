//! A small seeded property-testing harness.
//!
//! Stands in for the `proptest` crate (unavailable in the offline build):
//! properties are checked over many deterministically generated random
//! cases, and a failing case reports the case index and derived seed so it
//! can be replayed exactly with [`replay_case`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{ChaCha8Rng, SeedableRng};

/// Per-case seed derivation: mixes the property seed with the case index so
/// individual cases can be replayed in isolation.
fn case_seed(seed: u64, case: usize) -> u64 {
    seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs `property` against `cases` independently seeded RNGs.
///
/// On failure, re-raises the panic annotated with the property name, case
/// index, and the exact seed to hand to [`replay_case`].
pub fn run_cases<F>(name: &str, cases: usize, seed: u64, mut property: F)
where
    F: FnMut(&mut ChaCha8Rng, usize),
{
    for case in 0..cases {
        let derived = case_seed(seed, case);
        let mut rng = ChaCha8Rng::seed_from_u64(derived);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng, case)));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay_case seed: {derived:#x})"
            );
            resume_unwind(payload);
        }
    }
}

/// Replays a single failing case printed by [`run_cases`].
pub fn replay_case<F>(derived_seed: u64, mut property: F)
where
    F: FnMut(&mut ChaCha8Rng),
{
    let mut rng = ChaCha8Rng::seed_from_u64(derived_seed);
    property(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, RngCore};

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_cases("counts", 17, 1, |_, _| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_propagates_the_panic() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases("fails", 10, 1, |rng, _| {
                let v: u32 = rng.gen_range(0..100);
                assert!(v < 1000, "impossible");
                panic!("always fails");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cases_see_distinct_streams() {
        let mut firsts = Vec::new();
        run_cases("distinct", 8, 99, |rng, _| {
            firsts.push(rng.next_u64());
        });
        let unique: std::collections::HashSet<u64> = firsts.iter().copied().collect();
        assert_eq!(unique.len(), firsts.len());
    }
}
